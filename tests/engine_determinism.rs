//! Determinism property of the evaluation engine: the work-stealing
//! `ParallelEngine` and the in-order `SerialEngine` produce **bit-identical**
//! results for the same seeds — identical `YieldEstimate`s for a generation
//! and identical `RunResult`s for a whole optimization — because all
//! Monte-Carlo randomness lives in per-(design, block) RNG streams that do
//! not depend on execution order.

use moheco::runtime::{EngineConfig, ParallelEngine, SerialEngine};
use moheco::{Candidate, CircuitBench, MohecoConfig, RunResult, YieldOptimizer, YieldProblem};
use moheco_analog::{FoldedCascode, Testbench};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn serial_problem(seed: u64) -> YieldProblem<CircuitBench<FoldedCascode>> {
    YieldProblem::with_engine(
        FoldedCascode::new(),
        Arc::new(SerialEngine::new(EngineConfig::default().with_seed(seed))),
    )
}

fn parallel_problem(seed: u64, workers: usize) -> YieldProblem<CircuitBench<FoldedCascode>> {
    YieldProblem::with_engine(
        FoldedCascode::new(),
        Arc::new(ParallelEngine::new(
            EngineConfig::default()
                .with_seed(seed)
                .with_workers(workers),
        )),
    )
}

fn tiny() -> MohecoConfig {
    MohecoConfig {
        population_size: 8,
        n0: 4,
        sim_ave: 10,
        delta: 6,
        n_max: 40,
        max_generations: 5,
        stop_stagnation: 5,
        nm_iterations: 3,
        ..MohecoConfig::fast()
    }
}

fn run(problem: &YieldProblem<CircuitBench<FoldedCascode>>, rng_seed: u64) -> RunResult {
    let optimizer = YieldOptimizer::new(tiny());
    let mut rng = StdRng::seed_from_u64(rng_seed);
    optimizer.run(problem, &mut rng)
}

#[test]
fn parallel_and_serial_yield_estimates_are_identical() {
    let serial = serial_problem(42);
    let parallel = parallel_problem(42, 4);
    let reference = serial.testbench().reference_design();

    // A small generation of candidates of varying quality.
    let currents = [130.0, 145.0, 160.0, 172.0, 55.0];
    let build = |problem: &YieldProblem<CircuitBench<FoldedCascode>>| -> Vec<Candidate> {
        currents
            .iter()
            .map(|&i| {
                let mut x = reference.clone();
                x[8] = i;
                let rep = problem.feasibility(&x);
                if rep.is_feasible() {
                    Candidate::feasible(x, rep.decision)
                } else {
                    Candidate::infeasible(x, rep.violation)
                }
            })
            .collect()
    };
    let config = MohecoConfig {
        n0: 6,
        sim_ave: 18,
        delta: 8,
        n_max: 80,
        stage2_threshold: 0.6,
        ..MohecoConfig::fast()
    };

    let mut cs = build(&serial);
    let mut cp = build(&parallel);
    let rec_s = moheco::estimate_two_stage(&serial, &mut cs, &config);
    let rec_p = moheco::estimate_two_stage(&parallel, &mut cp, &config);

    assert_eq!(rec_s.samples, rec_p.samples);
    assert_eq!(rec_s.yields, rec_p.yields);
    assert_eq!(rec_s.promoted, rec_p.promoted);
    for (a, b) in cs.iter().zip(&cp) {
        assert_eq!(a.estimate, b.estimate, "estimates must be bit-identical");
        assert_eq!(a.stage, b.stage);
    }
    assert_eq!(serial.simulations(), parallel.simulations());
}

#[test]
fn parallel_and_serial_runs_are_identical() {
    let serial = serial_problem(7);
    let parallel = parallel_problem(7, 4);
    let rs = run(&serial, 11);
    let rp = run(&parallel, 11);

    assert_eq!(rs.best_x, rp.best_x, "best design must be bit-identical");
    assert_eq!(rs.reported_yield, rp.reported_yield);
    assert_eq!(rs.total_simulations, rp.total_simulations);
    assert_eq!(rs.generations, rp.generations);
    assert_eq!(rs.local_searches, rp.local_searches);
    assert_eq!(rs.trace.len(), rp.trace.len());
    for (a, b) in rs.trace.records.iter().zip(&rp.trace.records) {
        assert_eq!(a.best_yield, b.best_yield);
        assert_eq!(a.num_feasible, b.num_feasible);
        assert_eq!(a.simulations_so_far, b.simulations_so_far);
        assert_eq!(a.simulations_this_generation, b.simulations_this_generation);
        assert_eq!(a.candidates, b.candidates);
    }
    // The instrumentation agrees on everything except wall time.
    let (ss, sp) = (rs.engine_stats, rp.engine_stats);
    assert_eq!(ss.simulations_run, sp.simulations_run);
    assert_eq!(ss.mc_samples_served, sp.mc_samples_served);
    assert_eq!(ss.cache_hits, sp.cache_hits);
}

#[test]
fn worker_count_does_not_change_results() {
    let one = run(&parallel_problem(3, 1), 5);
    let many = run(&parallel_problem(3, 8), 5);
    assert_eq!(one.best_x, many.best_x);
    assert_eq!(one.reported_yield, many.reported_yield);
    assert_eq!(one.total_simulations, many.total_simulations);
}

#[test]
fn different_engine_seeds_change_sample_streams() {
    let a = serial_problem(1);
    let b = serial_problem(2);
    let x = a.testbench().reference_design();
    assert_ne!(a.outcomes(&x, 0, 200), b.outcomes(&x, 0, 200));
}

#[test]
fn engine_stats_are_surfaced_in_the_run_result() {
    let problem = parallel_problem(9, 2);
    let result = run(&problem, 1);
    let stats = result.engine_stats;
    assert!(stats.simulations_run > 0);
    assert_eq!(stats.simulations_run, result.total_simulations);
    assert!(stats.batches > 0);
    // Accounting identity without subtraction (which could underflow when
    // cached serves exceed executed work).
    assert!(stats.mc_samples_served + stats.nominal_served >= stats.simulations_run);
    // The trace carries the cumulative cache-hit series (the final top-up
    // after the last recorded generation may add a few more hits).
    let last = result.trace.records.last().unwrap();
    assert!(last.cache_hits_so_far <= stats.cache_hits);
}
