//! Differential suite for the engine's batched dispatch.
//!
//! Both engines now route every Monte-Carlo block through
//! [`SimulationModel::simulate_block`]. The contract is that this is pure
//! plumbing: outcomes, estimator weighting, RNG streams, cache keys, counters
//! and eviction behaviour must all be **bit-identical** to the scalar
//! `simulate_point` loop. This suite pits each benchmark against a wrapper
//! that hides the model's block override (forcing the trait's default scalar
//! loop) and asserts exact equality across all nine registry scenarios — the
//! four circuit scenarios exercise the real spicelite batch path — all four
//! estimators, and both engines, plus the bounded-cache eviction interaction.

use moheco::{Benchmark, CircuitBench};
use moheco_analog::FoldedCascode;
use moheco_runtime::{
    EngineConfig, EvalEngine, McRequest, ParallelEngine, SerialEngine, SimulationModel,
};
use moheco_sampling::EstimatorKind;
use moheco_scenarios::all_scenarios;
use std::sync::Arc;

/// Forwards everything *except* `simulate_block`, so the trait's default
/// scalar loop runs even for models with a batched fast path. This is the
/// reference path every batched result is compared against.
struct ScalarizeModel<'a>(&'a dyn SimulationModel);

impl SimulationModel for ScalarizeModel<'_> {
    fn unit_dimension(&self) -> usize {
        self.0.unit_dimension()
    }
    fn simulate_point(&self, x: &[f64], u: &[f64]) -> f64 {
        self.0.simulate_point(x, u)
    }
    fn nominal(&self, x: &[f64]) -> Vec<f64> {
        self.0.nominal(x)
    }
    fn importance_shift(&self, x: &[f64]) -> Option<Vec<f64>> {
        self.0.importance_shift(x)
    }
}

fn engine(parallel: bool, kind: EstimatorKind, bounded: Option<usize>) -> Arc<dyn EvalEngine> {
    let mut config = EngineConfig::default().with_seed(42).with_estimator(kind);
    if let Some(max) = bounded {
        config = config.with_max_cached_blocks(max);
    }
    if parallel {
        Arc::new(ParallelEngine::new(config.with_workers(4)))
    } else {
        Arc::new(SerialEngine::new(config))
    }
}

/// Multi-block, overlapping, misaligned request set over two designs: the
/// shapes the dedup/gather logic in the engines has to get right.
fn requests(bench: &dyn Benchmark) -> Vec<McRequest> {
    let a = bench.reference_design();
    let mut b = a.clone();
    let (lo, hi) = bench.bounds()[0];
    b[0] = lo + 0.6 * (hi - lo);
    vec![
        McRequest::new(a.clone(), 0, 120),
        McRequest::new(a, 60, 90), // overlaps the first request
        McRequest::new(b, 25, 60), // straddles a block boundary
    ]
}

fn assert_outcomes_bit_equal(batched: &[Vec<f64>], scalar: &[Vec<f64>], ctx: &str) {
    assert_eq!(batched.len(), scalar.len(), "{ctx}: request count");
    for (r, (ob, os)) in batched.iter().zip(scalar).enumerate() {
        assert_eq!(ob.len(), os.len(), "{ctx}: request {r} length");
        for (i, (vb, vs)) in ob.iter().zip(os).enumerate() {
            assert_eq!(
                vb.to_bits(),
                vs.to_bits(),
                "{ctx}: request {r} outcome {i}: batched {vb} vs scalar {vs}"
            );
        }
    }
}

#[test]
fn batched_dispatch_matches_scalar_loop_everywhere() {
    for scenario in all_scenarios() {
        let bench = scenario.bench();
        let reqs = requests(bench.as_ref());
        for kind in EstimatorKind::ALL {
            for parallel in [false, true] {
                let ctx = format!(
                    "{} / {:?} / {}",
                    scenario.name(),
                    kind,
                    if parallel { "parallel" } else { "serial" }
                );
                let eb = engine(parallel, kind, None);
                let es = engine(parallel, kind, None);
                let outs_b = eb.mc_outcomes(bench.as_model(), &reqs);
                let scalarized = ScalarizeModel(bench.as_model());
                let outs_s = es.mc_outcomes(&scalarized, &reqs);
                assert_outcomes_bit_equal(&outs_b, &outs_s, &ctx);
                assert_eq!(eb.simulations(), es.simulations(), "{ctx}: simulations");
                let (sb, ss) = (eb.stats(), es.stats());
                assert_eq!(sb.simulations_run, ss.simulations_run, "{ctx}: runs");
                assert_eq!(sb.mc_samples_served, ss.mc_samples_served, "{ctx}: served");
                assert_eq!(sb.cache_hits, ss.cache_hits, "{ctx}: cache hits");
            }
        }
    }
}

#[test]
fn repeated_requests_are_cache_served_identically() {
    // Second identical batch must come from the cache on both paths: same
    // outcomes, zero extra simulations.
    let bench = CircuitBench::new(FoldedCascode::new());
    let reqs = requests(&bench);
    let eb = engine(false, EstimatorKind::MonteCarlo, None);
    let es = engine(false, EstimatorKind::MonteCarlo, None);
    let first_b = eb.mc_outcomes(&bench, &reqs);
    let scalarized = ScalarizeModel(&bench);
    let first_s = es.mc_outcomes(&scalarized, &reqs);
    let (runs_b, runs_s) = (eb.stats().simulations_run, es.stats().simulations_run);
    let second_b = eb.mc_outcomes(&bench, &reqs);
    let second_s = es.mc_outcomes(&scalarized, &reqs);
    assert_outcomes_bit_equal(&first_b, &first_s, "first batch");
    assert_outcomes_bit_equal(&second_b, &second_s, "second batch");
    assert_eq!(first_b, second_b, "cache replay must be exact");
    assert_eq!(
        eb.stats().simulations_run,
        runs_b,
        "batched: no re-simulation"
    );
    assert_eq!(
        es.stats().simulations_run,
        runs_s,
        "scalar: no re-simulation"
    );
}

#[test]
fn bounded_cache_eviction_interacts_identically_with_batching() {
    // Satellite: a bounded cache forces evictions *between* batches; the
    // batched path must re-simulate exactly the same blocks with exactly the
    // same values, keeping the eviction counters in lockstep with the scalar
    // path.
    let bench = CircuitBench::new(FoldedCascode::new());
    let reference = Benchmark::reference_design(&bench);
    let designs: Vec<Vec<f64>> = (0..6)
        .map(|k| {
            let mut x = reference.clone();
            x[8] = 100.0 + 12.0 * k as f64;
            x
        })
        .collect();
    for parallel in [false, true] {
        let eb = engine(parallel, EstimatorKind::MonteCarlo, Some(2));
        let es = engine(parallel, EstimatorKind::MonteCarlo, Some(2));
        let scalarized = ScalarizeModel(&bench);
        for round in 0..2 {
            for (d, x) in designs.iter().enumerate() {
                let reqs = [McRequest::new(x.clone(), 0, 60)];
                let ob = eb.mc_outcomes(&bench, &reqs);
                let os = es.mc_outcomes(&scalarized, &reqs);
                let ctx = format!(
                    "{} round {round} design {d}",
                    if parallel { "parallel" } else { "serial" }
                );
                assert_outcomes_bit_equal(&ob, &os, &ctx);
            }
        }
        let (sb, ss) = (eb.stats(), es.stats());
        assert!(sb.evicted_blocks > 0, "bound of 2 must evict");
        assert_eq!(sb.evicted_blocks, ss.evicted_blocks, "eviction counters");
        assert_eq!(
            sb.simulations_run, ss.simulations_run,
            "re-simulation count"
        );
        assert_eq!(eb.cache_blocks(), es.cache_blocks(), "retained blocks");
    }
}
