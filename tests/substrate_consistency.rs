//! Cross-crate consistency checks between the circuit substrate, the process
//! models and the benchmark testbenches.

use moheco_analog::{
    inter_die_shifts, perturbed_model, FoldedCascode, TelescopicTwoStage, Testbench,
};
use moheco_process::{tech_035um, tech_90nm, ProcessSample, ProcessSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spicelite::ac::{log_space, sweep};
use spicelite::mosfet::{model_035um, MosGeometry, MosType, Mosfet};
use spicelite::netlist::LinearCircuit;

#[test]
fn statistical_dimensions_match_the_paper() {
    // Example 1: 80 variables (60 intra + 20 inter); example 2: 123 (76 + 47).
    let fc = FoldedCascode::new();
    assert_eq!(fc.technology().num_inter_die(), 20);
    assert_eq!(4 * fc.num_devices(), 60);
    assert_eq!(fc.technology().num_variables(fc.num_devices()), 80);

    let ts = TelescopicTwoStage::new();
    assert_eq!(ts.technology().num_inter_die(), 47);
    assert_eq!(4 * ts.num_devices(), 76);
    assert_eq!(ts.technology().num_variables(ts.num_devices()), 123);
}

#[test]
fn sampler_dimension_matches_testbench_expectations() {
    let fc = FoldedCascode::new();
    let sampler = ProcessSampler::new(fc.technology().clone(), fc.num_devices());
    assert_eq!(sampler.dimension(), 80);
    let mut rng = StdRng::seed_from_u64(5);
    let xi = sampler.sample(&mut rng);
    // The testbench accepts the sample and produces finite performances.
    let perf = fc.evaluate(&fc.reference_design(), &xi);
    assert!(perf.a0_db.is_finite());
    assert!(perf.gbw_hz.is_finite());
    assert!(perf.power_w.is_finite());
}

#[test]
fn analytic_single_pole_amplifier_matches_mna() {
    // gm * R = 40 dB amplifier with a single pole: the MNA sweep must agree
    // with the hand-computed gain and bandwidth.
    let gm = 1e-3;
    let r = 100e3;
    let c = 1e-12;
    let mut ckt = LinearCircuit::new();
    let vin = ckt.node();
    let vout = ckt.node();
    ckt.add_vsource(vin, 0, 1.0);
    ckt.add_vccs(vout, 0, vin, 0, gm);
    ckt.add_resistor(vout, 0, r);
    ckt.add_capacitance(vout, 0, c);
    let resp = sweep(&ckt, vout, &log_space(1.0, 1e12, 300)).expect("sweep");
    assert!((resp.dc_gain_db() - 40.0).abs() < 0.1);
    let gbw = resp.unity_gain_freq().expect("crossing");
    let expected = gm / (2.0 * std::f64::consts::PI * c);
    assert!((gbw - expected).abs() / expected < 0.03);
}

#[test]
fn inter_die_mobility_shift_changes_gbw_in_the_right_direction() {
    let fc = FoldedCascode::new();
    let x = fc.reference_design();
    let tech = tech_035um();
    let mut slow = ProcessSample::nominal(tech.num_inter_die(), fc.num_devices());
    let mut fast = slow.clone();
    // Index 2 is DELUON (NMOS mobility, relative).
    slow.inter[2] = -0.10;
    fast.inter[2] = 0.10;
    let p_slow = fc.evaluate(&x, &slow);
    let p_fast = fc.evaluate(&x, &fast);
    // The input pair is NMOS: higher mobility -> higher gm -> higher GBW.
    assert!(
        p_fast.gbw_hz > p_slow.gbw_hz,
        "fast {} vs slow {}",
        p_fast.gbw_hz,
        p_slow.gbw_hz
    );
}

#[test]
fn perturbed_models_change_device_current_consistently() {
    let tech = tech_90nm();
    let mut sample = ProcessSample::nominal(tech.num_inter_die(), 19);
    // Index 1 is VTH0Rn: a +30 mV global NMOS threshold shift.
    sample.inter[1] = 0.03;
    let (n_shift, _) = inter_die_shifts(&tech, &sample);
    assert!((n_shift.d_vth0 - 0.03).abs() < 1e-12);
    let g = MosGeometry::new(10e-6, 0.2e-6, 1.0).expect("geometry");
    let nominal = Mosfet::new(model_035um(MosType::Nmos), g);
    let shifted = Mosfet::new(
        perturbed_model(model_035um(MosType::Nmos), &tech, &sample, 0, g),
        g,
    );
    let id_nom = nominal.operating_point(0.8, 1.0, 0.0).id;
    let id_shift = shifted.operating_point(0.8, 1.0, 0.0).id;
    assert!(id_shift < id_nom, "higher vth must reduce the current");
}

#[test]
fn yields_of_both_examples_respond_to_design_changes() {
    // Moving the folded cascode's tail current towards the power limit must
    // not increase the yield; this ties the whole stack together.
    let fc = FoldedCascode::new();
    let sampler = ProcessSampler::new(fc.technology().clone(), fc.num_devices());
    let yield_of = |x: &[f64], seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 250;
        let mut pass = 0;
        for _ in 0..n {
            let xi = sampler.sample(&mut rng);
            if fc.specs().all_met(&fc.evaluate(x, &xi)) {
                pass += 1;
            }
        }
        pass as f64 / n as f64
    };
    let reference = fc.reference_design();
    let mut hot = reference.clone();
    hot[8] = 172.0; // right at the power boundary
    let y_ref = yield_of(&reference, 7);
    let y_hot = yield_of(&hot, 7);
    assert!(
        y_ref >= y_hot - 0.05,
        "reference yield {y_ref} should not be clearly worse than boundary design {y_hot}"
    );
}
