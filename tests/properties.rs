//! Property-based tests (proptest) of the core data structures and
//! invariants: OCBA allocations, Latin Hypercube stratification, yield
//! estimates, the feasibility comparator and the linear-algebra kernels.

use moheco_ocba::allocation::{allocate, DesignStats};
use moheco_ocba::ordinal::{rank_descending, selected_subset};
use moheco_optim::constraints::{feasibility_compare, is_better_or_equal};
use moheco_optim::problem::Evaluation;
use moheco_sampling::{latin_hypercube, YieldEstimate};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spicelite::linalg::Matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// OCBA allocations always sum to the requested budget and are non-negative.
    #[test]
    fn ocba_allocation_sums_to_total(
        means in proptest::collection::vec(0.0f64..1.0, 2..20),
        total in 1usize..2000,
        seed in 0u64..1000,
    ) {
        // Variances consistent with Bernoulli yields plus a seed-derived floor.
        let variances: Vec<f64> = means
            .iter()
            .map(|m| (m * (1.0 - m)).max(1e-6 * ((seed % 7 + 1) as f64)))
            .collect();
        let alloc = allocate(&means, &variances, total).expect("valid inputs");
        prop_assert_eq!(alloc.len(), means.len());
        prop_assert_eq!(alloc.iter().sum::<usize>(), total);
    }

    /// The OCBA incremental allocation never assigns a negative top-up and
    /// always distributes exactly `delta`.
    #[test]
    fn ocba_incremental_distributes_delta(
        means in proptest::collection::vec(0.05f64..0.95, 2..12),
        spent in proptest::collection::vec(1usize..200, 2..12),
        delta in 1usize..500,
    ) {
        let n = means.len().min(spent.len());
        let stats: Vec<DesignStats> = (0..n)
            .map(|i| DesignStats::new(means[i], means[i] * (1.0 - means[i]), spent[i]))
            .collect();
        let add = moheco_ocba::allocation::allocate_incremental(&stats, delta).expect("valid");
        prop_assert_eq!(add.iter().sum::<usize>(), delta);
    }

    /// Latin Hypercube samples are stratified: every dimension has exactly one
    /// point per stratum, and all coordinates lie in [0, 1).
    #[test]
    fn lhs_is_stratified(n in 2usize..40, dim in 1usize..10, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = latin_hypercube(&mut rng, n, dim);
        prop_assert_eq!(pts.len(), n);
        for d in 0..dim {
            let mut counts = vec![0usize; n];
            for p in &pts {
                prop_assert!(p[d] >= 0.0 && p[d] < 1.0);
                let stratum = ((p[d] * n as f64).floor() as usize).min(n - 1);
                counts[stratum] += 1;
            }
            prop_assert!(counts.iter().all(|&c| c == 1));
        }
    }

    /// Yield estimates stay in [0, 1], and merging preserves the pass counts.
    #[test]
    fn yield_estimate_merge_is_consistent(
        p1 in 0usize..100, n1 in 0usize..100,
        p2 in 0usize..100, n2 in 0usize..100,
    ) {
        let a = YieldEstimate::new(p1.min(n1), n1);
        let b = YieldEstimate::new(p2.min(n2), n2);
        let m = a.merge(&b);
        prop_assert_eq!(m.samples, n1 + n2);
        prop_assert_eq!(m.passes, p1.min(n1) + p2.min(n2));
        prop_assert!((0.0..=1.0).contains(&m.value()));
        prop_assert!(m.bernoulli_variance() <= 0.25 + 1e-12);
    }

    /// The feasibility comparator is antisymmetric and consistent with
    /// `is_better_or_equal`.
    #[test]
    fn feasibility_comparator_is_antisymmetric(
        o1 in -1e3f64..1e3, v1 in 0.0f64..10.0,
        o2 in -1e3f64..1e3, v2 in 0.0f64..10.0,
    ) {
        let a = Evaluation::new(o1, v1);
        let b = Evaluation::new(o2, v2);
        let ab = feasibility_compare(&a, &b);
        let ba = feasibility_compare(&b, &a);
        prop_assert_eq!(ab, ba.reverse());
        if is_better_or_equal(&a, &b) && is_better_or_equal(&b, &a) {
            prop_assert_eq!(ab, std::cmp::Ordering::Equal);
        }
    }

    /// Ranking is a permutation and the selected subset contains the maximum.
    #[test]
    fn ranking_is_a_permutation(values in proptest::collection::vec(-1e3f64..1e3, 1..30)) {
        let order = rank_descending(&values);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..values.len()).collect::<Vec<_>>());
        let top = selected_subset(&values, 1);
        let max_idx = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        prop_assert!((values[top[0]] - values[max_idx]).abs() < 1e-12);
    }

    /// Solving a diagonally dominant system and multiplying back recovers the
    /// right-hand side.
    #[test]
    fn lu_solve_roundtrip(
        dim in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut a = Matrix::zeros(dim, dim);
        for i in 0..dim {
            let mut row_sum = 0.0;
            for j in 0..dim {
                if i != j {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    a[(i, j)] = v;
                    row_sum += v.abs();
                }
            }
            a[(i, i)] = row_sum + 1.0; // strict diagonal dominance
        }
        let x_true: Vec<f64> = (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).expect("diagonally dominant");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8);
        }
    }

    /// Cholesky factors of SPD matrices reconstruct the original matrix.
    #[test]
    fn cholesky_roundtrip(dim in 1usize..6, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        // Build SPD as B^T B + I.
        let mut b = Matrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                b[(i, j)] = rng.gen_range(-1.0..1.0);
            }
        }
        let mut spd = b.transpose().mul_mat(&b);
        spd.add_diagonal(1.0);
        let l = spd.cholesky().expect("spd");
        let rec = l.mul_mat(&l.transpose());
        for i in 0..dim {
            for j in 0..dim {
                prop_assert!((rec[(i, j)] - spd[(i, j)]).abs() < 1e-9);
            }
        }
    }
}
