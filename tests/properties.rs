//! Property-style tests of the core data structures and invariants: OCBA
//! allocations, Latin Hypercube stratification, yield estimates, the
//! feasibility comparator and the linear-algebra kernels.
//!
//! The original seed used the `proptest` crate; this build environment is
//! offline, so the same properties are exercised by deterministic seeded
//! case generators instead (every case that would have been drawn by a
//! strategy is now drawn from a seeded `StdRng`, so failures stay
//! reproducible).

use moheco_ocba::allocation::{allocate, allocate_incremental, DesignStats};
use moheco_ocba::ordinal::{rank_descending, selected_subset};
use moheco_optim::constraints::{feasibility_compare, is_better_or_equal};
use moheco_optim::problem::Evaluation;
use moheco_sampling::{latin_hypercube, YieldEstimate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spicelite::linalg::Matrix;

const CASES: u64 = 64;

/// OCBA allocations always sum to the requested budget and are non-negative.
#[test]
fn ocba_allocation_sums_to_total() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2usize..20);
        let means: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let total = rng.gen_range(1usize..2000);
        let variances: Vec<f64> = means
            .iter()
            .map(|m| (m * (1.0 - m)).max(1e-6 * ((seed % 7 + 1) as f64)))
            .collect();
        let alloc = allocate(&means, &variances, total).expect("valid inputs");
        assert_eq!(alloc.len(), means.len(), "seed {seed}");
        assert_eq!(alloc.iter().sum::<usize>(), total, "seed {seed}");
    }
}

/// The OCBA incremental allocation never assigns a negative top-up and
/// always distributes exactly `delta`.
#[test]
fn ocba_incremental_distributes_delta() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let n = rng.gen_range(2usize..12);
        let stats: Vec<DesignStats> = (0..n)
            .map(|_| {
                let m = rng.gen_range(0.05..0.95);
                let spent = rng.gen_range(1usize..200);
                DesignStats::new(m, m * (1.0 - m), spent)
            })
            .collect();
        let delta = rng.gen_range(1usize..500);
        let add = allocate_incremental(&stats, delta).expect("valid");
        assert_eq!(add.iter().sum::<usize>(), delta, "seed {seed}");
    }
}

/// Latin Hypercube samples are stratified: every dimension has exactly one
/// point per stratum, and all coordinates lie in [0, 1).
#[test]
fn lhs_is_stratified() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let n = rng.gen_range(2usize..40);
        let dim = rng.gen_range(1usize..10);
        let pts = latin_hypercube(&mut rng, n, dim);
        assert_eq!(pts.len(), n);
        for d in 0..dim {
            let mut counts = vec![0usize; n];
            for p in &pts {
                assert!(p[d] >= 0.0 && p[d] < 1.0, "seed {seed}");
                let stratum = ((p[d] * n as f64).floor() as usize).min(n - 1);
                counts[stratum] += 1;
            }
            assert!(counts.iter().all(|&c| c == 1), "seed {seed} dim {d}");
        }
    }
}

/// Yield estimates stay in [0, 1], and merging preserves the pass counts.
#[test]
fn yield_estimate_merge_is_consistent() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let n1 = rng.gen_range(0usize..100);
        let n2 = rng.gen_range(0usize..100);
        let p1 = rng.gen_range(0usize..100).min(n1);
        let p2 = rng.gen_range(0usize..100).min(n2);
        let a = YieldEstimate::new(p1, n1);
        let b = YieldEstimate::new(p2, n2);
        let m = a.merge(&b);
        assert_eq!(m.samples, n1 + n2);
        assert_eq!(m.sum, (p1 + p2) as f64);
        assert!((0.0..=1.0).contains(&m.value()));
        assert!(m.bernoulli_variance() <= 0.25 + 1e-12);
    }
}

/// The feasibility comparator is antisymmetric and consistent with
/// `is_better_or_equal`.
#[test]
fn feasibility_comparator_is_antisymmetric() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let a = Evaluation::new(rng.gen_range(-1e3..1e3), rng.gen_range(0.0..10.0));
        let b = Evaluation::new(rng.gen_range(-1e3..1e3), rng.gen_range(0.0..10.0));
        let ab = feasibility_compare(&a, &b);
        let ba = feasibility_compare(&b, &a);
        assert_eq!(ab, ba.reverse(), "seed {seed}");
        if is_better_or_equal(&a, &b) && is_better_or_equal(&b, &a) {
            assert_eq!(ab, std::cmp::Ordering::Equal, "seed {seed}");
        }
    }
}

/// Ranking is a permutation and the selected subset contains the maximum.
#[test]
fn ranking_is_a_permutation() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5000 + seed);
        let n = rng.gen_range(1usize..30);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e3..1e3)).collect();
        let order = rank_descending(&values);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..values.len()).collect::<Vec<_>>());
        let top = selected_subset(&values, 1);
        let max_idx = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            (values[top[0]] - values[max_idx]).abs() < 1e-12,
            "seed {seed}"
        );
    }
}

/// Solving a diagonally dominant system and multiplying back recovers the
/// right-hand side.
#[test]
fn lu_solve_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(6000 + seed);
        let dim = rng.gen_range(1usize..8);
        let mut a = Matrix::zeros(dim, dim);
        for i in 0..dim {
            let mut row_sum = 0.0;
            for j in 0..dim {
                if i != j {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    a[(i, j)] = v;
                    row_sum += v.abs();
                }
            }
            a[(i, i)] = row_sum + 1.0; // strict diagonal dominance
        }
        let x_true: Vec<f64> = (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).expect("diagonally dominant");
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8, "seed {seed}");
        }
    }
}

/// Cholesky factors of SPD matrices reconstruct the original matrix.
#[test]
fn cholesky_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let dim = rng.gen_range(1usize..6);
        // Build SPD as B^T B + I.
        let mut b = Matrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                b[(i, j)] = rng.gen_range(-1.0..1.0);
            }
        }
        let mut spd = b.transpose().mul_mat(&b);
        spd.add_diagonal(1.0);
        let l = spd.cholesky().expect("spd");
        let rec = l.mul_mat(&l.transpose());
        for i in 0..dim {
            for j in 0..dim {
                assert!((rec[(i, j)] - spd[(i, j)]).abs() < 1e-9, "seed {seed}");
            }
        }
    }
}
