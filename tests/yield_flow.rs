//! End-to-end integration tests of the yield-optimization flow, spanning the
//! circuit substrate, the process models, the sampling machinery, the OCBA
//! allocator and the MOHECO core.

use moheco::{MohecoConfig, YieldOptimizer, YieldProblem};
use moheco_analog::{FoldedCascode, TelescopicTwoStage, Testbench};
use moheco_sampling::SamplingPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny() -> MohecoConfig {
    MohecoConfig {
        population_size: 8,
        n0: 4,
        sim_ave: 10,
        delta: 6,
        n_max: 40,
        max_generations: 5,
        stop_stagnation: 5,
        nm_iterations: 3,
        ..MohecoConfig::fast()
    }
}

#[test]
fn moheco_end_to_end_on_example_1() {
    let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
    let optimizer = YieldOptimizer::new(tiny());
    let mut rng = StdRng::seed_from_u64(101);
    let result = optimizer.run(&problem, &mut rng);

    // The run's accounting must be consistent.
    assert_eq!(result.total_simulations, problem.simulations());
    assert!(result.total_simulations > 0);
    assert_eq!(result.best_x.len(), problem.dimension());
    assert_eq!(result.trace.len(), result.generations);

    // The reported yield must lie in [0, 1] and agree reasonably with an
    // independent reference estimate of the same design.
    assert!((0.0..=1.0).contains(&result.reported_yield));
    let mut ref_rng = StdRng::seed_from_u64(999);
    let reference = problem.reference_yield(&result.best_x, 1_500, &mut ref_rng);
    assert!(
        (result.reported_yield - reference).abs() < 0.25,
        "reported {} vs reference {}",
        result.reported_yield,
        reference
    );
}

#[test]
fn moheco_uses_fewer_simulations_than_fixed_budget_for_similar_quality() {
    // The headline claim of the paper in miniature: with matched generation
    // budgets, the two-stage OO estimation spends far fewer simulations than
    // the fixed-budget flow.
    let seeds = [5u64, 6, 7];
    let mut moheco_sims = 0.0;
    let mut fixed_sims = 0.0;
    let mut moheco_yield = 0.0;
    let mut fixed_yield = 0.0;
    for &seed in &seeds {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let result = YieldOptimizer::new(tiny()).run(&problem, &mut StdRng::seed_from_u64(seed));
        moheco_sims += result.total_simulations as f64;
        moheco_yield += result.reported_yield;

        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let result = YieldOptimizer::new(tiny().as_fixed_budget(40))
            .run(&problem, &mut StdRng::seed_from_u64(seed));
        fixed_sims += result.total_simulations as f64;
        fixed_yield += result.reported_yield;
    }
    assert!(
        moheco_sims < fixed_sims,
        "MOHECO {moheco_sims} should use fewer simulations than fixed {fixed_sims}"
    );
    // Quality must remain comparable (within 20 yield points on average for
    // these very small budgets).
    assert!(
        (moheco_yield - fixed_yield).abs() / seeds.len() as f64 <= 0.2,
        "MOHECO avg yield {} vs fixed {}",
        moheco_yield / seeds.len() as f64,
        fixed_yield / seeds.len() as f64
    );
}

#[test]
fn optimizer_runs_on_example_2_as_well() {
    let problem = YieldProblem::new(TelescopicTwoStage::new(), SamplingPlan::LatinHypercube);
    let optimizer = YieldOptimizer::new(MohecoConfig {
        max_generations: 3,
        ..tiny()
    });
    let mut rng = StdRng::seed_from_u64(202);
    let result = optimizer.run(&problem, &mut rng);
    assert_eq!(result.best_x.len(), 12);
    assert!(result.total_simulations > 0);
    assert!((0.0..=1.0).contains(&result.reported_yield));
}

#[test]
fn optimization_improves_over_the_initial_population() {
    let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
    let optimizer = YieldOptimizer::new(MohecoConfig {
        max_generations: 8,
        ..tiny()
    });
    let mut rng = StdRng::seed_from_u64(303);
    let result = optimizer.run(&problem, &mut rng);
    let history = result.history();
    assert!(!history.is_empty());
    let first = history[0];
    let last = *history.last().expect("non-empty");
    assert!(
        last >= first,
        "best yield must not degrade: first {first}, last {last}"
    );
}

#[test]
fn reference_design_beats_random_designs_on_yield() {
    // Sanity link between the testbench and the yield problem: the
    // hand-crafted reference design has a much better yield than a random
    // corner of the design space.
    let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
    let tb = problem.testbench();
    let reference = tb.reference_design();
    let lows: Vec<f64> = tb.bounds().iter().map(|b| b.0).collect();
    let mut rng = StdRng::seed_from_u64(404);
    let y_ref = problem.reference_yield(&reference, 800, &mut rng);
    let y_low = problem.reference_yield(&lows, 200, &mut rng);
    assert!(y_ref > y_low, "reference {y_ref} vs low-corner {y_low}");
    assert!(y_ref > 0.5);
}
