//! `moheco-runtime` — the parallel, cached, deterministic
//! simulation-evaluation engine of the MOHECO reproduction.
//!
//! MOHECO's entire cost model is "number of circuit simulations": the paper's
//! contribution is spending ~7× fewer of them through two-stage OCBA yield
//! estimation. This crate is the layer that makes every *remaining*
//! simulation as cheap as the hardware allows. It owns all circuit-simulation
//! dispatch for the workspace:
//!
//! * [`engine::EvalEngine`] — the dispatch abstraction. Two implementations:
//!   [`engine::SerialEngine`] (in-order, zero threads) and
//!   [`engine::ParallelEngine`] (a work-stealing pool of `std::thread`
//!   workers; the build environment has no `rayon`, so the pool in [`pool`]
//!   plays its role).
//! * **Deterministic per-job RNG streams** — every Monte-Carlo outcome of a
//!   design is indexed. Outcomes are generated in fixed-size *blocks* whose
//!   RNG seed derives from `(engine seed, quantized design, block index)`
//!   alone, never from execution order. Parallel and serial execution
//!   therefore produce bit-identical yield estimates.
//! * [`cache`] — a concurrent simulation cache keyed by the quantized design
//!   point and the sample block, so repeated evaluations (elite carry-over,
//!   Nelder–Mead re-probes, stage-2 promotion re-estimates) are free.
//! * [`stats::EngineStats`] — instrumentation (simulations run, cache hits,
//!   batch sizes, busy wall time) surfaced by the core optimizer in its
//!   `Trace` / `RunResult`.
//!
//! # How simulations flow
//!
//! ```text
//!  YieldOptimizer / two_stage / OCBA loop / Nelder-Mead
//!        │  batches of McRequest { design, start, count }
//!        ▼
//!  EvalEngine (Serial | Parallel)
//!        │  split into per-(design, block) tasks, deduplicated
//!        ▼
//!  SimCache ──hit──► outcomes already on file (free)
//!        │ miss
//!        ▼
//!  block RNG stream ─► unit points ─► SimulationModel::simulate_point
//! ```
//!
//! # Example
//!
//! ```
//! use moheco_runtime::{EngineConfig, EvalEngine, McRequest, SerialEngine, SimulationModel};
//!
//! /// A toy "circuit": passes when the first coordinate of the process
//! /// sample is below the first design variable.
//! struct Toy;
//! impl SimulationModel for Toy {
//!     fn unit_dimension(&self) -> usize { 2 }
//!     fn simulate_point(&self, x: &[f64], u: &[f64]) -> f64 {
//!         if u[0] < x[0] { 1.0 } else { 0.0 }
//!     }
//!     fn nominal(&self, x: &[f64]) -> Vec<f64> { vec![x[0]] }
//! }
//!
//! let engine = SerialEngine::new(EngineConfig::default());
//! let req = McRequest::new(vec![0.8, 0.0], 0, 200);
//! let outcomes = engine.mc_outcomes(&Toy, std::slice::from_ref(&req));
//! let passes = outcomes[0].iter().filter(|&&o| o > 0.5).count();
//! assert!((passes as f64 / 200.0 - 0.8).abs() < 0.1);
//! // Re-requesting the same samples is free:
//! let before = engine.simulations();
//! engine.mc_outcomes(&Toy, std::slice::from_ref(&req));
//! assert_eq!(engine.simulations(), before);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod metrics;
pub mod model;
pub mod pool;
pub mod stats;

pub use cache::{design_key, Block, SimCache};
pub use engine::{EngineConfig, EvalEngine, ParallelEngine, SerialEngine};
pub use metrics::{attach_engine_probe, render_pool_cache, render_prometheus, EngineCacheUsage};
pub use model::{McRequest, SimulationModel};
pub use stats::{EngineStats, EngineStatsSnapshot, EngineTiming};
