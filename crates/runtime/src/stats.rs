//! Engine instrumentation: what the runtime actually did.
//!
//! All counters are atomics so worker threads update them without
//! coordination; [`EngineStats::snapshot`] captures a consistent-enough view
//! for reporting (the engine is quiescent between batches, where snapshots
//! are taken).

use std::sync::atomic::{AtomicU64, Ordering};

/// Live atomic counters owned by an engine.
///
/// Executed-simulation counting lives in the engine's shared
/// `SimulationCounter` (a single source of truth); the snapshot's
/// `simulations_run` field is filled from it by the engine.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Monte-Carlo samples served to callers (run + cache hits).
    mc_samples_served: AtomicU64,
    /// Nominal evaluations served to callers (run + cache hits).
    nominal_served: AtomicU64,
    /// Samples served without running a simulation.
    cache_hits: AtomicU64,
    /// Batches dispatched (Monte-Carlo + nominal).
    batches: AtomicU64,
    /// Monte-Carlo batches dispatched.
    mc_batches: AtomicU64,
    /// Per-(design, block) tasks executed.
    tasks: AtomicU64,
    /// Largest batch (in requested samples) seen so far.
    max_batch_samples: AtomicU64,
    /// Cache blocks evicted by the bounded-memory policy.
    evicted_blocks: AtomicU64,
    /// Wall-clock nanoseconds spent inside batch dispatch.
    busy_nanos: AtomicU64,
}

impl EngineStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_mc_batch(&self, samples_served: u64, tasks: u64, busy_nanos: u64) {
        self.mc_samples_served
            .fetch_add(samples_served, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.mc_batches.fetch_add(1, Ordering::Relaxed);
        self.tasks.fetch_add(tasks, Ordering::Relaxed);
        self.max_batch_samples
            .fetch_max(samples_served, Ordering::Relaxed);
        self.busy_nanos.fetch_add(busy_nanos, Ordering::Relaxed);
    }

    pub(crate) fn record_nominal_batch(&self, served: u64, busy_nanos: u64) {
        self.nominal_served.fetch_add(served, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos.fetch_add(busy_nanos, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_hits(&self, n: u64) {
        self.cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_evictions(&self, n: u64) {
        self.evicted_blocks.fetch_add(n, Ordering::Relaxed);
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.mc_samples_served.store(0, Ordering::Relaxed);
        self.nominal_served.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.mc_batches.store(0, Ordering::Relaxed);
        self.tasks.store(0, Ordering::Relaxed);
        self.max_batch_samples.store(0, Ordering::Relaxed);
        self.evicted_blocks.store(0, Ordering::Relaxed);
        self.busy_nanos.store(0, Ordering::Relaxed);
    }

    /// Captures the current counter values (`simulations_run` is filled in
    /// by the engine from its shared counter). Wall-clock timing is *not*
    /// part of the snapshot — see [`EngineStats::timing`].
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            simulations_run: 0,
            mc_samples_served: self.mc_samples_served.load(Ordering::Relaxed),
            nominal_served: self.nominal_served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            mc_batches: self.mc_batches.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            max_batch_samples: self.max_batch_samples.load(Ordering::Relaxed),
            evicted_blocks: self.evicted_blocks.load(Ordering::Relaxed),
        }
    }

    /// Captures the engine's wall-clock accounting.
    ///
    /// Timing lives in its own struct — deliberately segregated from
    /// [`EngineStatsSnapshot`], whose counter fields feed gated, baselined
    /// serializations that must stay bit-identical across machines. Nothing
    /// in [`EngineTiming`] may ever enter a digest or a baseline gate.
    pub fn timing(&self) -> EngineTiming {
        EngineTiming {
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Wall-clock accounting of an engine, split from [`EngineStatsSnapshot`]
/// so non-deterministic timing can never be gated on by accident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTiming {
    /// Wall-clock nanoseconds spent inside batch dispatch.
    pub busy_nanos: u64,
}

impl EngineTiming {
    /// Busy time in milliseconds.
    pub fn busy_ms(&self) -> f64 {
        self.busy_nanos as f64 / 1e6
    }
}

impl std::fmt::Display for EngineTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} ms busy", self.busy_ms())
    }
}

/// A point-in-time copy of [`EngineStats`], cheap to clone and embed in run
/// results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStatsSnapshot {
    /// Circuit simulations actually executed (Monte-Carlo + nominal).
    pub simulations_run: u64,
    /// Monte-Carlo samples served to callers (run + cache hits).
    pub mc_samples_served: u64,
    /// Nominal evaluations served to callers (run + cache hits).
    pub nominal_served: u64,
    /// Samples served straight from the cache.
    pub cache_hits: u64,
    /// Batches dispatched (Monte-Carlo + nominal).
    pub batches: u64,
    /// Monte-Carlo batches dispatched.
    pub mc_batches: u64,
    /// Per-(design, block) tasks executed.
    pub tasks: u64,
    /// Largest batch (in requested samples) dispatched.
    pub max_batch_samples: u64,
    /// Cache blocks evicted under [`crate::EngineConfig::max_cached_blocks`]
    /// (0 on unbounded engines).
    pub evicted_blocks: u64,
}

impl EngineStatsSnapshot {
    /// Fraction of served work (samples + nominals) answered by the cache.
    pub fn hit_rate(&self) -> f64 {
        let served = self.mc_samples_served + self.nominal_served;
        if served == 0 {
            0.0
        } else {
            self.cache_hits as f64 / served as f64
        }
    }

    /// Mean requested samples per Monte-Carlo batch (nominal-only batches
    /// are excluded from the denominator).
    pub fn mean_batch_samples(&self) -> f64 {
        if self.mc_batches == 0 {
            0.0
        } else {
            self.mc_samples_served as f64 / self.mc_batches as f64
        }
    }

    /// Accumulates another snapshot into this one: every counter is summed
    /// except `max_batch_samples`, which is a high-water mark and takes the
    /// maximum. Used by campaign totals and the service's per-tenant /
    /// pool-wide accounting.
    pub fn absorb(&mut self, other: &EngineStatsSnapshot) {
        self.simulations_run += other.simulations_run;
        self.mc_samples_served += other.mc_samples_served;
        self.nominal_served += other.nominal_served;
        self.cache_hits += other.cache_hits;
        self.batches += other.batches;
        self.mc_batches += other.mc_batches;
        self.tasks += other.tasks;
        self.max_batch_samples = self.max_batch_samples.max(other.max_batch_samples);
        self.evicted_blocks += other.evicted_blocks;
    }

    /// Stable `(name, value)` pairs of every counter field, in schema order.
    ///
    /// This is the single source of the snapshot's serialized shape: both
    /// [`Self::to_json`] and the `moheco-run` result schema (which embeds
    /// the counters under an `engine_` prefix) are generated from it, so the
    /// two can never drift apart silently. Every field here is
    /// deterministic; wall-clock timing lives in [`EngineTiming`] and is
    /// serialized separately (never gated).
    pub fn counter_fields(&self) -> [(&'static str, u64); 9] {
        [
            ("simulations_run", self.simulations_run),
            ("mc_samples_served", self.mc_samples_served),
            ("nominal_served", self.nominal_served),
            ("cache_hits", self.cache_hits),
            ("batches", self.batches),
            ("mc_batches", self.mc_batches),
            ("tasks", self.tasks),
            ("max_batch_samples", self.max_batch_samples),
            ("evicted_blocks", self.evicted_blocks),
        ]
    }

    /// Renders the snapshot as a single JSON object (no external
    /// serialization crates are available in this build environment).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (name, value) in self.counter_fields() {
            out.push_str(&format!("\"{name}\":{value},"));
        }
        out.push_str(&format!("\"hit_rate\":{:.6}}}", self.hit_rate()));
        out
    }
}

impl std::fmt::Display for EngineStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sims run, {} samples served ({:.1}% cached), {} batches, {} tasks",
            self.simulations_run,
            self.mc_samples_served,
            100.0 * self.hit_rate(),
            self.batches,
            self.tasks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let stats = EngineStats::new();
        stats.record_mc_batch(40, 3, 1_000);
        stats.record_mc_batch(20, 1, 500);
        stats.record_nominal_batch(8, 100);
        stats.record_cache_hits(50);
        let snap = stats.snapshot();
        assert_eq!(snap.mc_samples_served, 60);
        assert_eq!(snap.nominal_served, 8);
        assert_eq!(snap.cache_hits, 50);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.mc_batches, 2);
        assert_eq!(snap.tasks, 4);
        assert_eq!(snap.max_batch_samples, 40);
        assert_eq!(stats.timing().busy_nanos, 1_600);
        assert!((snap.hit_rate() - 50.0 / 68.0).abs() < 1e-12);
        assert!((snap.mean_batch_samples() - 30.0).abs() < 1e-12);
        stats.reset();
        assert_eq!(stats.snapshot(), EngineStatsSnapshot::default());
        assert_eq!(stats.timing(), EngineTiming::default());
    }

    #[test]
    fn timing_is_segregated_from_the_counter_schema() {
        let stats = EngineStats::new();
        stats.record_mc_batch(4, 1, 1_500_000);
        let snap = stats.snapshot();
        assert!(
            snap.counter_fields()
                .iter()
                .all(|(name, _)| !name.contains("nanos")),
            "wall-clock timing must never appear among gated counter fields"
        );
        assert!(!snap.to_json().contains("busy_nanos"));
        let timing = stats.timing();
        assert_eq!(timing.busy_nanos, 1_500_000);
        assert!((timing.busy_ms() - 1.5).abs() < 1e-12);
        assert_eq!(timing.to_string(), "1.5 ms busy");
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let stats = EngineStats::new();
        stats.record_mc_batch(4, 1, 10);
        let json = stats.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"mc_samples_served\":4"));
    }

    #[test]
    fn counter_fields_and_json_share_one_schema() {
        let stats = EngineStats::new();
        stats.record_mc_batch(4, 1, 10);
        let snap = stats.snapshot();
        let json = snap.to_json();
        for (name, value) in snap.counter_fields() {
            assert!(
                json.contains(&format!("\"{name}\":{value}")),
                "field {name} missing from {json}"
            );
        }
    }

    #[test]
    fn absorb_sums_counters_and_maxes_the_high_water_mark() {
        let a = EngineStats::new();
        a.record_mc_batch(40, 3, 0);
        a.record_cache_hits(5);
        let b = EngineStats::new();
        b.record_mc_batch(20, 1, 0);
        b.record_nominal_batch(8, 0);
        b.record_evictions(2);
        let mut total = a.snapshot();
        total.absorb(&b.snapshot());
        assert_eq!(total.mc_samples_served, 60);
        assert_eq!(total.nominal_served, 8);
        assert_eq!(total.cache_hits, 5);
        assert_eq!(total.batches, 3);
        assert_eq!(total.mc_batches, 2);
        assert_eq!(total.tasks, 4);
        assert_eq!(total.max_batch_samples, 40, "high-water mark, not a sum");
        assert_eq!(total.evicted_blocks, 2);
    }

    #[test]
    fn empty_snapshot_rates_are_zero() {
        let snap = EngineStatsSnapshot::default();
        assert_eq!(snap.hit_rate(), 0.0);
        assert_eq!(snap.mean_batch_samples(), 0.0);
    }
}
