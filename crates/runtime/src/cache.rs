//! The concurrent simulation cache.
//!
//! Keys are `(quantized design point, sample block index)`. Quantization
//! drops the 12 least-significant mantissa bits of each coordinate (relative
//! error ≈ 2.3 · 10⁻¹³), so designs that differ only by floating-point noise
//! share one sample stream while genuinely different designs collide with
//! negligible probability (64-bit FNV-style hash).
//!
//! The cache is sharded: each shard is a `Mutex<HashMap>` from key to an
//! `Arc<Mutex<Block>>`, so workers contend only when touching the *same*
//! block of the *same* design — which the engine's task deduplication already
//! prevents within one batch.
//!
//! There is **no eviction**: the cache's lifecycle is one optimization run,
//! ended by `EvalEngine::reset()` (or dropping the engine). The engine keeps
//! the retained state small — a unit point is dropped as soon as its outcome
//! is simulated — so the per-design steady state is one `Option<f64>` per
//! simulated sample plus the points of not-yet-simulated slots.

use moheco_sampling::splitmix64;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Number of independent shard locks.
const SHARDS: usize = 16;

/// One shard: a locked map from `(design key, block index)` to its block.
type Shard = Mutex<HashMap<(u64, u64), Arc<Mutex<Block>>>>;

/// One block of a design's sample stream.
#[derive(Debug)]
pub struct Block {
    /// The unit-hypercube points of the block, generated eagerly from the
    /// block's RNG stream (cheap — no circuit simulation involved).
    pub points: Vec<Vec<f64>>,
    /// Per-point likelihood weights of the importance-sampling estimator;
    /// empty means every weight is exactly 1 (all other estimators).
    pub weights: Vec<f64>,
    /// Lazily simulated outcomes, one per point. `None` = not yet simulated.
    /// Stored values are *yield contributions* (`weighted_outcome(w, J)`),
    /// which equal the raw pass/fail indicator whenever the weight is 1.
    pub outcomes: Vec<Option<f64>>,
}

impl Block {
    /// Creates a block from its generated points, with no outcomes yet and
    /// unit weights.
    pub fn new(points: Vec<Vec<f64>>) -> Self {
        Self::with_weights(points, Vec::new())
    }

    /// Creates a block from its generated points and likelihood weights
    /// (empty = all weights are 1).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is non-empty and its length differs from the
    /// point count.
    pub fn with_weights(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Self {
        assert!(
            weights.is_empty() || weights.len() == points.len(),
            "weight/point count mismatch"
        );
        let n = points.len();
        Self {
            points,
            weights,
            outcomes: vec![None; n],
        }
    }
}

/// Concurrent cache of simulation blocks and nominal evaluations.
#[derive(Debug)]
pub struct SimCache {
    mc: Vec<Shard>,
    nominal: Mutex<HashMap<u64, Arc<Vec<f64>>>>,
}

impl Default for SimCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SimCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            mc: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            nominal: Mutex::new(HashMap::new()),
        }
    }

    fn shard(&self, key: u64, block: u64) -> &Shard {
        let mixed = splitmix64(key ^ block.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        &self.mc[(mixed % SHARDS as u64) as usize]
    }

    /// Returns the block for `(design key, block index)`, creating it with
    /// `make` if absent.
    ///
    /// `make` runs *outside* the shard lock (double-checked insertion), so
    /// generating one block's points never stalls workers whose different
    /// blocks hash to the same shard. If two callers race to create the same
    /// block, both generate identical points (a pure function of the seed)
    /// and the first insertion wins — the engine's per-batch task
    /// deduplication makes that race impossible within a batch anyway.
    pub fn block<F: FnOnce() -> Block>(&self, key: u64, block: u64, make: F) -> Arc<Mutex<Block>> {
        if let Some(existing) = self
            .shard(key, block)
            .lock()
            .expect("cache shard poisoned")
            .get(&(key, block))
        {
            return existing.clone();
        }
        let fresh = Arc::new(Mutex::new(make()));
        let mut shard = self.shard(key, block).lock().expect("cache shard poisoned");
        shard.entry((key, block)).or_insert(fresh).clone()
    }

    /// Looks up the cached nominal evaluation of a design.
    pub fn nominal(&self, key: u64) -> Option<Arc<Vec<f64>>> {
        self.nominal
            .lock()
            .expect("nominal cache poisoned")
            .get(&key)
            .cloned()
    }

    /// Stores the nominal evaluation of a design.
    pub fn store_nominal(&self, key: u64, margins: Arc<Vec<f64>>) {
        self.nominal
            .lock()
            .expect("nominal cache poisoned")
            .insert(key, margins);
    }

    /// Number of cached blocks across all shards.
    pub fn blocks(&self) -> usize {
        self.mc
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Drops every cached block and nominal evaluation.
    pub fn clear(&self) {
        for shard in &self.mc {
            shard.lock().expect("cache shard poisoned").clear();
        }
        self.nominal.lock().expect("nominal cache poisoned").clear();
    }
}

/// Quantizes one coordinate: normalises `-0.0` and `NaN`, then drops the 12
/// least-significant mantissa bits.
fn quantize_bits(v: f64) -> u64 {
    if v.is_nan() {
        return 0x7FF8_0000_0000_0001;
    }
    let v = if v == 0.0 { 0.0 } else { v };
    v.to_bits() & !0xFFF
}

/// Hashes a design point into the cache key of its sample stream.
pub fn design_key(x: &[f64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &v in x {
        h = splitmix64(h ^ quantize_bits(v));
    }
    // Guard the length so a prefix design cannot alias its extension.
    splitmix64(h ^ x.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_key_is_stable_under_fp_noise() {
        let a = vec![10.0, 0.5, 130.0];
        // A relative perturbation far below the quantization step.
        let b = vec![10.0 * (1.0 + 1e-15), 0.5, 130.0];
        assert_eq!(design_key(&a), design_key(&b));
    }

    #[test]
    fn design_key_separates_distinct_designs() {
        let a = vec![10.0, 0.5, 130.0];
        let b = vec![10.0, 0.5, 131.0];
        let c = vec![10.0, 0.5];
        assert_ne!(design_key(&a), design_key(&b));
        assert_ne!(design_key(&a), design_key(&c));
        assert_ne!(design_key(&[0.0]), design_key(&[1.0]));
    }

    #[test]
    fn negative_zero_and_nan_are_normalised() {
        assert_eq!(design_key(&[0.0]), design_key(&[-0.0]));
        assert_eq!(design_key(&[f64::NAN]), design_key(&[f64::NAN]));
    }

    #[test]
    fn block_roundtrip_and_clear() {
        let cache = SimCache::new();
        let key = design_key(&[1.0, 2.0]);
        let b = cache.block(key, 0, || Block::new(vec![vec![0.5, 0.5]; 4]));
        {
            let mut guard = b.lock().unwrap();
            assert_eq!(guard.outcomes.len(), 4);
            guard.outcomes[0] = Some(1.0);
        }
        // Second lookup returns the same block (the stored outcome survives).
        let b2 = cache.block(key, 0, || panic!("must not rebuild"));
        assert_eq!(b2.lock().unwrap().outcomes[0], Some(1.0));
        assert_eq!(cache.blocks(), 1);
        cache.clear();
        assert_eq!(cache.blocks(), 0);
    }

    #[test]
    fn nominal_roundtrip() {
        let cache = SimCache::new();
        let key = design_key(&[3.0]);
        assert!(cache.nominal(key).is_none());
        cache.store_nominal(key, Arc::new(vec![0.1, 0.2]));
        assert_eq!(*cache.nominal(key).unwrap(), vec![0.1, 0.2]);
    }
}
