//! The concurrent simulation cache.
//!
//! Keys are `(quantized design point, sample block index)`. Quantization
//! drops the 12 least-significant mantissa bits of each coordinate (relative
//! error ≈ 2.3 · 10⁻¹³), so designs that differ only by floating-point noise
//! share one sample stream while genuinely different designs collide with
//! negligible probability (64-bit FNV-style hash).
//!
//! The cache is sharded: each shard is a `Mutex<HashMap>` from key to an
//! entry holding an `Arc<Mutex<Block>>`, so workers contend only when
//! touching the *same* block of the *same* design — which the engine's task
//! deduplication already prevents within one batch.
//!
//! # Lifecycle and memory
//!
//! Historically the cache's lifecycle was one optimization run, ended by
//! `EvalEngine::reset()`. The campaign layer (`moheco-bench`) now keeps one
//! engine alive across a whole seed × algorithm grid, so the cache carries
//! two additional responsibilities:
//!
//! * **Memory accounting** — [`SimCache::bytes`] estimates the heap
//!   footprint of every retained block *and* of the backing shard tables, so
//!   a long-lived engine can be observed (and bounded) instead of trusted.
//!   [`SimCache::clear`] releases the backing capacity too
//!   (`shrink_to_fit`), so a per-run reset returns memory to near baseline
//!   rather than pinning the peak forever.
//! * **Bounded retention** — [`SimCache::enforce_limit`] implements a coarse
//!   second-chance FIFO eviction: blocks are considered in creation order
//!   (batch-granular, key-tiebroken, so the sweep is deterministic and
//!   independent of worker scheduling), and a block referenced since the
//!   previous sweep gets one reprieve before it is dropped. Eviction only
//!   ever costs *re-simulation*: a block's points are a pure function of
//!   `(seed, design, block index)`, so a re-created block is bit-identical
//!   and correctness is never at stake.

use moheco_sampling::splitmix64;
use std::collections::HashMap;
use std::mem::size_of;
use std::sync::{Arc, Mutex};

/// Number of independent shard locks.
const SHARDS: usize = 16;

/// Approximate per-entry bookkeeping overhead of a hash-map slot (control
/// bytes + padding), used by the [`SimCache::bytes`] estimate.
const MAP_SLOT_OVERHEAD: usize = 16;

/// One cached block plus its eviction bookkeeping.
struct CacheEntry {
    block: Arc<Mutex<Block>>,
    /// Batch sequence number at creation (FIFO eviction order; the set of
    /// blocks created per batch is deterministic, so this is too).
    created: u64,
    /// Whether the entry was referenced since the last eviction sweep
    /// (second-chance bit).
    referenced: bool,
}

/// One shard: a locked map from `(design key, block index)` to its entry.
type Shard = Mutex<HashMap<(u64, u64), CacheEntry>>;

/// One block of a design's sample stream.
#[derive(Debug)]
pub struct Block {
    /// The unit-hypercube points of the block, generated eagerly from the
    /// block's RNG stream (cheap — no circuit simulation involved).
    pub points: Vec<Vec<f64>>,
    /// Per-point likelihood weights of the importance-sampling estimator;
    /// empty means every weight is exactly 1 (all other estimators).
    pub weights: Vec<f64>,
    /// Lazily simulated outcomes, one per point. `None` = not yet simulated.
    /// Stored values are *yield contributions* (`weighted_outcome(w, J)`),
    /// which equal the raw pass/fail indicator whenever the weight is 1.
    pub outcomes: Vec<Option<f64>>,
}

impl Block {
    /// Creates a block from its generated points, with no outcomes yet and
    /// unit weights.
    pub fn new(points: Vec<Vec<f64>>) -> Self {
        Self::with_weights(points, Vec::new())
    }

    /// Creates a block from its generated points and likelihood weights
    /// (empty = all weights are 1).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is non-empty and its length differs from the
    /// point count.
    pub fn with_weights(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Self {
        assert!(
            weights.is_empty() || weights.len() == points.len(),
            "weight/point count mismatch"
        );
        let n = points.len();
        Self {
            points,
            weights,
            outcomes: vec![None; n],
        }
    }

    /// Estimated heap footprint of the block's contents in bytes.
    pub fn bytes(&self) -> usize {
        let inner: usize = self
            .points
            .iter()
            .map(|p| p.capacity() * size_of::<f64>())
            .sum();
        self.points.capacity() * size_of::<Vec<f64>>()
            + inner
            + self.weights.capacity() * size_of::<f64>()
            + self.outcomes.capacity() * size_of::<Option<f64>>()
    }
}

/// One cached nominal evaluation plus its eviction stamp.
struct NominalEntry {
    margins: Arc<Vec<f64>>,
    /// Batch sequence number at creation. All entries of one batch share a
    /// stamp (the per-batch creation *set* is deterministic even under
    /// parallel dispatch), so FIFO trimming stays order-independent.
    created: u64,
}

/// Concurrent cache of simulation blocks and nominal evaluations.
pub struct SimCache {
    mc: Vec<Shard>,
    nominal: Mutex<HashMap<u64, NominalEntry>>,
}

impl std::fmt::Debug for SimCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCache")
            .field("blocks", &self.blocks())
            .field("bytes", &self.bytes())
            .finish()
    }
}

impl Default for SimCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SimCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            mc: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            nominal: Mutex::new(HashMap::new()),
        }
    }

    fn shard(&self, key: u64, block: u64) -> &Shard {
        let mixed = splitmix64(key ^ block.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        &self.mc[(mixed % SHARDS as u64) as usize]
    }

    /// Returns the block for `(design key, block index)`, creating it with
    /// `make` if absent. `batch` is the engine's batch sequence number,
    /// recorded as the entry's creation stamp for FIFO eviction.
    ///
    /// `make` runs *outside* the shard lock (double-checked insertion), so
    /// generating one block's points never stalls workers whose different
    /// blocks hash to the same shard. If two callers race to create the same
    /// block, both generate identical points (a pure function of the seed)
    /// and the first insertion wins — the engine's per-batch task
    /// deduplication makes that race impossible within a batch anyway.
    pub fn block<F: FnOnce() -> Block>(
        &self,
        key: u64,
        block: u64,
        batch: u64,
        make: F,
    ) -> Arc<Mutex<Block>> {
        if let Some(existing) = self
            .shard(key, block)
            .lock()
            .expect("cache shard poisoned")
            .get_mut(&(key, block))
        {
            existing.referenced = true;
            return existing.block.clone();
        }
        let fresh = Arc::new(Mutex::new(make()));
        let mut shard = self.shard(key, block).lock().expect("cache shard poisoned");
        shard
            .entry((key, block))
            .or_insert(CacheEntry {
                block: fresh,
                created: batch,
                referenced: true,
            })
            .block
            .clone()
    }

    /// Looks up the cached nominal evaluation of a design.
    pub fn nominal(&self, key: u64) -> Option<Arc<Vec<f64>>> {
        self.nominal
            .lock()
            .expect("nominal cache poisoned")
            .get(&key)
            .map(|e| e.margins.clone())
    }

    /// Stores the nominal evaluation of a design; `batch` is the engine's
    /// batch sequence number, recorded for FIFO trimming.
    pub fn store_nominal(&self, key: u64, margins: Arc<Vec<f64>>, batch: u64) {
        self.nominal.lock().expect("nominal cache poisoned").insert(
            key,
            NominalEntry {
                margins,
                created: batch,
            },
        );
    }

    /// Number of cached nominal evaluations.
    pub fn nominals(&self) -> usize {
        self.nominal.lock().expect("nominal cache poisoned").len()
    }

    /// Number of cached blocks across all shards.
    pub fn blocks(&self) -> usize {
        self.mc
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Estimated heap footprint of the cache in bytes: block contents plus
    /// the backing capacity of the shard tables and the nominal map, so a
    /// cleared-but-not-shrunk cache is *visible* rather than hidden.
    pub fn bytes(&self) -> usize {
        let entry_slot = size_of::<(u64, u64)>() + size_of::<CacheEntry>() + MAP_SLOT_OVERHEAD;
        let mut total = 0usize;
        for shard in &self.mc {
            let guard = shard.lock().expect("cache shard poisoned");
            total += guard.capacity() * entry_slot;
            for entry in guard.values() {
                total +=
                    size_of::<Mutex<Block>>() + entry.block.lock().expect("block poisoned").bytes();
            }
        }
        let nominal = self.nominal.lock().expect("nominal cache poisoned");
        let nominal_slot = size_of::<u64>() + size_of::<NominalEntry>() + MAP_SLOT_OVERHEAD;
        total += nominal.capacity() * nominal_slot;
        for entry in nominal.values() {
            total += size_of::<Vec<f64>>() + entry.margins.capacity() * size_of::<f64>();
        }
        total
    }

    /// Trims the nominal-evaluation map to at most `max` entries (no-op
    /// when `max == 0`), dropping the oldest first — `(creation batch,
    /// key)` order, deterministic like the block sweep. A trimmed entry
    /// only costs one nominal re-evaluation on its next request. Returns
    /// the number of entries dropped.
    pub fn enforce_nominal_limit(&self, max: usize) -> u64 {
        if max == 0 {
            return 0;
        }
        let mut nominal = self.nominal.lock().expect("nominal cache poisoned");
        if nominal.len() <= max {
            return 0;
        }
        let excess = nominal.len() - max;
        let mut order: Vec<(u64, u64)> = nominal
            .iter()
            .map(|(&key, entry)| (entry.created, key))
            .collect();
        order.sort_unstable();
        for &(_, key) in order.iter().take(excess) {
            nominal.remove(&key);
        }
        excess as u64
    }

    /// Evicts blocks until at most `max` remain (no-op when `max == 0`,
    /// which means unbounded). Returns the number of blocks evicted.
    ///
    /// The sweep is a coarse second-chance FIFO: candidates are visited in
    /// `(creation batch, key)` order — deterministic regardless of worker
    /// scheduling, because the *set* of blocks created and touched per batch
    /// is a pure function of the request history — and an entry referenced
    /// since the previous sweep has its reference bit cleared and survives;
    /// if clearing every bit still leaves the cache over budget, the
    /// reprieved entries are evicted in the same order. Evicting a block
    /// only discards memo state: a later request re-creates it bit-for-bit
    /// and re-simulates its outcomes, so results are unchanged.
    ///
    /// Callers must invoke this between batches (the engine does, after
    /// assembly), never while tasks still expect their blocks to be present.
    pub fn enforce_limit(&self, max: usize) -> u64 {
        if max == 0 {
            return 0;
        }
        let total = self.blocks();
        if total <= max {
            return 0;
        }
        let mut excess = total - max;

        // Snapshot every entry's eviction key.
        let mut candidates: Vec<(u64, (u64, u64), bool)> = Vec::with_capacity(total);
        for shard in &self.mc {
            let guard = shard.lock().expect("cache shard poisoned");
            for (key, entry) in guard.iter() {
                candidates.push((entry.created, *key, entry.referenced));
            }
        }
        candidates.sort_unstable_by_key(|&(created, key, _)| (created, key));

        let mut evicted = 0u64;
        let mut reprieved: Vec<(u64, u64)> = Vec::new();
        for &(_, key, referenced) in &candidates {
            if excess == 0 {
                break;
            }
            if referenced {
                reprieved.push(key);
            } else {
                self.evict(key);
                excess -= 1;
                evicted += 1;
            }
        }
        // Clear the second-chance bit of everything that used it.
        for &key in &reprieved {
            if let Some(entry) = self
                .shard(key.0, key.1)
                .lock()
                .expect("cache shard poisoned")
                .get_mut(&key)
            {
                entry.referenced = false;
            }
        }
        // Still over budget: the reprieve is exhausted, evict in FIFO order.
        for key in reprieved {
            if excess == 0 {
                break;
            }
            self.evict(key);
            excess -= 1;
            evicted += 1;
        }
        evicted
    }

    fn evict(&self, key: (u64, u64)) {
        self.shard(key.0, key.1)
            .lock()
            .expect("cache shard poisoned")
            .remove(&key);
    }

    /// Drops every cached block and nominal evaluation *and releases the
    /// backing capacity* of the shard tables, so a long-lived engine's
    /// per-run reset returns memory to near baseline instead of pinning the
    /// peak table capacity forever.
    pub fn clear(&self) {
        for shard in &self.mc {
            let mut guard = shard.lock().expect("cache shard poisoned");
            guard.clear();
            guard.shrink_to_fit();
        }
        let mut nominal = self.nominal.lock().expect("nominal cache poisoned");
        nominal.clear();
        nominal.shrink_to_fit();
    }
}

/// Quantizes one coordinate: normalises `-0.0` and `NaN`, then drops the 12
/// least-significant mantissa bits.
fn quantize_bits(v: f64) -> u64 {
    if v.is_nan() {
        return 0x7FF8_0000_0000_0001;
    }
    let v = if v == 0.0 { 0.0 } else { v };
    v.to_bits() & !0xFFF
}

/// Hashes a design point into the cache key of its sample stream.
pub fn design_key(x: &[f64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &v in x {
        h = splitmix64(h ^ quantize_bits(v));
    }
    // Guard the length so a prefix design cannot alias its extension.
    splitmix64(h ^ x.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_key_is_stable_under_fp_noise() {
        let a = vec![10.0, 0.5, 130.0];
        // A relative perturbation far below the quantization step.
        let b = vec![10.0 * (1.0 + 1e-15), 0.5, 130.0];
        assert_eq!(design_key(&a), design_key(&b));
    }

    #[test]
    fn design_key_separates_distinct_designs() {
        let a = vec![10.0, 0.5, 130.0];
        let b = vec![10.0, 0.5, 131.0];
        let c = vec![10.0, 0.5];
        assert_ne!(design_key(&a), design_key(&b));
        assert_ne!(design_key(&a), design_key(&c));
        assert_ne!(design_key(&[0.0]), design_key(&[1.0]));
    }

    #[test]
    fn negative_zero_and_nan_are_normalised() {
        assert_eq!(design_key(&[0.0]), design_key(&[-0.0]));
        assert_eq!(design_key(&[f64::NAN]), design_key(&[f64::NAN]));
    }

    #[test]
    fn block_roundtrip_and_clear() {
        let cache = SimCache::new();
        let key = design_key(&[1.0, 2.0]);
        let b = cache.block(key, 0, 0, || Block::new(vec![vec![0.5, 0.5]; 4]));
        {
            let mut guard = b.lock().unwrap();
            assert_eq!(guard.outcomes.len(), 4);
            guard.outcomes[0] = Some(1.0);
        }
        // Second lookup returns the same block (the stored outcome survives).
        let b2 = cache.block(key, 0, 1, || panic!("must not rebuild"));
        assert_eq!(b2.lock().unwrap().outcomes[0], Some(1.0));
        assert_eq!(cache.blocks(), 1);
        cache.clear();
        assert_eq!(cache.blocks(), 0);
    }

    #[test]
    fn nominal_roundtrip() {
        let cache = SimCache::new();
        let key = design_key(&[3.0]);
        assert!(cache.nominal(key).is_none());
        cache.store_nominal(key, Arc::new(vec![0.1, 0.2]), 0);
        assert_eq!(*cache.nominal(key).unwrap(), vec![0.1, 0.2]);
        assert_eq!(cache.nominals(), 1);
    }

    #[test]
    fn nominal_limit_trims_oldest_first() {
        let cache = SimCache::new();
        for i in 0..5u64 {
            cache.store_nominal(design_key(&[i as f64]), Arc::new(vec![i as f64]), i);
        }
        assert_eq!(cache.enforce_nominal_limit(0), 0, "0 means unbounded");
        assert_eq!(cache.enforce_nominal_limit(3), 2);
        assert_eq!(cache.nominals(), 3);
        assert!(cache.nominal(design_key(&[0.0])).is_none(), "oldest went");
        assert!(cache.nominal(design_key(&[1.0])).is_none());
        assert!(cache.nominal(design_key(&[4.0])).is_some(), "newest stays");
    }

    #[test]
    fn bytes_track_contents_and_clear_releases_capacity() {
        let cache = SimCache::new();
        let baseline = cache.bytes();
        for i in 0..200u64 {
            let key = design_key(&[i as f64]);
            let _ = cache.block(key, 0, i, || Block::new(vec![vec![0.5; 8]; 16]));
        }
        let filled = cache.bytes();
        assert!(
            filled > baseline + 200 * 16 * 8 * 8,
            "bytes() must count block contents: {filled} vs baseline {baseline}"
        );
        cache.clear();
        // The regression this guards: clear() used to keep the shard tables'
        // backing capacity, so a campaign's per-run reset pinned peak memory.
        let cleared = cache.bytes();
        assert!(
            cleared <= baseline + SHARDS * MAP_SLOT_OVERHEAD,
            "clear() must release backing capacity: {cleared} vs baseline {baseline}"
        );
    }

    #[test]
    fn enforce_limit_is_fifo_with_second_chance() {
        let cache = SimCache::new();
        let keys: Vec<u64> = (0..6).map(|i| design_key(&[i as f64])).collect();
        for (i, &key) in keys.iter().enumerate() {
            let _ = cache.block(key, 0, i as u64, || Block::new(vec![vec![0.0]; 2]));
        }
        // All entries are freshly referenced: the sweep reprieves everyone
        // (clearing the bits), then falls back to FIFO — the two oldest go.
        assert_eq!(cache.enforce_limit(4), 2);
        assert_eq!(cache.blocks(), 4);
        let mut rebuilt = false;
        let _ = cache.block(keys[0], 0, 10, || {
            rebuilt = true;
            Block::new(vec![vec![0.0]; 2])
        });
        assert!(rebuilt, "oldest entry was evicted");
        let mut rebuilt2 = false;
        let _ = cache.block(keys[2], 0, 11, || {
            rebuilt2 = true;
            Block::new(vec![vec![0.0]; 2])
        });
        assert!(!rebuilt2, "younger entry survived");

        // Five blocks now; keys[2] (the FIFO-oldest) was just touched while
        // keys[3] was not. The next sweep reprieves keys[2] (second chance)
        // and evicts keys[3] instead.
        assert_eq!(cache.enforce_limit(4), 1);
        let mut rebuilt3 = false;
        let _ = cache.block(keys[3], 0, 12, || {
            rebuilt3 = true;
            Block::new(vec![vec![0.0]; 2])
        });
        assert!(rebuilt3, "unreferenced FIFO-oldest entry was evicted");
        let mut rebuilt4 = false;
        let _ = cache.block(keys[2], 0, 13, || {
            rebuilt4 = true;
            Block::new(vec![vec![0.0]; 2])
        });
        assert!(!rebuilt4, "referenced entry got its second chance");
    }

    #[test]
    fn enforce_limit_zero_means_unbounded() {
        let cache = SimCache::new();
        for i in 0..10u64 {
            let _ = cache.block(design_key(&[i as f64]), 0, i, || {
                Block::new(vec![vec![0.0]; 1])
            });
        }
        assert_eq!(cache.enforce_limit(0), 0);
        assert_eq!(cache.blocks(), 10);
    }
}
