//! Engine-side observability glue: tracer probe wiring and Prometheus
//! exposition of engine counters.

use crate::engine::EvalEngine;
use crate::stats::EngineStatsSnapshot;
use moheco_obs::prometheus::{push_header, push_sample, render_phase_metrics};
use moheco_obs::{PhaseBreakdown, ProbeCounters, Tracer};
use std::sync::Arc;

/// Installs `engine`'s counters as the budget-attribution probe of `tracer`.
///
/// After this call, every simulation, cache hit and eviction the engine
/// performs while a span is active is attributed to the innermost phase.
/// Reading the probe only loads relaxed atomics, and the tracer reads it at
/// span boundaries only — the engine itself is untouched, so a traced run
/// produces bit-identical yields, counters and digests to an untraced one.
pub fn attach_engine_probe(tracer: &Tracer, engine: &Arc<dyn EvalEngine>) {
    if !tracer.is_enabled() {
        return;
    }
    let engine = Arc::clone(engine);
    tracer.set_probe(move || {
        let stats = engine.stats();
        ProbeCounters {
            simulations: engine.simulations(),
            cache_hits: stats.cache_hits,
            evictions: stats.evicted_blocks,
        }
    });
}

/// Renders an engine snapshot plus a phase breakdown in the Prometheus text
/// exposition format — the campaign process's metrics endpoint.
///
/// Engine counters come out as `moheco_engine_<counter>` counter families
/// (plus a `moheco_engine_cache_hit_ratio` gauge); phase attribution follows
/// via [`moheco_obs::prometheus::render_phase_metrics`].
pub fn render_prometheus(stats: &EngineStatsSnapshot, breakdown: &PhaseBreakdown) -> String {
    let mut out = String::new();
    for (name, value) in stats.counter_fields() {
        let metric = format!("moheco_engine_{name}");
        push_header(
            &mut out,
            &metric,
            "counter",
            "Engine counter (see EngineStatsSnapshot).",
        );
        push_sample(&mut out, &metric, &[], value as f64);
    }
    push_header(
        &mut out,
        "moheco_engine_cache_hit_ratio",
        "gauge",
        "Fraction of served work answered by the cache.",
    );
    push_sample(
        &mut out,
        "moheco_engine_cache_hit_ratio",
        &[],
        stats.hit_rate(),
    );
    out.push_str(&render_phase_metrics(breakdown));
    out
}

/// One engine's current cache footprint inside a pool, labelled for
/// exposition (the campaign labels by scenario, the service by
/// `tenant/scenario/estimator`).
///
/// Exists because `SimCache::bytes()` was only ever reported *per engine*:
/// nothing summed it across a pool, so a campaign or service enforcing
/// per-tenant quotas on top of `max_cached_blocks` had no observable
/// pool-level total. [`render_pool_cache`] closes that gap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineCacheUsage {
    /// Stable exposition label of the engine within the pool.
    pub label: String,
    /// Cached simulation blocks currently retained.
    pub blocks: usize,
    /// Estimated bytes of cached outcomes currently retained.
    pub bytes: usize,
}

/// Renders a pool's per-engine cache breakdown plus the pool-level totals in
/// the Prometheus text exposition format.
///
/// Families: `moheco_pool_engines` (gauge), `moheco_pool_cache_blocks` /
/// `moheco_pool_cache_bytes` (per-engine gauges, `engine` label), and
/// `moheco_pool_cache_blocks_total` / `moheco_pool_cache_bytes_total`.
/// These are deliberately *separate* families from the
/// `moheco_engine_<counter>` ones: the counter schema feeds gated baselines
/// and must not grow gauge fields.
pub fn render_pool_cache(usage: &[EngineCacheUsage]) -> String {
    let mut out = String::new();
    push_header(
        &mut out,
        "moheco_pool_engines",
        "gauge",
        "Engines currently alive in the pool.",
    );
    push_sample(&mut out, "moheco_pool_engines", &[], usage.len() as f64);
    push_header(
        &mut out,
        "moheco_pool_cache_blocks",
        "gauge",
        "Cached simulation blocks retained by each pool engine.",
    );
    for u in usage {
        push_sample(
            &mut out,
            "moheco_pool_cache_blocks",
            &[("engine", &u.label)],
            u.blocks as f64,
        );
    }
    push_header(
        &mut out,
        "moheco_pool_cache_bytes",
        "gauge",
        "Estimated cached bytes retained by each pool engine.",
    );
    for u in usage {
        push_sample(
            &mut out,
            "moheco_pool_cache_bytes",
            &[("engine", &u.label)],
            u.bytes as f64,
        );
    }
    let blocks_total: usize = usage.iter().map(|u| u.blocks).sum();
    let bytes_total: usize = usage.iter().map(|u| u.bytes).sum();
    push_header(
        &mut out,
        "moheco_pool_cache_blocks_total",
        "gauge",
        "Cached simulation blocks retained across the whole pool.",
    );
    push_sample(
        &mut out,
        "moheco_pool_cache_blocks_total",
        &[],
        blocks_total as f64,
    );
    push_header(
        &mut out,
        "moheco_pool_cache_bytes_total",
        "gauge",
        "Estimated cached bytes retained across the whole pool.",
    );
    push_sample(
        &mut out,
        "moheco_pool_cache_bytes_total",
        &[],
        bytes_total as f64,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, SerialEngine};
    use crate::model::McRequest;
    use crate::SimulationModel;
    use moheco_obs::Span;

    struct Toy;
    impl SimulationModel for Toy {
        fn unit_dimension(&self) -> usize {
            1
        }
        fn simulate_point(&self, x: &[f64], u: &[f64]) -> f64 {
            if u[0] < x[0] {
                1.0
            } else {
                0.0
            }
        }
        fn nominal(&self, x: &[f64]) -> Vec<f64> {
            vec![x[0]]
        }
    }

    #[test]
    fn probe_attributes_engine_work_to_phases() {
        let engine: Arc<dyn EvalEngine> = Arc::new(SerialEngine::new(EngineConfig::default()));
        let tracer = Tracer::aggregating();
        attach_engine_probe(&tracer, &engine);
        let req = McRequest::new(vec![0.5], 0, 100);
        {
            let _run = Span::enter(&tracer, "run");
            engine.mc_outcomes(&Toy, std::slice::from_ref(&req));
            {
                let _rerun = Span::enter(&tracer, "reread");
                // Same samples again: pure cache hits, zero simulations.
                engine.mc_outcomes(&Toy, std::slice::from_ref(&req));
            }
        }
        let b = tracer.breakdown();
        assert_eq!(b.get("run").unwrap().simulations, 100);
        assert_eq!(b.get("run/reread").unwrap().simulations, 0);
        assert_eq!(b.get("run/reread").unwrap().cache_hits, 100);
        assert_eq!(b.total_simulations(), engine.simulations());
    }

    #[test]
    fn pool_cache_exposition_reports_breakdown_and_totals() {
        let usage = vec![
            EngineCacheUsage {
                label: "acme/margin_wall/mc".to_string(),
                blocks: 3,
                bytes: 1_200,
            },
            EngineCacheUsage {
                label: "beta/margin_wall/mc".to_string(),
                blocks: 5,
                bytes: 2_000,
            },
        ];
        let text = render_pool_cache(&usage);
        assert!(text.contains("moheco_pool_engines 2"));
        assert!(text.contains("moheco_pool_cache_blocks{engine=\"acme/margin_wall/mc\"} 3"));
        assert!(text.contains("moheco_pool_cache_bytes{engine=\"beta/margin_wall/mc\"} 2000"));
        assert!(text.contains("moheco_pool_cache_blocks_total 8"));
        assert!(text.contains("moheco_pool_cache_bytes_total 3200"));
        // An empty pool still renders well-formed totals.
        let empty = render_pool_cache(&[]);
        assert!(empty.contains("moheco_pool_engines 0"));
        assert!(empty.contains("moheco_pool_cache_bytes_total 0"));
    }

    #[test]
    fn probe_on_a_disabled_tracer_is_a_no_op() {
        let engine: Arc<dyn EvalEngine> = Arc::new(SerialEngine::new(EngineConfig::default()));
        let tracer = Tracer::disabled();
        attach_engine_probe(&tracer, &engine);
        let _span = Span::enter(&tracer, "run");
        assert!(tracer.breakdown().is_empty());
    }

    #[test]
    fn prometheus_snapshot_includes_engine_and_phase_families() {
        let engine: Arc<dyn EvalEngine> = Arc::new(SerialEngine::new(EngineConfig::default()));
        let tracer = Tracer::aggregating();
        attach_engine_probe(&tracer, &engine);
        {
            let _run = Span::enter(&tracer, "run");
            let req = McRequest::new(vec![0.5], 0, 50);
            engine.mc_outcomes(&Toy, std::slice::from_ref(&req));
        }
        let text = render_prometheus(&engine.stats(), &tracer.breakdown());
        assert!(text.contains("moheco_engine_simulations_run 50"));
        assert!(text.contains("moheco_engine_cache_hit_ratio"));
        assert!(text.contains("moheco_phase_simulations_total{phase=\"run\"} 50"));
        assert!(
            !text.contains("busy_nanos"),
            "wall-clock timing is not part of the counter snapshot"
        );
    }
}
