//! The simulation abstraction the engine dispatches over, and the jobs it
//! accepts.
//!
//! The engine is deliberately ignorant of circuits: it sees a
//! [`SimulationModel`] mapping `(design x, unit-hypercube point u)` to a
//! scalar outcome, plus a nominal (variation-free) evaluation. The core crate
//! adapts its `Testbench` + `ProcessSampler` pair onto this trait.

/// A deterministic, thread-safe simulation model.
///
/// Implementations must be pure functions of their inputs: the engine may
/// evaluate the same job on any worker thread and caches results by value.
pub trait SimulationModel: Send + Sync {
    /// Dimension of the unit-hypercube points fed to [`Self::simulate_point`]
    /// (the number of statistical process variables).
    fn unit_dimension(&self) -> usize;

    /// Evaluates one Monte-Carlo replication: design `x` at the process
    /// sample encoded by the unit point `u`. For yield estimation the outcome
    /// is the pass/fail indicator (1.0 = all specs met).
    fn simulate_point(&self, x: &[f64], u: &[f64]) -> f64;

    /// Evaluates design `x` against a block of unit points, writing one raw
    /// outcome per point into `out` (`out.len() == us.len()`).
    ///
    /// The default implementation loops [`Self::simulate_point`]. Models with
    /// a batched fast path (shared factorization across samples of one
    /// design) override it, under a strict contract: `out[i]` must be
    /// **bit-identical** to `self.simulate_point(x, &us[i])` for every `i`.
    /// The engine dispatches whole blocks through this method, and its caches,
    /// digests and estimator weights all assume the two entry points are
    /// interchangeable.
    fn simulate_block(&self, x: &[f64], us: &[Vec<f64>], out: &mut [f64]) {
        assert_eq!(us.len(), out.len(), "outcome buffer must match the block");
        for (o, u) in out.iter_mut().zip(us) {
            *o = self.simulate_point(x, u);
        }
    }

    /// Evaluates the design at the nominal (variation-free) process point,
    /// returning the normalised specification margins.
    fn nominal(&self, x: &[f64]) -> Vec<f64>;

    /// Mean shift (in z-space, one entry per statistical variable) toward
    /// the dominant failure mode of design `x`, used by the
    /// importance-sampling estimator to concentrate samples where failures
    /// happen.
    ///
    /// The shift must be a pure function of `x` (it participates in the
    /// deterministic per-`(design, block)` stream contract). Models without
    /// an analytic notion of a failure direction return `None` (the
    /// default), which makes the importance-sampling estimator degrade
    /// gracefully to unweighted sampling.
    fn importance_shift(&self, _x: &[f64]) -> Option<Vec<f64>> {
        None
    }
}

/// A request for a contiguous range of Monte-Carlo outcomes of one design.
///
/// Every design owns one conceptual infinite sample stream, indexed from 0.
/// A request asks for outcomes `start .. start + count`; consumers that
/// accumulate samples (stage-1 estimation, stage-2 top-up, final re-estimate)
/// pass the number of samples they already hold as `start`, so the ranges
/// they see are disjoint and their merged estimates are consistent.
#[derive(Debug, Clone, PartialEq)]
pub struct McRequest {
    /// The design point.
    pub design: Vec<f64>,
    /// Index of the first requested sample in the design's stream.
    pub start: usize,
    /// Number of requested samples.
    pub count: usize,
}

impl McRequest {
    /// Creates a request for outcomes `start .. start + count` of `design`.
    pub fn new(design: Vec<f64>, start: usize, count: usize) -> Self {
        Self {
            design,
            start,
            count,
        }
    }
}
