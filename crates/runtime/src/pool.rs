//! A minimal work-stealing execution pool built on scoped `std::thread`s.
//!
//! `rayon` is not available in this build environment, so this module plays
//! its role for the [`crate::ParallelEngine`]: a batch of independent tasks
//! is drained from a shared atomic cursor by `workers` scoped threads
//! (dynamic self-scheduling — each idle worker "steals" the next undone task,
//! so long tasks never serialise behind short ones).
//!
//! Scoped threads let tasks borrow the simulation model and cache without
//! `'static` bounds; the pool is created per batch, which measures ~tens of
//! microseconds per worker and is negligible next to circuit simulation.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Executes `run` over every task, using up to `workers` threads.
///
/// With `workers <= 1` (or at most one task) the tasks run inline on the
/// caller's thread, which keeps the serial path completely thread-free.
///
/// # Panics
///
/// Propagates the first worker panic to the caller (via scoped-thread join).
pub fn run_tasks<T, F>(tasks: &[T], workers: usize, run: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    if workers <= 1 || tasks.len() <= 1 {
        for task in tasks {
            run(task);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let threads = workers.min(tasks.len());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                run(&tasks[i]);
            });
        }
    });
}

/// The default worker count: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_task_runs_exactly_once() {
        let tasks: Vec<usize> = (0..257).collect();
        let hits: Vec<AtomicU64> = (0..tasks.len()).map(|_| AtomicU64::new(0)).collect();
        run_tasks(&tasks, 8, |&i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_worker_runs_inline() {
        let tasks = vec![1, 2, 3];
        let sum = AtomicU64::new(0);
        run_tasks(&tasks, 1, |&v| {
            sum.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let tasks: Vec<u8> = Vec::new();
        run_tasks(&tasks, 4, |_| panic!("no tasks to run"));
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
