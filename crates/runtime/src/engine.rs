//! The evaluation engines: serial and parallel dispatch over the shared
//! block cache with deterministic per-block RNG streams.
//!
//! Both engines share one core. A batch of [`McRequest`]s is split into
//! per-`(design, block)` tasks (deduplicated and merged, so one block is
//! touched by exactly one task per batch), the tasks are executed — inline by
//! [`SerialEngine`], on the work-stealing pool by [`ParallelEngine`] — and
//! the outcomes are assembled back in request order. Because a block's unit
//! points are a pure function of `(engine seed, quantized design, block
//! index)` and outcomes are cached per sample index, the *values* returned
//! and the *number of simulations executed* are identical regardless of
//! execution order: parallel and serial runs are bit-identical.

use crate::cache::{design_key, Block, SimCache};
use crate::model::{McRequest, SimulationModel};
use crate::pool;
use crate::stats::{EngineStats, EngineStatsSnapshot, EngineTiming};
use moheco_sampling::{
    splitmix64, weighted_outcome, EstimatedYield, EstimatorKind, RngStreams, SamplingPlan,
    SimulationCounter, YieldEstimator,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Configuration shared by both engine implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Master seed of every per-block RNG stream. Two engines with the same
    /// seed produce identical sample streams for identical designs.
    pub seed: u64,
    /// Sampling plan used to generate each block of unit points.
    pub plan: SamplingPlan,
    /// Samples per cache block. Latin-Hypercube stratification applies
    /// *within* a block, so this is also the LHS stratum count: an estimate
    /// spanning k blocks is k independent `block_size`-stratum LHS designs,
    /// not one big one. Smaller blocks give finer cache granularity and more
    /// intra-design parallelism; larger blocks give stronger stratification
    /// per estimate. The default (50) sits between the paper's stage-1
    /// budgets (~15-35 samples, which a bigger block would under-stratify)
    /// and `n_max` (500).
    pub block_size: usize,
    /// Worker threads for [`ParallelEngine`]; `0` = the machine's available
    /// parallelism. Ignored by [`SerialEngine`].
    pub workers: usize,
    /// The variance-reduction estimator shaping every block of the sample
    /// streams (see `moheco_sampling::estimator`). The default
    /// ([`EstimatorKind::MonteCarlo`]) reproduces the pre-estimator streams
    /// bit for bit.
    pub estimator: EstimatorKind,
    /// Upper bound on retained cache blocks (`0` = unbounded, the default).
    /// When set, the engine sweeps the cache after every Monte-Carlo batch
    /// with a deterministic second-chance FIFO ([`SimCache::enforce_limit`])
    /// and trims the (much smaller) nominal-evaluation map to the same
    /// entry count after every nominal batch, so a bounded long-lived
    /// engine is bounded in *both* retention maps. Eviction only ever costs
    /// re-simulation — evicted blocks re-create bit-identically on the next
    /// request — so outcomes are unchanged and parallel == serial still
    /// holds (including the simulation counts, because the sweep order is
    /// independent of worker scheduling).
    pub max_cached_blocks: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            seed: 0x4D4F_4845, // "MOHE"
            plan: SamplingPlan::LatinHypercube,
            block_size: 50,
            workers: 0,
            estimator: EstimatorKind::MonteCarlo,
            max_cached_blocks: 0,
        }
    }
}

impl EngineConfig {
    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker count (`ParallelEngine` only).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the variance-reduction estimator.
    pub fn with_estimator(mut self, estimator: EstimatorKind) -> Self {
        self.estimator = estimator;
        self
    }

    /// Bounds the number of retained cache blocks (`0` = unbounded).
    pub fn with_max_cached_blocks(mut self, max: usize) -> Self {
        self.max_cached_blocks = max;
        self
    }

    /// Builds the estimator implementation matching this configuration
    /// (variance formulas are parameterized by the block size).
    pub fn build_estimator(&self) -> Box<dyn YieldEstimator> {
        self.estimator.build(self.block_size)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero, or odd while the antithetic estimator
    /// is selected (a mirrored pair may never straddle two cache blocks).
    pub fn validate(&self) {
        assert!(self.block_size > 0, "block size must be positive");
        if self.estimator == EstimatorKind::Antithetic {
            assert!(
                self.block_size.is_multiple_of(2),
                "antithetic pairing requires an even block size"
            );
        }
    }
}

/// The simulation-dispatch abstraction every consumer in the workspace
/// routes circuit evaluations through.
pub trait EvalEngine: Send + Sync {
    /// Short human-readable name ("serial" / "parallel").
    fn name(&self) -> &'static str;

    /// The engine configuration.
    fn config(&self) -> &EngineConfig;

    /// Evaluates a batch of Monte-Carlo outcome requests, returning one
    /// outcome vector per request (same order). Outcomes are deterministic
    /// functions of `(engine seed, design, sample index)` and cached.
    fn mc_outcomes(&self, model: &dyn SimulationModel, requests: &[McRequest]) -> Vec<Vec<f64>>;

    /// Condenses outcome values (starting at sample index 0 of one design's
    /// stream) into a yield estimate with the engine's configured
    /// estimator — the same instance that shaped the blocks, so the variance
    /// formula always matches the sample layout.
    fn estimate(&self, outcomes: &[f64]) -> EstimatedYield;

    /// Evaluates a batch of designs at the nominal process point, returning
    /// the specification margins per design. Cached by design.
    fn nominal_batch(&self, model: &dyn SimulationModel, designs: &[Vec<f64>]) -> Vec<Vec<f64>>;

    /// Instrumentation snapshot (deterministic counters only).
    fn stats(&self) -> EngineStatsSnapshot;

    /// Wall-clock accounting, segregated from the gated counter snapshot.
    fn timing(&self) -> EngineTiming;

    /// Total circuit simulations executed so far (Monte-Carlo + nominal).
    fn simulations(&self) -> u64;

    /// A shared handle on the engine's simulation counter.
    fn counter(&self) -> SimulationCounter;

    /// Resets counters *and* the cache (used between experiment repetitions,
    /// so a repetition cannot be served from a previous run's cache). The
    /// active seed is left untouched.
    fn reset(&self);

    /// Resets only the instrumentation counters, keeping the cache warm.
    /// Used by the campaign layer's shared-cache mode, where one long-lived
    /// engine serves many runs and each run's counters must start at zero.
    fn reset_counters(&self);

    /// Switches the engine's *active seed*: all sample streams generated
    /// after this call derive from the new seed, exactly as if the engine
    /// had been constructed with it. Cache entries are keyed by the active
    /// seed, so blocks of different seeds never alias — a reseeded engine
    /// returns bit-identical outcomes to a fresh engine of the same seed
    /// (the warm cache can only change *how many* simulations were executed
    /// to serve them, never their values). Nominal evaluations are
    /// seed-independent and stay shared across seeds.
    fn reseed(&self, seed: u64);

    /// The seed currently shaping the sample streams (the construction seed
    /// until [`Self::reseed`] is called).
    fn active_seed(&self) -> u64;

    /// Number of blocks currently retained by the cache.
    fn cache_blocks(&self) -> usize;

    /// Estimated heap footprint of the cache in bytes (block contents plus
    /// backing table capacity; see `SimCache::bytes`).
    fn cache_bytes(&self) -> usize;

    /// Trims the cache down to at most `max_blocks` retained Monte-Carlo
    /// blocks (and the same bound on nominal entries), returning the number
    /// of blocks evicted. Evictions are recorded in the engine counters.
    ///
    /// This is the hook external quota policies (the service's per-tenant
    /// cache quotas) use to shrink an *idle* engine below its configured
    /// `max_cached_blocks`. It must only be called while the engine is
    /// quiescent — between batches, like the internal bound sweep — because
    /// eviction mid-batch would break block assembly. The default does
    /// nothing (mock engines have no cache to trim).
    fn enforce_cache_limit(&self, max_blocks: usize) -> u64 {
        let _ = max_blocks;
        0
    }

    /// Convenience: outcomes `start .. start + count` of one design.
    fn mc_single(
        &self,
        model: &dyn SimulationModel,
        x: &[f64],
        start: usize,
        count: usize,
    ) -> Vec<f64> {
        let req = McRequest::new(x.to_vec(), start, count);
        self.mc_outcomes(model, std::slice::from_ref(&req))
            .pop()
            .expect("one request yields one result")
    }

    /// Convenience: nominal margins of one design.
    fn nominal_single(&self, model: &dyn SimulationModel, x: &[f64]) -> Vec<f64> {
        self.nominal_batch(model, std::slice::from_ref(&x.to_vec()))
            .pop()
            .expect("one design yields one result")
    }
}

/// Iterates the `(block index, lo, hi)` triples covering sample indices
/// `start .. start + count`, with `lo`/`hi` local to each block. The single
/// source of block-addressing arithmetic for task planning and assembly.
fn block_ranges(
    start: usize,
    count: usize,
    block_size: usize,
) -> impl Iterator<Item = (u64, usize, usize)> {
    let end = start + count;
    (start / block_size..)
        .take_while(move |b| b * block_size < end)
        .map(move |b| {
            let block_lo = b * block_size;
            let lo = start.max(block_lo) - block_lo;
            let hi = end.min(block_lo + block_size) - block_lo;
            (b as u64, lo, hi)
        })
}

/// One deduplicated unit of work: the requested sample ranges inside one
/// block of one design's stream. Ranges are kept separate (not merged into
/// their convex hull) so that disjoint requests never cause the gap between
/// them to be simulated.
///
/// `cache_key` mixes the active seed into the design key so blocks of
/// different seeds never alias in a long-lived (reseeded) engine;
/// `stream_key` is the plain design key, which together with the active seed
/// derives the RNG stream exactly as before the campaign layer existed.
struct BlockTask {
    cache_key: u64,
    stream_key: u64,
    block: u64,
    request_index: usize,
    ranges: Vec<(usize, usize)>,
}

/// State shared by [`SerialEngine`] and [`ParallelEngine`].
struct EngineCore {
    config: EngineConfig,
    estimator: Box<dyn YieldEstimator>,
    cache: SimCache,
    stats: EngineStats,
    counter: SimulationCounter,
    /// The seed currently shaping sample streams (starts at `config.seed`;
    /// `reseed` swaps it between runs of a long-lived engine).
    active_seed: AtomicU64,
    /// Monotonic batch sequence, stamped on cache entries for FIFO eviction.
    batch_seq: AtomicU64,
}

/// Mixes the active seed into a design key to form the cache-map key. The
/// mix is a pure bijection per seed, so within one seed it only permutes
/// keys (shard selection changes, results do not), while across seeds it
/// separates the streams of a reseeded engine.
fn seeded_cache_key(design_key: u64, seed: u64) -> u64 {
    splitmix64(design_key ^ splitmix64(seed ^ 0xCA11_ED5E_ED00_0001))
}

impl EngineCore {
    fn new(config: EngineConfig) -> Self {
        config.validate();
        Self {
            estimator: config.build_estimator(),
            cache: SimCache::new(),
            stats: EngineStats::new(),
            counter: SimulationCounter::new(),
            active_seed: AtomicU64::new(config.seed),
            batch_seq: AtomicU64::new(0),
            config,
        }
    }

    fn active_seed(&self) -> u64 {
        self.active_seed.load(Ordering::Relaxed)
    }

    fn make_block(
        &self,
        model: &dyn SimulationModel,
        design: &[f64],
        stream_key: u64,
        block: u64,
    ) -> Block {
        // Per-(design, block) stream derived from the *active* seed through
        // the workspace's shared RngStreams scheme — independent of execution
        // order, which is what makes parallel == serial. The estimator shapes
        // the block (plan points, LHS strata, mirrored pairs or a shifted
        // weighted cloud) but its input is only this stream, the design and
        // the model's pure shift hint, so the guarantee is unchanged. For a
        // never-reseeded engine the active seed *is* the config seed, so the
        // historic streams are reproduced bit for bit.
        let mut rng = RngStreams::new(self.active_seed()).stream(stream_key, block);
        let shift = if self.config.estimator == EstimatorKind::ImportanceSampling {
            model.importance_shift(design)
        } else {
            None
        };
        let generated = self.estimator.generate_block(
            &mut rng,
            self.config.block_size,
            model.unit_dimension(),
            self.config.plan,
            shift.as_deref(),
        );
        Block::with_weights(generated.points, generated.weights)
    }

    /// Splits the requests into deduplicated per-(design, block) tasks.
    fn plan_tasks(&self, requests: &[McRequest]) -> Vec<BlockTask> {
        let block_size = self.config.block_size;
        let seed = self.active_seed();
        let mut needed: HashMap<(u64, u64), BlockTask> = HashMap::new();
        for (request_index, request) in requests.iter().enumerate() {
            if request.count == 0 {
                continue;
            }
            let stream_key = design_key(&request.design);
            let cache_key = seeded_cache_key(stream_key, seed);
            for (block, lo, hi) in block_ranges(request.start, request.count, block_size) {
                needed
                    .entry((cache_key, block))
                    .and_modify(|t| t.ranges.push((lo, hi)))
                    .or_insert(BlockTask {
                        cache_key,
                        stream_key,
                        block,
                        request_index,
                        ranges: vec![(lo, hi)],
                    });
            }
        }
        let mut tasks: Vec<BlockTask> = needed.into_values().collect();
        // Deterministic dispatch order (helps reproducible profiling; the
        // results never depend on it).
        tasks.sort_by_key(|t| (t.cache_key, t.block));
        tasks
    }

    fn mc_outcomes(
        &self,
        model: &dyn SimulationModel,
        requests: &[McRequest],
        workers: usize,
    ) -> Vec<Vec<f64>> {
        let start_time = Instant::now();
        let batch = self.batch_seq.fetch_add(1, Ordering::Relaxed);
        let tasks = self.plan_tasks(requests);
        let executed = AtomicU64::new(0);

        pool::run_tasks(&tasks, workers, |task| {
            let design = &requests[task.request_index].design;
            let block = self.cache.block(task.cache_key, task.block, batch, || {
                self.make_block(model, design, task.stream_key, task.block)
            });
            let mut guard = block.lock().expect("block poisoned");
            // Gather the pending sample indices of this task. Overlapping
            // ranges are harmless: the `is_none` guard plus the `queued`
            // marker make every sample index simulate at most once. Each unit
            // point is consumed (taken) by its simulation — a simulated index
            // is never re-simulated, so the point is dead weight afterwards;
            // this keeps even partially simulated blocks lean.
            let mut pending: Vec<usize> = Vec::new();
            {
                let mut queued = vec![false; guard.outcomes.len()];
                for &(lo, hi) in &task.ranges {
                    #[allow(clippy::needless_range_loop)] // `i` indexes two slices
                    for i in lo..hi {
                        if guard.outcomes[i].is_none() && !queued[i] {
                            queued[i] = true;
                            pending.push(i);
                        }
                    }
                }
            }
            let ran = pending.len() as u64;
            if ran > 0 {
                // One whole-block dispatch: models with a batched fast path
                // amortise their per-design setup across the samples; the
                // default implementation loops simulate_point, so outcomes
                // are bit-identical either way (see SimulationModel).
                let points: Vec<Vec<f64>> = pending
                    .iter()
                    .map(|&i| std::mem::take(&mut guard.points[i]))
                    .collect();
                let mut raws = vec![0.0; points.len()];
                model.simulate_block(design, &points, &mut raws);
                for (&i, &raw) in pending.iter().zip(&raws) {
                    // Stored outcomes are yield contributions: the raw
                    // indicator under unit weights, `1 − w (1 − J)` for
                    // importance-sampled blocks.
                    let outcome = match guard.weights.get(i) {
                        Some(&w) => weighted_outcome(w, raw),
                        None => raw,
                    };
                    guard.outcomes[i] = Some(outcome);
                }
            }
            // A fully simulated block never reads points or weights again;
            // drop the (now all-empty) outer vectors too.
            if ran > 0 && guard.outcomes.iter().all(|o| o.is_some()) {
                guard.points = Vec::new();
                guard.weights = Vec::new();
            }
            if ran > 0 {
                executed.fetch_add(ran, Ordering::Relaxed);
            }
        });

        // Assemble in request order; every needed outcome now exists.
        let block_size = self.config.block_size;
        let seed = self.active_seed();
        let results: Vec<Vec<f64>> = requests
            .iter()
            .map(|request| {
                if request.count == 0 {
                    return Vec::new();
                }
                let key = seeded_cache_key(design_key(&request.design), seed);
                let mut out = Vec::with_capacity(request.count);
                for (block, lo, hi) in block_ranges(request.start, request.count, block_size) {
                    let entry = self.cache.block(key, block, batch, || {
                        unreachable!("block was materialised by its task")
                    });
                    let guard = entry.lock().expect("block poisoned");
                    for i in lo..hi {
                        out.push(guard.outcomes[i].expect("outcome computed by its task"));
                    }
                }
                out
            })
            .collect();

        let served: u64 = requests.iter().map(|r| r.count as u64).sum();
        let ran = executed.load(Ordering::Relaxed);
        self.counter.add(ran);
        self.stats.record_cache_hits(served - ran);
        self.stats.record_mc_batch(
            served,
            tasks.len() as u64,
            start_time.elapsed().as_nanos() as u64,
        );
        // Bounded-memory engines sweep between batches, when no task holds a
        // block handle (eviction mid-batch would break assembly). The sweep
        // order is deterministic, so parallel == serial — counters included.
        if self.config.max_cached_blocks > 0 {
            let evicted = self.cache.enforce_limit(self.config.max_cached_blocks);
            if evicted > 0 {
                self.stats.record_evictions(evicted);
            }
        }
        results
    }

    fn nominal_batch(
        &self,
        model: &dyn SimulationModel,
        designs: &[Vec<f64>],
        workers: usize,
    ) -> Vec<Vec<f64>> {
        let start_time = Instant::now();
        let batch = self.batch_seq.fetch_add(1, Ordering::Relaxed);
        let keys: Vec<u64> = designs.iter().map(|d| design_key(d)).collect();
        let mut missing: Vec<(u64, usize)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (i, &key) in keys.iter().enumerate() {
            if self.cache.nominal(key).is_none() && seen.insert(key) {
                missing.push((key, i));
            }
        }
        missing.sort_by_key(|&(key, _)| key);

        pool::run_tasks(&missing, workers, |&(key, i)| {
            let margins = model.nominal(&designs[i]);
            self.cache.store_nominal(key, Arc::new(margins), batch);
        });

        let ran = missing.len() as u64;
        self.counter.add(ran);
        self.stats.record_cache_hits(designs.len() as u64 - ran);
        self.stats
            .record_nominal_batch(designs.len() as u64, start_time.elapsed().as_nanos() as u64);

        let results: Vec<Vec<f64>> = keys
            .iter()
            .map(|&key| {
                self.cache
                    .nominal(key)
                    .expect("nominal evaluated above")
                    .as_ref()
                    .clone()
            })
            .collect();
        // The same bound covers the (much smaller) nominal entries, so a
        // bounded long-lived engine really is bounded — not just in its
        // Monte-Carlo blocks. The trim order is deterministic, so the
        // parallel == serial guarantee holds here too.
        if self.config.max_cached_blocks > 0 {
            self.cache
                .enforce_nominal_limit(self.config.max_cached_blocks);
        }
        results
    }

    fn reset(&self) {
        self.stats.reset();
        self.counter.reset();
        self.cache.clear();
    }

    fn reset_counters(&self) {
        self.stats.reset();
        self.counter.reset();
    }

    /// Quiescent-time cache trim for external quota policies; evictions land
    /// in the same counter the internal bound sweep uses.
    fn enforce_cache_limit(&self, max_blocks: usize) -> u64 {
        let evicted = self.cache.enforce_limit(max_blocks);
        self.cache.enforce_nominal_limit(max_blocks);
        if evicted > 0 {
            self.stats.record_evictions(evicted);
        }
        evicted
    }

    /// Snapshot with `simulations_run` sourced from the shared counter (the
    /// single source of truth for executed simulations).
    fn snapshot(&self) -> EngineStatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.simulations_run = self.counter.total();
        snap
    }
}

/// In-order, thread-free evaluation engine (the reference implementation).
pub struct SerialEngine {
    core: EngineCore,
}

impl SerialEngine {
    /// Creates a serial engine.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            core: EngineCore::new(config),
        }
    }
}

impl EvalEngine for SerialEngine {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn config(&self) -> &EngineConfig {
        &self.core.config
    }

    fn mc_outcomes(&self, model: &dyn SimulationModel, requests: &[McRequest]) -> Vec<Vec<f64>> {
        self.core.mc_outcomes(model, requests, 1)
    }

    fn estimate(&self, outcomes: &[f64]) -> EstimatedYield {
        self.core.estimator.estimate(outcomes)
    }

    fn nominal_batch(&self, model: &dyn SimulationModel, designs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.core.nominal_batch(model, designs, 1)
    }

    fn stats(&self) -> EngineStatsSnapshot {
        self.core.snapshot()
    }

    fn timing(&self) -> EngineTiming {
        self.core.stats.timing()
    }

    fn simulations(&self) -> u64 {
        self.core.counter.total()
    }

    fn counter(&self) -> SimulationCounter {
        self.core.counter.clone()
    }

    fn reset(&self) {
        self.core.reset();
    }

    fn reset_counters(&self) {
        self.core.reset_counters();
    }

    fn reseed(&self, seed: u64) {
        self.core.active_seed.store(seed, Ordering::Relaxed);
    }

    fn active_seed(&self) -> u64 {
        self.core.active_seed()
    }

    fn cache_blocks(&self) -> usize {
        self.core.cache.blocks()
    }

    fn cache_bytes(&self) -> usize {
        self.core.cache.bytes()
    }

    fn enforce_cache_limit(&self, max_blocks: usize) -> u64 {
        self.core.enforce_cache_limit(max_blocks)
    }
}

/// Work-stealing multi-threaded evaluation engine.
///
/// Produces bit-identical results to [`SerialEngine`] for the same
/// [`EngineConfig::seed`]: all randomness lives in per-block streams that do
/// not depend on execution order, and the cache guarantees each sample is
/// simulated at most once in either mode.
pub struct ParallelEngine {
    core: EngineCore,
    workers: usize,
}

impl ParallelEngine {
    /// Creates a parallel engine; `config.workers == 0` selects the machine's
    /// available parallelism.
    pub fn new(config: EngineConfig) -> Self {
        let workers = if config.workers == 0 {
            pool::default_workers()
        } else {
            config.workers
        };
        Self {
            core: EngineCore::new(config),
            workers: workers.max(1),
        }
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl EvalEngine for ParallelEngine {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn config(&self) -> &EngineConfig {
        &self.core.config
    }

    fn mc_outcomes(&self, model: &dyn SimulationModel, requests: &[McRequest]) -> Vec<Vec<f64>> {
        self.core.mc_outcomes(model, requests, self.workers)
    }

    fn estimate(&self, outcomes: &[f64]) -> EstimatedYield {
        self.core.estimator.estimate(outcomes)
    }

    fn nominal_batch(&self, model: &dyn SimulationModel, designs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.core.nominal_batch(model, designs, self.workers)
    }

    fn stats(&self) -> EngineStatsSnapshot {
        self.core.snapshot()
    }

    fn timing(&self) -> EngineTiming {
        self.core.stats.timing()
    }

    fn simulations(&self) -> u64 {
        self.core.counter.total()
    }

    fn counter(&self) -> SimulationCounter {
        self.core.counter.clone()
    }

    fn reset(&self) {
        self.core.reset();
    }

    fn reset_counters(&self) {
        self.core.reset_counters();
    }

    fn reseed(&self, seed: u64) {
        self.core.active_seed.store(seed, Ordering::Relaxed);
    }

    fn active_seed(&self) -> u64 {
        self.core.active_seed()
    }

    fn cache_blocks(&self) -> usize {
        self.core.cache.blocks()
    }

    fn cache_bytes(&self) -> usize {
        self.core.cache.bytes()
    }

    fn enforce_cache_limit(&self, max_blocks: usize) -> u64 {
        self.core.enforce_cache_limit(max_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: passes when `u[0] < x[0]`; nominal margins echo the design.
    struct Threshold;

    impl SimulationModel for Threshold {
        fn unit_dimension(&self) -> usize {
            3
        }

        fn simulate_point(&self, x: &[f64], u: &[f64]) -> f64 {
            if u[0] < x[0] {
                1.0
            } else {
                0.0
            }
        }

        fn nominal(&self, x: &[f64]) -> Vec<f64> {
            x.to_vec()
        }
    }

    fn requests() -> Vec<McRequest> {
        vec![
            McRequest::new(vec![0.7, 1.0, 2.0], 0, 73),
            McRequest::new(vec![0.3, 1.0, 2.0], 10, 125),
            McRequest::new(vec![0.7, 1.0, 2.0], 73, 40), // continuation of the first
            McRequest::new(vec![0.5, 0.5, 0.5], 0, 0),   // empty
        ]
    }

    #[test]
    fn serial_and_parallel_outcomes_are_bit_identical() {
        let serial = SerialEngine::new(EngineConfig::default().with_seed(11));
        let parallel = ParallelEngine::new(EngineConfig::default().with_seed(11).with_workers(4));
        let a = serial.mc_outcomes(&Threshold, &requests());
        let b = parallel.mc_outcomes(&Threshold, &requests());
        assert_eq!(a, b);
        assert_eq!(serial.simulations(), parallel.simulations());
        // Nominal margins too.
        let designs = vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]];
        assert_eq!(
            serial.nominal_batch(&Threshold, &designs),
            parallel.nominal_batch(&Threshold, &designs)
        );
    }

    #[test]
    fn repeated_requests_are_served_from_cache() {
        let engine = SerialEngine::new(EngineConfig::default());
        let reqs = requests();
        let first = engine.mc_outcomes(&Threshold, &reqs);
        let after_first = engine.simulations();
        let second = engine.mc_outcomes(&Threshold, &reqs);
        assert_eq!(first, second);
        assert_eq!(engine.simulations(), after_first, "all cache hits");
        assert!(engine.stats().cache_hits > 0);
    }

    #[test]
    fn sample_ranges_compose_into_one_stream() {
        // Reading [0, 90) in one request equals reading [0, 40) + [40, 90).
        let whole = SerialEngine::new(EngineConfig::default().with_seed(5));
        let split = SerialEngine::new(EngineConfig::default().with_seed(5));
        let x = vec![0.6, 0.1, 0.9];
        let full = whole.mc_single(&Threshold, &x, 0, 90);
        let head = split.mc_single(&Threshold, &x, 0, 40);
        let tail = split.mc_single(&Threshold, &x, 40, 50);
        let joined: Vec<f64> = head.into_iter().chain(tail).collect();
        assert_eq!(full, joined);
        // The split engine never re-simulated the overlap.
        assert_eq!(whole.simulations(), split.simulations());
    }

    #[test]
    fn disjoint_ranges_in_one_block_do_not_simulate_the_gap() {
        // Two requests for the same design with a gap between their ranges:
        // the gap samples must not be simulated, and the cache-hit
        // accounting must not underflow (served >= ran).
        let engine = SerialEngine::new(EngineConfig::default());
        let x = vec![0.5, 0.5, 0.5];
        let reqs = vec![
            McRequest::new(x.clone(), 5, 5),
            McRequest::new(x.clone(), 30, 5),
        ];
        let out = engine.mc_outcomes(&Threshold, &reqs);
        assert_eq!(out[0].len(), 5);
        assert_eq!(out[1].len(), 5);
        assert_eq!(engine.simulations(), 10, "gap [10, 30) must stay lazy");
        assert_eq!(engine.stats().cache_hits, 0);
        // Duplicate overlapping requests in one batch count as hits, never
        // as extra simulations.
        let dup = vec![McRequest::new(x.clone(), 5, 5), McRequest::new(x, 5, 5)];
        let out2 = engine.mc_outcomes(&Threshold, &dup);
        assert_eq!(out2[0], out2[1]);
        assert_eq!(engine.simulations(), 10);
        assert_eq!(engine.stats().cache_hits, 10);
    }

    #[test]
    fn simulation_counts_are_exact_for_fresh_requests() {
        let engine = SerialEngine::new(EngineConfig::default());
        let x = vec![0.5, 0.5, 0.5];
        let out = engine.mc_single(&Threshold, &x, 0, 37);
        assert_eq!(out.len(), 37);
        assert_eq!(engine.simulations(), 37, "partial blocks are lazy");
        let _ = engine.nominal_single(&Threshold, &x);
        assert_eq!(engine.simulations(), 38);
        let _ = engine.nominal_single(&Threshold, &x);
        assert_eq!(engine.simulations(), 38, "nominal evals are cached");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = SerialEngine::new(EngineConfig::default().with_seed(1));
        let b = SerialEngine::new(EngineConfig::default().with_seed(2));
        let x = vec![0.5, 0.5, 0.5];
        assert_ne!(
            a.mc_single(&Threshold, &x, 0, 200),
            b.mc_single(&Threshold, &x, 0, 200)
        );
    }

    #[test]
    fn estimates_track_the_true_probability() {
        let engine = ParallelEngine::new(EngineConfig::default().with_workers(3));
        let x = vec![0.42, 0.0, 0.0];
        let outcomes = engine.mc_single(&Threshold, &x, 0, 4_000);
        let mean = outcomes.iter().sum::<f64>() / outcomes.len() as f64;
        assert!((mean - 0.42).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn reset_clears_counts_and_cache() {
        let engine = SerialEngine::new(EngineConfig::default());
        let x = vec![0.5, 0.5, 0.5];
        let _ = engine.mc_single(&Threshold, &x, 0, 20);
        assert!(engine.simulations() > 0);
        engine.reset();
        assert_eq!(engine.simulations(), 0);
        assert_eq!(engine.counter().total(), 0);
        // After a reset the same request costs simulations again.
        let _ = engine.mc_single(&Threshold, &x, 0, 20);
        assert_eq!(engine.simulations(), 20);
    }

    #[test]
    fn counter_handle_tracks_engine() {
        let engine = SerialEngine::new(EngineConfig::default());
        let counter = engine.counter();
        let _ = engine.mc_single(&Threshold, &[0.5, 0.5, 0.5], 0, 12);
        assert_eq!(counter.total(), 12);
    }

    /// Model that leaks the first coordinate of the unit point as its
    /// outcome, so tests can observe the generated stream itself.
    struct Echo;

    impl SimulationModel for Echo {
        fn unit_dimension(&self) -> usize {
            2
        }

        fn simulate_point(&self, _x: &[f64], u: &[f64]) -> f64 {
            u[0]
        }

        fn nominal(&self, x: &[f64]) -> Vec<f64> {
            x.to_vec()
        }
    }

    #[test]
    fn antithetic_streams_are_mirrored_within_blocks() {
        let engine =
            SerialEngine::new(EngineConfig::default().with_estimator(EstimatorKind::Antithetic));
        let x = vec![0.5, 0.5, 0.5];
        let out = engine.mc_single(&Echo, &x, 0, 100);
        for (i, pair) in out.chunks_exact(2).enumerate() {
            assert!(
                (pair[0] + pair[1] - 1.0).abs() < 1e-12,
                "pair {i} not mirrored: {pair:?}"
            );
        }
    }

    #[test]
    fn antithetic_pairs_share_one_cache_block_even_under_partial_reads() {
        // Reading the two halves of a pair through separate requests must
        // materialise exactly one block (same (design, block) key, hence the
        // same cache shard), and re-reading the mirror half must be free.
        let engine =
            SerialEngine::new(EngineConfig::default().with_estimator(EstimatorKind::Antithetic));
        let x = vec![0.5, 0.5, 0.5];
        // Sample 48 and its mirror 49 sit at the end of block 0 (size 50).
        let even = engine.mc_single(&Echo, &x, 48, 1);
        let odd = engine.mc_single(&Echo, &x, 49, 1);
        assert!(
            (even[0] + odd[0] - 1.0).abs() < 1e-12,
            "pair split across blocks"
        );
        assert_eq!(engine.simulations(), 2);

        // Serial and parallel engines materialise identical pairs.
        let parallel = ParallelEngine::new(
            EngineConfig::default()
                .with_estimator(EstimatorKind::Antithetic)
                .with_workers(4),
        );
        assert_eq!(parallel.mc_single(&Echo, &x, 48, 1), even);
        assert_eq!(parallel.mc_single(&Echo, &x, 49, 1), odd);
    }

    #[test]
    fn every_estimator_is_deterministic_and_parallel_equals_serial() {
        for kind in EstimatorKind::ALL {
            let serial =
                SerialEngine::new(EngineConfig::default().with_seed(7).with_estimator(kind));
            let parallel = ParallelEngine::new(
                EngineConfig::default()
                    .with_seed(7)
                    .with_estimator(kind)
                    .with_workers(4),
            );
            let a = serial.mc_outcomes(&Threshold, &requests());
            let b = parallel.mc_outcomes(&Threshold, &requests());
            assert_eq!(a, b, "{kind:?} diverged");
            assert_eq!(serial.simulations(), parallel.simulations(), "{kind:?}");
        }
    }

    /// One-dimensional threshold with an analytic importance shift: passes
    /// when `z > Φ⁻¹(0.1)`, i.e. with probability 0.9, and shifts the mean
    /// one sigma toward the failure region.
    struct Shifted;

    impl SimulationModel for Shifted {
        fn unit_dimension(&self) -> usize {
            1
        }

        fn simulate_point(&self, _x: &[f64], u: &[f64]) -> f64 {
            if u[0] > 0.1 {
                1.0
            } else {
                0.0
            }
        }

        fn nominal(&self, x: &[f64]) -> Vec<f64> {
            x.to_vec()
        }

        fn importance_shift(&self, _x: &[f64]) -> Option<Vec<f64>> {
            Some(vec![-1.0])
        }
    }

    #[test]
    fn importance_sampled_outcomes_are_weighted_but_unbiased() {
        let engine = SerialEngine::new(
            EngineConfig::default().with_estimator(EstimatorKind::ImportanceSampling),
        );
        let x = vec![0.0];
        let out = engine.mc_single(&Shifted, &x, 0, 2_000);
        // The shift pushes samples into the failure region, so failures are
        // observed often but carry small weights: outcomes are fractional.
        assert!(
            out.iter().any(|o| *o != 0.0 && *o != 1.0),
            "expected weighted contributions"
        );
        let mean = out.iter().sum::<f64>() / out.len() as f64;
        assert!((mean - 0.9).abs() < 0.03, "IS mean {mean}");
        // Without a shift hint the same estimator stores raw indicators.
        let plain = SerialEngine::new(
            EngineConfig::default().with_estimator(EstimatorKind::ImportanceSampling),
        );
        let raw = plain.mc_single(&Threshold, &[0.7, 0.0, 0.0], 0, 100);
        assert!(raw.iter().all(|o| *o == 0.0 || *o == 1.0));
    }

    #[test]
    fn default_estimator_streams_are_bit_identical_to_the_plain_plan() {
        // The estimator field must not disturb the historic default streams:
        // an explicit MonteCarlo estimator and the plain default produce the
        // same outcomes for the same seed.
        let default_engine = SerialEngine::new(EngineConfig::default().with_seed(3));
        let explicit = SerialEngine::new(
            EngineConfig::default()
                .with_seed(3)
                .with_estimator(EstimatorKind::MonteCarlo),
        );
        let x = vec![0.6, 0.2, 0.9];
        assert_eq!(
            default_engine.mc_single(&Echo, &x, 0, 150),
            explicit.mc_single(&Echo, &x, 0, 150)
        );
    }

    #[test]
    fn reseeded_engine_matches_fresh_engine_bit_for_bit() {
        let fresh_a = SerialEngine::new(EngineConfig::default().with_seed(21));
        let fresh_b = SerialEngine::new(EngineConfig::default().with_seed(22));
        let reused = SerialEngine::new(EngineConfig::default().with_seed(21));
        let x = vec![0.6, 0.3, 0.8];
        assert_eq!(
            reused.mc_single(&Echo, &x, 0, 120),
            fresh_a.mc_single(&Echo, &x, 0, 120)
        );
        // Switch seeds without clearing the cache: values must match a fresh
        // engine of the new seed (seed-keyed blocks never alias).
        reused.reseed(22);
        assert_eq!(reused.active_seed(), 22);
        assert_eq!(
            reused.mc_single(&Echo, &x, 0, 120),
            fresh_b.mc_single(&Echo, &x, 0, 120)
        );
        // And back: the first seed's blocks are still cached, so re-serving
        // them is free while the values stay those of seed 21.
        reused.reseed(21);
        let before = reused.simulations();
        assert_eq!(
            reused.mc_single(&Echo, &x, 0, 120),
            fresh_a.mc_single(&Echo, &x, 0, 120)
        );
        assert_eq!(reused.simulations(), before, "seed-21 blocks were cached");
    }

    #[test]
    fn reset_counters_keeps_the_cache_warm() {
        let engine = SerialEngine::new(EngineConfig::default());
        let x = vec![0.5, 0.5, 0.5];
        let first = engine.mc_single(&Threshold, &x, 0, 30);
        assert_eq!(engine.simulations(), 30);
        engine.reset_counters();
        assert_eq!(engine.simulations(), 0);
        let second = engine.mc_single(&Threshold, &x, 0, 30);
        assert_eq!(first, second);
        assert_eq!(engine.simulations(), 0, "served from the warm cache");
        assert!(engine.cache_blocks() > 0);
        assert!(engine.cache_bytes() > 0);
    }

    #[test]
    fn external_cache_trim_evicts_and_records() {
        let engine = SerialEngine::new(EngineConfig::default().with_seed(5));
        let designs: Vec<Vec<f64>> = (0..5).map(|i| vec![0.1 * i as f64, 0.2, 0.3]).collect();
        let mut reference = Vec::new();
        for x in &designs {
            reference.push(engine.mc_single(&Echo, x, 0, 60));
        }
        let before_blocks = engine.cache_blocks();
        assert!(before_blocks > 2);
        // External quota trim (the service's per-tenant enforcement path):
        // shrinks below the configured bound, records the evictions.
        let evicted = engine.enforce_cache_limit(2);
        assert_eq!(evicted as usize, before_blocks - engine.cache_blocks());
        assert!(engine.cache_blocks() <= 2);
        assert_eq!(engine.stats().evicted_blocks, evicted);
        // Evicted blocks re-create bit-identically on the next request.
        for (i, x) in designs.iter().enumerate() {
            assert_eq!(engine.mc_single(&Echo, x, 0, 60), reference[i]);
        }
    }

    #[test]
    fn eviction_preserves_outcomes_and_determinism() {
        // A bound tight enough to force evictions across these designs.
        let bounded_config = EngineConfig::default()
            .with_seed(9)
            .with_max_cached_blocks(2);
        let unbounded = SerialEngine::new(EngineConfig::default().with_seed(9));
        let bounded = SerialEngine::new(bounded_config);
        let bounded_twin = SerialEngine::new(bounded_config);
        let parallel = ParallelEngine::new(EngineConfig {
            workers: 4,
            ..bounded_config
        });

        let designs: Vec<Vec<f64>> = (0..6).map(|i| vec![0.1 * i as f64, 0.2, 0.3]).collect();
        let mut reference = Vec::new();
        for x in &designs {
            reference.push(unbounded.mc_single(&Echo, x, 0, 60));
        }
        for (i, x) in designs.iter().enumerate() {
            assert_eq!(bounded.mc_single(&Echo, x, 0, 60), reference[i]);
            assert_eq!(bounded_twin.mc_single(&Echo, x, 0, 60), reference[i]);
            assert_eq!(parallel.mc_single(&Echo, x, 0, 60), reference[i]);
        }
        // Revisit every design: evicted blocks re-create bit-identically.
        for (i, x) in designs.iter().enumerate() {
            assert_eq!(bounded.mc_single(&Echo, x, 0, 60), reference[i]);
            assert_eq!(bounded_twin.mc_single(&Echo, x, 0, 60), reference[i]);
            assert_eq!(parallel.mc_single(&Echo, x, 0, 60), reference[i]);
        }
        assert!(bounded.cache_blocks() <= 2, "bound is enforced");
        assert!(bounded.stats().evicted_blocks > 0, "evictions happened");
        // Determinism: an identical twin (and the parallel engine) executed
        // the exact same number of simulations, evictions included.
        assert_eq!(bounded.simulations(), bounded_twin.simulations());
        assert_eq!(bounded.simulations(), parallel.simulations());
        assert_eq!(
            parallel.stats().evicted_blocks,
            bounded_twin.stats().evicted_blocks
        );
        // The unbounded engine never evicts and paid fewer re-simulations.
        assert_eq!(unbounded.stats().evicted_blocks, 0);
        assert!(unbounded.simulations() < bounded.simulations());
    }

    #[test]
    #[should_panic(expected = "even block size")]
    fn antithetic_engine_rejects_odd_block_sizes() {
        let config = EngineConfig {
            block_size: 49,
            estimator: EstimatorKind::Antithetic,
            ..EngineConfig::default()
        };
        let _ = SerialEngine::new(config);
    }
}
