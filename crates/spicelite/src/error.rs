//! Error types shared by the simulation substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the `spicelite` simulation substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// A linear system could not be solved because the matrix is singular.
    SingularMatrix {
        /// Index of the pivot where factorisation broke down.
        pivot: usize,
    },
    /// A matrix or vector did not have the expected dimension.
    DimensionMismatch {
        /// The expected dimension.
        expected: usize,
        /// The dimension actually supplied.
        got: usize,
    },
    /// A Cholesky factorisation was requested for a matrix that is not
    /// symmetric positive definite.
    NotPositiveDefinite {
        /// The row at which the factorisation failed.
        row: usize,
    },
    /// The Newton–Raphson DC solver did not converge.
    DcNoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// A netlist referenced a node index that does not exist.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// A circuit element was constructed with a non-physical value
    /// (e.g. a negative resistance where it is not allowed).
    InvalidElement {
        /// Human-readable reason.
        reason: String,
    },
    /// The AC analysis could not extract the requested figure of merit
    /// (e.g. no unity-gain crossing within the swept frequency range).
    AcExtraction {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::SingularMatrix { pivot } => {
                write!(f, "singular matrix at pivot {pivot}")
            }
            SpiceError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            SpiceError::NotPositiveDefinite { row } => {
                write!(f, "matrix is not positive definite at row {row}")
            }
            SpiceError::DcNoConvergence { iterations, residual } => write!(
                f,
                "dc operating point did not converge after {iterations} iterations (residual {residual:e})"
            ),
            SpiceError::UnknownNode { node } => write!(f, "unknown node index {node}"),
            SpiceError::InvalidElement { reason } => write!(f, "invalid element: {reason}"),
            SpiceError::AcExtraction { reason } => write!(f, "ac extraction failed: {reason}"),
        }
    }
}

impl Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(SpiceError, &str)> = vec![
            (SpiceError::SingularMatrix { pivot: 3 }, "pivot 3"),
            (
                SpiceError::DimensionMismatch {
                    expected: 2,
                    got: 5,
                },
                "expected 2",
            ),
            (SpiceError::NotPositiveDefinite { row: 1 }, "row 1"),
            (
                SpiceError::DcNoConvergence {
                    iterations: 50,
                    residual: 1e-3,
                },
                "50 iterations",
            ),
            (SpiceError::UnknownNode { node: 7 }, "node index 7"),
            (
                SpiceError::InvalidElement {
                    reason: "negative capacitance".into(),
                },
                "negative capacitance",
            ),
            (
                SpiceError::AcExtraction {
                    reason: "no unity-gain crossing".into(),
                },
                "unity-gain",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should contain {needle}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<SpiceError>();
    }
}
