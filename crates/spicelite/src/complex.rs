//! Minimal complex arithmetic used by the AC (small-signal, frequency-domain)
//! analysis engine.
//!
//! The crate deliberately avoids external numerics dependencies, so a small
//! `Complex` type with the handful of operations needed by an MNA solver
//! (add, sub, mul, div, magnitude, argument) is provided here.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use spicelite::complex::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// let c = a * b;
/// assert!((c.re - 5.0).abs() < 1e-12);
/// assert!((c.im - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The complex zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The complex one.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    pub const fn from_imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Magnitude (modulus).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, cheaper than [`Complex::abs`] when only ordering matters.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-pi, pi]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Argument (phase) in degrees.
    pub fn arg_deg(self) -> f64 {
        self.arg().to_degrees()
    }

    /// Multiplicative inverse.
    ///
    /// Returns `None` when the number is (numerically) zero.
    pub fn inv(self) -> Option<Self> {
        let d = self.norm_sqr();
        if d == 0.0 {
            None
        } else {
            Some(Self::new(self.re / d, -self.im / d))
        }
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Returns `true` if either component is NaN.
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        // Smith's algorithm to avoid overflow for large components.
        if rhs.re.abs() >= rhs.im.abs() {
            if rhs.re == 0.0 && rhs.im == 0.0 {
                return Complex::new(f64::NAN, f64::NAN);
            }
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::J, Complex::new(0.0, 1.0));
        assert_eq!(Complex::from_real(2.5), Complex::new(2.5, 0.0));
        assert_eq!(Complex::from_imag(-1.5), Complex::new(0.0, -1.5));
        assert_eq!(Complex::from(3.0), Complex::new(3.0, 0.0));
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 4.0);
        let s = a + b;
        assert!(close(s.re, 0.5) && close(s.im, 6.0));
        let d = a - b;
        assert!(close(d.re, 1.5) && close(d.im, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, s);
        c -= b;
        assert!(close(c.re, a.re) && close(c.im, a.im));
    }

    #[test]
    fn multiplication() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a * b;
        assert!(close(p.re, 5.0) && close(p.im, 5.0));
        let scaled = a * 2.0;
        assert!(close(scaled.re, 2.0) && close(scaled.im, 4.0));
    }

    #[test]
    fn division_round_trips() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let q = (a * b) / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
        let q2 = a / 2.0;
        assert!(close(q2.re, 0.5) && close(q2.im, 1.0));
    }

    #[test]
    fn division_by_zero_is_nan() {
        let a = Complex::new(1.0, 1.0);
        assert!((a / Complex::ZERO).is_nan());
    }

    #[test]
    fn magnitude_and_phase() {
        let a = Complex::new(3.0, 4.0);
        assert!(close(a.abs(), 5.0));
        assert!(close(a.norm_sqr(), 25.0));
        let j = Complex::J;
        assert!(close(j.arg_deg(), 90.0));
        assert!(close(Complex::new(-1.0, 0.0).arg_deg(), 180.0));
    }

    #[test]
    fn conjugate_and_inverse() {
        let a = Complex::new(2.0, -3.0);
        assert_eq!(a.conj(), Complex::new(2.0, 3.0));
        let inv = a.inv().expect("nonzero");
        let one = a * inv;
        assert!(close(one.re, 1.0) && close(one.im, 0.0));
        assert!(Complex::ZERO.inv().is_none());
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1+2j");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1-2j");
    }

    #[test]
    fn finite_checks() {
        assert!(Complex::new(1.0, 1.0).is_finite());
        assert!(!Complex::new(f64::INFINITY, 0.0).is_finite());
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
    }
}
