//! `spicelite` — a lightweight analog circuit simulation substrate.
//!
//! The MOHECO reproduction needs a circuit performance evaluator playing the
//! role Synopsys HSPICE plays in the paper: given transistor sizes and a
//! sample of process-variation parameters, report amplifier performances
//! (DC gain, GBW, phase margin, output swing, power, offset, area). This
//! crate provides the simulation building blocks:
//!
//! * [`complex`] / [`linalg`] — the numerical kernels (complex arithmetic,
//!   dense LU with partial pivoting, Cholesky).
//! * [`mosfet`] — a square-law MOSFET compact model whose parameters
//!   (`TOX`, `VTH0`, `LD`, `WD`, mobility, junction caps) are exactly the
//!   quantities the paper's statistical process models perturb.
//! * [`netlist`] — nonlinear ([`netlist::Circuit`]) and small-signal
//!   ([`netlist::LinearCircuit`]) netlists with MNA stamping.
//! * [`dc`] — Newton–Raphson DC operating-point analysis.
//! * [`ac`] — complex MNA frequency sweeps and figure-of-merit extraction
//!   (DC gain, unity-gain frequency, phase margin).
//!
//! # Example
//!
//! ```
//! use spicelite::ac::{log_space, sweep};
//! use spicelite::netlist::LinearCircuit;
//!
//! // A single-pole transconductance amplifier: A0 = gm * R, GBW = gm / (2*pi*C).
//! let mut ckt = LinearCircuit::new();
//! let vin = ckt.node();
//! let vout = ckt.node();
//! ckt.add_vsource(vin, 0, 1.0);
//! ckt.add_vccs(vout, 0, vin, 0, 1e-3);
//! ckt.add_resistor(vout, 0, 1e6);
//! ckt.add_capacitance(vout, 0, 1e-12);
//!
//! let resp = sweep(&ckt, vout, &log_space(1.0, 1e12, 200))?;
//! assert!(resp.dc_gain_db() > 59.0);
//! let gbw = resp.unity_gain_freq()?;
//! assert!(gbw > 1e8);
//! # Ok::<(), spicelite::error::SpiceError>(())
//! ```

#![warn(missing_docs)]

pub mod ac;
pub mod batch;
pub mod complex;
pub mod dc;
pub mod error;
pub mod linalg;
pub mod mosfet;
pub mod netlist;

pub use ac::{log_space, sweep, sweep_differential, AcFoms, FrequencyResponse};
pub use batch::FactorizedCircuit;
pub use complex::Complex;
pub use dc::{solve_dc, solve_dc_with, DcOptions, DcSolution};
pub use error::SpiceError;
pub use linalg::{CMatrix, Matrix};
pub use mosfet::{
    model_035um, model_90nm, MosGeometry, MosModel, MosOperatingPoint, MosType, Mosfet, Region,
};
pub use netlist::{Circuit, LinearCircuit, NodeId};
