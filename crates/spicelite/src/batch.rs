//! Batched AC analysis: factorize a circuit's *structure* once, then sweep
//! many samples of the same topology with lane-vectorized inner loops.
//!
//! Within one Monte-Carlo block only process-variation parameters change, so
//! every sample of a design produces a [`LinearCircuit`] with the identical
//! element pattern (same nodes, same element order) and different element
//! *values*. [`FactorizedCircuit`] exploits that: it compiles the MNA stamping
//! of [`crate::ac::solve_at`] into a flat index program once (the structural
//! analysis), then per sample re-reads only the element values and solves the
//! whole frequency sweep in chunks of [`LANES`] frequencies laid out
//! structure-of-arrays, so the complex LU elimination runs over contiguous
//! per-frequency lanes and auto-vectorizes.
//!
//! # Bit-identity contract
//!
//! `FactorizedCircuit::sweep` is **bit-for-bit identical** to
//! [`crate::ac::sweep`], including error cases. This is not a tolerance claim:
//! the batched path performs the exact same IEEE-754 operation sequence per
//! frequency lane as the scalar path, relying only on value-preserving
//! transformations:
//!
//! * The scalar assembly interleaves real stamps (conductances, VCCS, voltage
//!   sources) with imaginary stamps (capacitances), but a `Complex` `+=` of a
//!   purely real (or purely imaginary) value adds `+0.0` to the other
//!   component. Accumulated MNA entries never hold `-0.0` (they start at
//!   `+0.0` and only accumulate finite stamps), and `x + 0.0 == x` bitwise for
//!   every `x != -0.0`, so splitting the assembly into a frequency-independent
//!   real plane and a per-frequency imaginary plane is exact.
//! * `x -= t` is IEEE-defined as `x + (-t)`, and negation/multiplication by
//!   `±1.0` are exact, so signed stamp programs reproduce `+=`/`-=` chains.
//! * The per-lane LU replicates [`crate::linalg::clu_solve_in_place`]
//!   literally: `norm_sqr` pivoting, the `f == Complex::ZERO` elimination
//!   skip (replicated with a per-lane mask and select, which also protects
//!   skipped lanes from spurious updates), and Smith's complex division with
//!   *both* branches evaluated per lane and the result selected on
//!   `|re| >= |im|` (the `0/0` early-NaN return falls out of the not-taken
//!   branch producing NaN through the same operations).
//! * A lane whose pivot underflows is marked singular with the failing
//!   elimination step and keeps computing garbage; lanes never interact, so
//!   healthy lanes are unaffected and the first failing frequency reports the
//!   identical [`SpiceError::SingularMatrix`] as the scalar sweep.
//!
//! The inner kernel is compiled three times — generic, AVX2 and AVX-512F via
//! `#[target_feature]` — and dispatched once per `FactorizedCircuit` from
//! runtime CPU detection. All versions run the same per-lane operation
//! sequence; Rust never contracts `a*b + c` into FMA or reassociates floats,
//! so the wider builds change throughput, not values.

use crate::ac::FrequencyResponse;
use crate::complex::Complex;
use crate::error::SpiceError;
use crate::netlist::{LinearCircuit, NodeId};

/// Number of frequency points solved simultaneously per lane chunk.
pub const LANES: usize = 8;

/// Sentinel for "lane not singular" in the per-lane failure tracker.
const NOT_SINGULAR: usize = usize::MAX;

/// Value source of one real-plane stamp.
#[derive(Debug, Clone, Copy)]
enum ReSrc {
    /// `conductances[i].2`.
    Conductance(usize),
    /// `vccs[i].gm`.
    Vccs(usize),
    /// The constant `1.0` (voltage-source incidence entries).
    Unit,
}

/// One accumulation into the frequency-independent real plane:
/// `re_base[flat] += sign * value(src)`.
#[derive(Debug, Clone, Copy)]
struct ReOp {
    flat: usize,
    sign: f64,
    src: ReSrc,
}

/// One accumulation into the per-frequency imaginary plane:
/// `a_im[flat] += omega * (sign * capacitances[src].2)`.
#[derive(Debug, Clone, Copy)]
struct CapOp {
    flat: usize,
    sign: f64,
    src: usize,
}

/// Structural fingerprint of the template circuit; every loaded circuit must
/// match it exactly (values may differ, topology may not).
#[derive(Debug, Clone, PartialEq, Eq)]
struct StructSig {
    num_nodes: usize,
    conductances: Vec<(NodeId, NodeId)>,
    capacitances: Vec<(NodeId, NodeId)>,
    vccs: Vec<(NodeId, NodeId, NodeId, NodeId)>,
    isources: Vec<(NodeId, NodeId)>,
    vsources: Vec<(NodeId, NodeId)>,
}

impl StructSig {
    fn of(circuit: &LinearCircuit) -> Self {
        Self {
            num_nodes: circuit.num_nodes(),
            conductances: circuit
                .conductances
                .iter()
                .map(|&(p, q, _)| (p, q))
                .collect(),
            capacitances: circuit
                .capacitances
                .iter()
                .map(|&(p, q, _)| (p, q))
                .collect(),
            vccs: circuit
                .vccs
                .iter()
                .map(|g| (g.out_p, g.out_n, g.in_p, g.in_n))
                .collect(),
            isources: circuit.isources.iter().map(|s| (s.from, s.to)).collect(),
            vsources: circuit.vsources.iter().map(|v| (v.p, v.n)).collect(),
        }
    }
}

/// Which compiled variant of the lane kernel to run.
#[derive(Debug, Clone, Copy)]
enum Kernel {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Generic,
}

fn detect_kernel() -> Kernel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Kernel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernel::Avx2;
        }
    }
    Kernel::Generic
}

/// A structurally factorized linear circuit: assembly plan, loaded sample
/// values and lane-solver scratch, reusable across all samples of a design.
///
/// Build it once from a template circuit, then call
/// [`FactorizedCircuit::sweep`] for every sample sharing that structure. No
/// allocation happens per sweep.
#[derive(Debug, Clone)]
pub struct FactorizedCircuit {
    num_nodes: usize,
    dim: usize,
    sig: StructSig,
    kernel: Kernel,
    re_prog: Vec<ReOp>,
    cap_prog: Vec<CapOp>,
    /// `(rhs index, sign, isource index)` accumulations.
    rhs_add: Vec<(usize, f64, usize)>,
    /// `(rhs row, vsource index)` assignments (after the accumulations).
    rhs_set: Vec<(usize, usize)>,
    // Per-sample loaded values.
    re_base: Vec<f64>,
    cap_vals: Vec<(usize, f64)>,
    rhs_re: Vec<f64>,
    // Lane-broadcast copies of `re_base` / `rhs_re`, built once per sample so
    // each frequency chunk starts from a single memcpy instead of per-element
    // fills.
    re_bcast: Vec<f64>,
    rhs_bcast: Vec<f64>,
    // Lane scratch: `dim*dim*LANES` matrix planes, `dim*LANES` vectors and a
    // pivot-row copy that decouples source and destination rows during
    // elimination.
    a_re: Vec<f64>,
    a_im: Vec<f64>,
    x_re: Vec<f64>,
    x_im: Vec<f64>,
    prow_re: Vec<f64>,
    prow_im: Vec<f64>,
}

impl FactorizedCircuit {
    /// Performs the structural analysis of `circuit`: compiles the MNA stamp
    /// pattern into flat index programs and sizes the lane scratch. The
    /// template's element values are irrelevant; only its topology is kept.
    pub fn new(circuit: &LinearCircuit) -> Self {
        let n = circuit.num_nodes();
        let m = circuit.num_vsources();
        let dim = (n - 1) + m;
        let idx = |node: NodeId| -> Option<usize> {
            if node == 0 {
                None
            } else {
                Some(node - 1)
            }
        };
        let flat = |i: usize, j: usize| i * dim + j;

        let mut re_prog = Vec::new();
        let mut cap_prog = Vec::new();
        // Admittance stamp pattern, in the exact emission order of
        // `ac::solve_at`'s `stamp_adm`: (i,i) +, (j,j) +, (i,j) -, (j,i) -.
        for (t, &(p, q, _)) in circuit.conductances.iter().enumerate() {
            let src = ReSrc::Conductance(t);
            if let Some(i) = idx(p) {
                re_prog.push(ReOp {
                    flat: flat(i, i),
                    sign: 1.0,
                    src,
                });
            }
            if let Some(j) = idx(q) {
                re_prog.push(ReOp {
                    flat: flat(j, j),
                    sign: 1.0,
                    src,
                });
            }
            if let (Some(i), Some(j)) = (idx(p), idx(q)) {
                re_prog.push(ReOp {
                    flat: flat(i, j),
                    sign: -1.0,
                    src,
                });
                re_prog.push(ReOp {
                    flat: flat(j, i),
                    sign: -1.0,
                    src,
                });
            }
        }
        for (t, &(p, q, _)) in circuit.capacitances.iter().enumerate() {
            if let Some(i) = idx(p) {
                cap_prog.push(CapOp {
                    flat: flat(i, i),
                    sign: 1.0,
                    src: t,
                });
            }
            if let Some(j) = idx(q) {
                cap_prog.push(CapOp {
                    flat: flat(j, j),
                    sign: 1.0,
                    src: t,
                });
            }
            if let (Some(i), Some(j)) = (idx(p), idx(q)) {
                cap_prog.push(CapOp {
                    flat: flat(i, j),
                    sign: -1.0,
                    src: t,
                });
                cap_prog.push(CapOp {
                    flat: flat(j, i),
                    sign: -1.0,
                    src: t,
                });
            }
        }
        for (t, g) in circuit.vccs.iter().enumerate() {
            for (out_node, sign_out) in [(g.out_p, 1.0), (g.out_n, -1.0)] {
                if let Some(i) = idx(out_node) {
                    if let Some(j) = idx(g.in_p) {
                        re_prog.push(ReOp {
                            flat: flat(i, j),
                            sign: sign_out,
                            src: ReSrc::Vccs(t),
                        });
                    }
                    if let Some(j) = idx(g.in_n) {
                        re_prog.push(ReOp {
                            flat: flat(i, j),
                            sign: -sign_out,
                            src: ReSrc::Vccs(t),
                        });
                    }
                }
            }
        }
        let mut rhs_add = Vec::new();
        for (t, s) in circuit.isources.iter().enumerate() {
            if let Some(i) = idx(s.from) {
                rhs_add.push((i, -1.0, t));
            }
            if let Some(i) = idx(s.to) {
                rhs_add.push((i, 1.0, t));
            }
        }
        let mut rhs_set = Vec::new();
        for (k, vs) in circuit.vsources.iter().enumerate() {
            let row = (n - 1) + k;
            if let Some(i) = idx(vs.p) {
                re_prog.push(ReOp {
                    flat: flat(i, row),
                    sign: 1.0,
                    src: ReSrc::Unit,
                });
                re_prog.push(ReOp {
                    flat: flat(row, i),
                    sign: 1.0,
                    src: ReSrc::Unit,
                });
            }
            if let Some(i) = idx(vs.n) {
                re_prog.push(ReOp {
                    flat: flat(i, row),
                    sign: -1.0,
                    src: ReSrc::Unit,
                });
                re_prog.push(ReOp {
                    flat: flat(row, i),
                    sign: -1.0,
                    src: ReSrc::Unit,
                });
            }
            rhs_set.push((row, k));
        }

        let n_caps = cap_prog.len();
        Self {
            num_nodes: n,
            dim,
            sig: StructSig::of(circuit),
            kernel: detect_kernel(),
            re_prog,
            cap_prog,
            rhs_add,
            rhs_set,
            re_base: vec![0.0; dim * dim],
            cap_vals: vec![(0, 0.0); n_caps],
            rhs_re: vec![0.0; dim],
            re_bcast: vec![0.0; dim * dim * LANES],
            rhs_bcast: vec![0.0; dim * LANES],
            a_re: vec![0.0; dim * dim * LANES],
            a_im: vec![0.0; dim * dim * LANES],
            x_re: vec![0.0; dim * LANES],
            x_im: vec![0.0; dim * LANES],
            prow_re: vec![0.0; dim * LANES],
            prow_im: vec![0.0; dim * LANES],
        }
    }

    /// Returns `true` when `circuit` has exactly the structure this plan was
    /// compiled from (same nodes, same elements in the same order).
    pub fn matches(&self, circuit: &LinearCircuit) -> bool {
        self.sig == StructSig::of(circuit)
    }

    /// Re-reads the element values of `circuit` through the precomputed stamp
    /// programs: real plane, signed capacitances and right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if `circuit` does not structurally match the template.
    fn load(&mut self, circuit: &LinearCircuit) {
        assert!(
            self.matches(circuit),
            "circuit structure differs from the factorized template"
        );
        self.re_base.iter_mut().for_each(|v| *v = 0.0);
        for op in &self.re_prog {
            let val = match op.src {
                ReSrc::Conductance(t) => circuit.conductances[t].2,
                ReSrc::Vccs(t) => circuit.vccs[t].gm,
                ReSrc::Unit => 1.0,
            };
            self.re_base[op.flat] += op.sign * val;
        }
        for (slot, op) in self.cap_vals.iter_mut().zip(&self.cap_prog) {
            *slot = (op.flat, op.sign * circuit.capacitances[op.src].2);
        }
        self.rhs_re.iter_mut().for_each(|v| *v = 0.0);
        for &(i, sign, t) in &self.rhs_add {
            self.rhs_re[i] += sign * circuit.isources[t].amps;
        }
        for &(row, k) in &self.rhs_set {
            self.rhs_re[row] = circuit.vsources[k].ac;
        }
        for (e, &v) in self.re_base.iter().enumerate() {
            self.re_bcast[e * LANES..(e + 1) * LANES].fill(v);
        }
        for (i, &v) in self.rhs_re.iter().enumerate() {
            self.rhs_bcast[i * LANES..(i + 1) * LANES].fill(v);
        }
    }

    /// Sweeps `circuit` over `freqs`, recording the phasor at `output` —
    /// bit-for-bit identical to [`crate::ac::sweep`] on the same circuit,
    /// including which frequency fails first and with which pivot on singular
    /// systems.
    ///
    /// # Errors
    ///
    /// Returns the same [`SpiceError::SingularMatrix`] the scalar sweep would.
    ///
    /// # Panics
    ///
    /// Panics if `circuit` does not structurally match the template.
    pub fn sweep(
        &mut self,
        circuit: &LinearCircuit,
        output: NodeId,
        freqs: &[f64],
    ) -> Result<FrequencyResponse, SpiceError> {
        self.load(circuit);
        let mut values = Vec::with_capacity(freqs.len());
        let dim = self.dim;
        if dim == 0 {
            values.resize(freqs.len(), Complex::ZERO);
            return Ok(FrequencyResponse {
                freqs: freqs.to_vec(),
                values,
            });
        }
        debug_assert!(output < self.num_nodes, "output node out of range");
        let out_idx = if output == 0 { None } else { Some(output - 1) };

        let n_freqs = freqs.len();
        let mut start = 0;
        while start < n_freqs {
            // Tail chunks repeat the last frequency in the padding lanes; the
            // duplicate results are discarded.
            let real_lanes = (n_freqs - start).min(LANES);
            let mut omegas = [0.0f64; LANES];
            for (l, omega) in omegas.iter_mut().enumerate() {
                let fi = (start + l).min(n_freqs - 1);
                *omega = 2.0 * std::f64::consts::PI * freqs[fi];
            }

            // Broadcast the real plane and right-hand side into the lanes,
            // then accumulate the per-frequency imaginary plane.
            self.a_re.copy_from_slice(&self.re_bcast);
            self.a_im.iter_mut().for_each(|v| *v = 0.0);
            for &(fl, c) in &self.cap_vals {
                let lanes = &mut self.a_im[fl * LANES..(fl + 1) * LANES];
                for (l, v) in lanes.iter_mut().enumerate() {
                    *v += omegas[l] * c;
                }
            }
            self.x_re.copy_from_slice(&self.rhs_bcast);
            self.x_im.iter_mut().for_each(|v| *v = 0.0);

            let mut sing = [NOT_SINGULAR; LANES];
            match self.kernel {
                #[cfg(target_arch = "x86_64")]
                Kernel::Avx512 => {
                    // SAFETY: `detect_kernel` selected this variant only after
                    // `is_x86_feature_detected!("avx512f")` returned true.
                    unsafe {
                        solve_lanes_avx512(
                            dim,
                            &mut self.a_re,
                            &mut self.a_im,
                            &mut self.x_re,
                            &mut self.x_im,
                            &mut self.prow_re,
                            &mut self.prow_im,
                            &mut sing,
                        );
                    }
                }
                #[cfg(target_arch = "x86_64")]
                Kernel::Avx2 => {
                    // SAFETY: gated on `is_x86_feature_detected!("avx2")`.
                    unsafe {
                        solve_lanes_avx2(
                            dim,
                            &mut self.a_re,
                            &mut self.a_im,
                            &mut self.x_re,
                            &mut self.x_im,
                            &mut self.prow_re,
                            &mut self.prow_im,
                            &mut sing,
                        );
                    }
                }
                Kernel::Generic => solve_lanes_impl(
                    dim,
                    &mut self.a_re,
                    &mut self.a_im,
                    &mut self.x_re,
                    &mut self.x_im,
                    &mut self.prow_re,
                    &mut self.prow_im,
                    &mut sing,
                ),
            }

            // Frequencies are processed in ascending order, so the first
            // singular real lane is the first failing frequency overall —
            // matching the scalar sweep's early return.
            for &s in sing.iter().take(real_lanes) {
                if s != NOT_SINGULAR {
                    return Err(SpiceError::SingularMatrix { pivot: s });
                }
            }
            for l in 0..real_lanes {
                let v = match out_idx {
                    None => Complex::ZERO,
                    Some(oi) => Complex::new(self.x_re[oi * LANES + l], self.x_im[oi * LANES + l]),
                };
                values.push(v);
            }
            start += LANES;
        }
        Ok(FrequencyResponse {
            freqs: freqs.to_vec(),
            values,
        })
    }
}

/// One SIMD-friendly group of [`LANES`] doubles.
type Lane = [f64; LANES];

#[inline(always)]
fn load(s: &[f64], off: usize) -> Lane {
    let mut v = [0.0f64; LANES];
    v.copy_from_slice(&s[off..off + LANES]);
    v
}

#[inline(always)]
fn store(s: &mut [f64], off: usize, v: &Lane) {
    s[off..off + LANES].copy_from_slice(v);
}

/// Swaps two disjoint [`LANES`]-wide blocks of `s`.
#[inline(always)]
fn swap_blocks(s: &mut [f64], a: usize, b: usize) {
    let ta = load(s, a);
    let tb = load(s, b);
    store(s, a, &tb);
    store(s, b, &ta);
}

/// Smith's complex division with both branches evaluated per lane and the
/// result selected on `|br| >= |bi|` — the branchless (and therefore
/// vectorizable) replica of [`Complex`]'s `Div`. The scalar `0/0 -> NaN`
/// early return is reproduced by the taken branch computing NaN through the
/// identical operations.
#[inline(always)]
fn cdiv_lanes(ar: &Lane, ai: &Lane, br: &Lane, bi: &Lane) -> (Lane, Lane) {
    let mut qr = [0.0f64; LANES];
    let mut qi = [0.0f64; LANES];
    let mut first = [false; LANES];
    let mut n_first = 0usize;
    for l in 0..LANES {
        first[l] = br[l].abs() >= bi[l].abs();
        n_first += usize::from(first[l]);
    }
    // The branch condition is usually uniform across a chunk of adjacent
    // frequencies; computing only the taken branch halves the division count.
    // Both fast paths produce the exact values the select path would pick.
    if n_first == LANES {
        for l in 0..LANES {
            let r1 = bi[l] / br[l];
            let d1 = br[l] + bi[l] * r1;
            qr[l] = (ar[l] + ai[l] * r1) / d1;
            qi[l] = (ai[l] - ar[l] * r1) / d1;
        }
    } else if n_first == 0 {
        for l in 0..LANES {
            let r2 = br[l] / bi[l];
            let d2 = br[l] * r2 + bi[l];
            qr[l] = (ar[l] * r2 + ai[l]) / d2;
            qi[l] = (ai[l] * r2 - ar[l]) / d2;
        }
    } else {
        for l in 0..LANES {
            let r1 = bi[l] / br[l];
            let d1 = br[l] + bi[l] * r1;
            let q1r = (ar[l] + ai[l] * r1) / d1;
            let q1i = (ai[l] - ar[l] * r1) / d1;
            let r2 = br[l] / bi[l];
            let d2 = br[l] * r2 + bi[l];
            let q2r = (ar[l] * r2 + ai[l]) / d2;
            let q2i = (ai[l] * r2 - ar[l]) / d2;
            qr[l] = if first[l] { q1r } else { q2r };
            qi[l] = if first[l] { q1i } else { q2i };
        }
    }
    (qr, qi)
}

/// Per-lane complex LU with partial pivoting: [`crate::linalg::clu_solve_in_place`]
/// replicated over [`LANES`] independent systems in SoA layout
/// (`plane[element * LANES + lane]`). Lanes never exchange data; a lane whose
/// pivot underflows records the failing step in `sing` and keeps running on
/// garbage, which cannot leak into other lanes.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn solve_lanes_impl(
    n: usize,
    a_re: &mut [f64],
    a_im: &mut [f64],
    x_re: &mut [f64],
    x_im: &mut [f64],
    prow_re: &mut [f64],
    prow_im: &mut [f64],
    sing: &mut [usize; LANES],
) {
    const L: usize = LANES;
    for k in 0..n {
        let d = (k * n + k) * L;
        // Per-lane pivot search on |.|^2, exactly as the scalar kernel.
        let mut p = [k; L];
        let dr = load(a_re, d);
        let di = load(a_im, d);
        let mut max = [0.0f64; L];
        for l in 0..L {
            max[l] = dr[l] * dr[l] + di[l] * di[l];
        }
        for i in (k + 1)..n {
            let er = load(a_re, (i * n + k) * L);
            let ei = load(a_im, (i * n + k) * L);
            for l in 0..L {
                let v = er[l] * er[l] + ei[l] * ei[l];
                let gt = v > max[l];
                max[l] = if gt { v } else { max[l] };
                p[l] = if gt { i } else { p[l] };
            }
        }
        for l in 0..L {
            if max[l] < 1e-300 && sing[l] == NOT_SINGULAR {
                sing[l] = k;
            }
        }
        // Row swap. Adjacent frequencies almost always pick the same pivot
        // row, so a whole-lane-block swap is the common case; fall back to
        // per-lane swaps when the lanes disagree.
        let uniform_p = p.iter().all(|&v| v == p[0]);
        if uniform_p {
            let pl = p[0];
            if pl != k {
                for j in 0..n {
                    let ko = (k * n + j) * L;
                    let po = (pl * n + j) * L;
                    swap_blocks(a_re, ko, po);
                    swap_blocks(a_im, ko, po);
                }
                swap_blocks(x_re, k * L, p[0] * L);
                swap_blocks(x_im, k * L, p[0] * L);
            }
        } else {
            #[allow(clippy::needless_range_loop)] // `l` also strides the planes
            for l in 0..L {
                let pl = p[l];
                if pl != k {
                    for j in 0..n {
                        a_re.swap((k * n + j) * L + l, (pl * n + j) * L + l);
                        a_im.swap((k * n + j) * L + l, (pl * n + j) * L + l);
                    }
                    x_re.swap(k * L + l, pl * L + l);
                    x_im.swap(k * L + l, pl * L + l);
                }
            }
        }
        let piv_re = load(a_re, d);
        let piv_im = load(a_im, d);
        // Copy the pivot row and x[k] so the update loops read disjoint
        // buffers (helps the vectorizer's alias analysis).
        for j in (k + 1)..n {
            let s = (k * n + j) * L;
            prow_re[j * L..(j + 1) * L].copy_from_slice(&a_re[s..s + L]);
            prow_im[j * L..(j + 1) * L].copy_from_slice(&a_im[s..s + L]);
        }
        let xk_re = load(x_re, k * L);
        let xk_im = load(x_im, k * L);

        for i in (k + 1)..n {
            let e = (i * n + k) * L;
            let er = load(a_re, e);
            let ei = load(a_im, e);
            let (f_re, f_im) = cdiv_lanes(&er, &ei, &piv_re, &piv_im);
            // `skip[l]` replicates the scalar `f == Complex::ZERO` continue:
            // skipped lanes keep their old values through the selects below.
            let mut skip = [false; L];
            for l in 0..L {
                skip[l] = f_re[l] == 0.0 && f_im[l] == 0.0;
            }
            // MNA matrices are sparse: below-diagonal entries are usually
            // structurally zero in every lane at once, making the whole row
            // update a no-op (each select keeps the old value). Skipping it
            // outright is the lane-parallel form of the scalar kernel's
            // `f == 0 => continue` and changes no stored bit.
            if skip.iter().all(|&s| s) {
                continue;
            }
            if skip.iter().all(|&s| !s) {
                // No lane skips (the common case for structurally non-zero
                // entries): every select below would pick the freshly computed
                // value, so the select-free loops store the identical bits.
                store(a_re, e, &[0.0; L]);
                store(a_im, e, &[0.0; L]);
                for j in (k + 1)..n {
                    let sr = load(prow_re, j * L);
                    let si = load(prow_im, j * L);
                    let t = (i * n + j) * L;
                    let mut tr = load(a_re, t);
                    let mut ti = load(a_im, t);
                    for l in 0..L {
                        tr[l] -= f_re[l] * sr[l] - f_im[l] * si[l];
                        ti[l] -= f_re[l] * si[l] + f_im[l] * sr[l];
                    }
                    store(a_re, t, &tr);
                    store(a_im, t, &ti);
                }
                let t = i * L;
                let mut tr = load(x_re, t);
                let mut ti = load(x_im, t);
                for l in 0..L {
                    tr[l] -= f_re[l] * xk_re[l] - f_im[l] * xk_im[l];
                    ti[l] -= f_re[l] * xk_im[l] + f_im[l] * xk_re[l];
                }
                store(x_re, t, &tr);
                store(x_im, t, &ti);
                continue;
            }
            let mut zr = [0.0f64; L];
            let mut zi = [0.0f64; L];
            for l in 0..L {
                zr[l] = if skip[l] { er[l] } else { 0.0 };
                zi[l] = if skip[l] { ei[l] } else { 0.0 };
            }
            store(a_re, e, &zr);
            store(a_im, e, &zi);
            for j in (k + 1)..n {
                let sr = load(prow_re, j * L);
                let si = load(prow_im, j * L);
                let t = (i * n + j) * L;
                let tr = load(a_re, t);
                let ti = load(a_im, t);
                let mut or = [0.0f64; L];
                let mut oi = [0.0f64; L];
                for l in 0..L {
                    let ur = f_re[l] * sr[l] - f_im[l] * si[l];
                    let ui = f_re[l] * si[l] + f_im[l] * sr[l];
                    let nr = tr[l] - ur;
                    let ni = ti[l] - ui;
                    or[l] = if skip[l] { tr[l] } else { nr };
                    oi[l] = if skip[l] { ti[l] } else { ni };
                }
                store(a_re, t, &or);
                store(a_im, t, &oi);
            }
            let t = i * L;
            let tr = load(x_re, t);
            let ti = load(x_im, t);
            let mut or = [0.0f64; L];
            let mut oi = [0.0f64; L];
            for l in 0..L {
                let ur = f_re[l] * xk_re[l] - f_im[l] * xk_im[l];
                let ui = f_re[l] * xk_im[l] + f_im[l] * xk_re[l];
                let nr = tr[l] - ur;
                let ni = ti[l] - ui;
                or[l] = if skip[l] { tr[l] } else { nr };
                oi[l] = if skip[l] { ti[l] } else { ni };
            }
            store(x_re, t, &or);
            store(x_im, t, &oi);
        }
    }
    // Back substitution, lane-parallel.
    for i in (0..n).rev() {
        let mut acc_re = load(x_re, i * L);
        let mut acc_im = load(x_im, i * L);
        for j in (i + 1)..n {
            let sr = load(a_re, (i * n + j) * L);
            let si = load(a_im, (i * n + j) * L);
            let tr = load(x_re, j * L);
            let ti = load(x_im, j * L);
            for l in 0..L {
                let mr = sr[l] * tr[l] - si[l] * ti[l];
                let mi = sr[l] * ti[l] + si[l] * tr[l];
                acc_re[l] -= mr;
                acc_im[l] -= mi;
            }
        }
        let dr = load(a_re, (i * n + i) * L);
        let di = load(a_im, (i * n + i) * L);
        let (qr, qi) = cdiv_lanes(&acc_re, &acc_im, &dr, &di);
        store(x_re, i * L, &qr);
        store(x_im, i * L, &qi);
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
unsafe fn solve_lanes_avx512(
    n: usize,
    a_re: &mut [f64],
    a_im: &mut [f64],
    x_re: &mut [f64],
    x_im: &mut [f64],
    prow_re: &mut [f64],
    prow_im: &mut [f64],
    sing: &mut [usize; LANES],
) {
    solve_lanes_impl(n, a_re, a_im, x_re, x_im, prow_re, prow_im, sing);
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn solve_lanes_avx2(
    n: usize,
    a_re: &mut [f64],
    a_im: &mut [f64],
    x_re: &mut [f64],
    x_im: &mut [f64],
    prow_re: &mut [f64],
    prow_im: &mut [f64],
    sing: &mut [usize; LANES],
) {
    solve_lanes_impl(n, a_re, a_im, x_re, x_im, prow_re, prow_im, sing);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{log_space, sweep};

    fn bits(c: Complex) -> (u64, u64) {
        (c.re.to_bits(), c.im.to_bits())
    }

    fn amplifier(gm: f64, r: f64, c: f64) -> (LinearCircuit, NodeId) {
        let mut ckt = LinearCircuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.add_vsource(vin, 0, 1.0);
        ckt.add_vccs(vout, 0, vin, 0, gm);
        ckt.add_resistor(vout, 0, r);
        ckt.add_capacitance(vout, 0, c);
        (ckt, vout)
    }

    #[test]
    fn batched_sweep_is_bit_identical_to_scalar() {
        let (ckt, out) = amplifier(1e-3, 1e6, 1e-12);
        let freqs = log_space(1.0, 1e12, 50);
        let scalar = sweep(&ckt, out, &freqs).unwrap();
        let mut fac = FactorizedCircuit::new(&ckt);
        let batched = fac.sweep(&ckt, out, &freqs).unwrap();
        assert_eq!(scalar.freqs, batched.freqs);
        for (i, (s, b)) in scalar.values.iter().zip(&batched.values).enumerate() {
            assert_eq!(bits(*s), bits(*b), "mismatch at sweep point {i}");
        }
    }

    #[test]
    fn reloading_new_values_matches_fresh_scalar_sweeps() {
        let freqs = log_space(10.0, 1e11, 23); // deliberately not a LANES multiple
        let (template, out) = amplifier(1e-3, 1e6, 1e-12);
        let mut fac = FactorizedCircuit::new(&template);
        for (gm, r, c) in [(2e-3, 5e5, 2e-12), (5e-4, 2e6, 4e-13), (1e-5, 1e4, 1e-15)] {
            let (ckt, out2) = amplifier(gm, r, c);
            assert_eq!(out, out2);
            let scalar = sweep(&ckt, out, &freqs).unwrap();
            let batched = fac.sweep(&ckt, out, &freqs).unwrap();
            for (s, b) in scalar.values.iter().zip(&batched.values) {
                assert_eq!(bits(*s), bits(*b));
            }
        }
    }

    #[test]
    fn singular_circuit_reports_identical_error() {
        // A floating node (no DC path, no element at all on `mid`'s row once
        // its only capacitor is zero-valued) makes the MNA matrix singular.
        let mut ckt = LinearCircuit::new();
        let vin = ckt.node();
        let mid = ckt.node();
        ckt.add_vsource(vin, 0, 1.0);
        ckt.add_capacitance(mid, 0, 0.0);
        let freqs = log_space(1.0, 1e6, 11);
        let scalar_err = sweep(&ckt, mid, &freqs).unwrap_err();
        let mut fac = FactorizedCircuit::new(&ckt);
        let batched_err = fac.sweep(&ckt, mid, &freqs).unwrap_err();
        assert_eq!(scalar_err, batched_err);
    }

    #[test]
    #[should_panic(expected = "structure differs")]
    fn structure_mismatch_panics() {
        let (a, out) = amplifier(1e-3, 1e6, 1e-12);
        let mut b = LinearCircuit::new();
        let n1 = b.node();
        b.add_resistor(n1, 0, 1.0);
        let mut fac = FactorizedCircuit::new(&b);
        let _ = fac.sweep(&a, out, &[1.0]);
    }

    #[test]
    fn empty_circuit_sweeps_to_zero() {
        let ckt = LinearCircuit::new();
        let mut fac = FactorizedCircuit::new(&ckt);
        let resp = fac.sweep(&ckt, 0, &[1.0, 10.0, 100.0]).unwrap();
        assert!(resp.values.iter().all(|v| *v == Complex::ZERO));
    }
}
