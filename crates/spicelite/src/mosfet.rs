//! Square-law MOSFET compact model with process-dependent parameters.
//!
//! The model is intentionally simple — a long-channel square-law model with
//! channel-length modulation and a smooth subthreshold cut-off — but it
//! exposes exactly the process "knobs" the MOHECO paper perturbs per device
//! (`TOX`, `VTH0`, `LD`, `WD`) plus global (inter-die) parameters such as the
//! mobility and junction capacitances. The optimizer never looks inside the
//! model; it only sees circuit-level performance numbers, so the square-law
//! model is a faithful stand-in for the HSPICE/BSIM evaluations used in the
//! paper as far as algorithmic behaviour is concerned.

use crate::error::SpiceError;

/// Polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl MosType {
    /// Sign convention helper: +1 for NMOS, -1 for PMOS.
    pub fn sign(self) -> f64 {
        match self {
            MosType::Nmos => 1.0,
            MosType::Pmos => -1.0,
        }
    }
}

/// Operating region of the device at a given bias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// `|Vgs| < |Vth|`: the device is (nearly) off.
    Cutoff,
    /// `|Vds| < |Vgs - Vth|`: linear / triode operation.
    Triode,
    /// `|Vds| >= |Vgs - Vth|`: saturation (the region analog design wants).
    Saturation,
}

/// Technology-level model card for one device polarity.
///
/// All quantities are in SI units (V, A, m, F).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosModel {
    /// Device polarity.
    pub mos_type: MosType,
    /// Zero-bias threshold voltage magnitude (V).
    pub vth0: f64,
    /// Low-field mobility (m^2 / V / s).
    pub u0: f64,
    /// Gate-oxide thickness (m).
    pub tox: f64,
    /// Channel-length modulation coefficient per unit length (V^-1 * m).
    ///
    /// The effective lambda of a device is `lambda_l / l_eff`, which captures
    /// the familiar improvement of output resistance with channel length.
    pub lambda_l: f64,
    /// Lateral diffusion (m); reduces the effective channel length on each side.
    pub ld: f64,
    /// Width reduction (m); reduces the effective channel width on each side.
    pub wd: f64,
    /// Zero-bias bulk junction capacitance per area (F/m^2).
    pub cj: f64,
    /// Zero-bias bulk junction sidewall capacitance per length (F/m).
    pub cjsw: f64,
    /// Body-effect coefficient gamma (V^0.5). Used only for gmb estimation.
    pub gamma: f64,
    /// Subthreshold slope parameter n (unitless, typically 1.2 - 1.6).
    pub subthreshold_n: f64,
}

/// Permittivity of SiO2 (F/m).
pub const EPS_OX: f64 = 3.9 * 8.854e-12;
/// Thermal voltage at 300 K (V).
pub const VT_THERMAL: f64 = 0.02585;

impl MosModel {
    /// Gate-oxide capacitance per unit area, `Cox = eps_ox / tox` (F/m^2).
    pub fn cox(&self) -> f64 {
        EPS_OX / self.tox
    }

    /// Process transconductance `k' = u0 * Cox` (A/V^2).
    pub fn kp(&self) -> f64 {
        self.u0 * self.cox()
    }

    /// Returns a copy of the model with perturbed process parameters.
    ///
    /// `d_*` arguments are *absolute* deviations added to the nominal values;
    /// this is how per-device (intra-die) mismatch and global (inter-die)
    /// shifts are injected by the `moheco-process` crate.
    #[allow(clippy::too_many_arguments)] // one argument per perturbed physical parameter
    pub fn perturbed(
        &self,
        d_tox: f64,
        d_vth0: f64,
        d_ld: f64,
        d_wd: f64,
        d_u0_rel: f64,
        d_cj_rel: f64,
        d_cjsw_rel: f64,
    ) -> MosModel {
        MosModel {
            tox: (self.tox + d_tox).max(self.tox * 0.5),
            vth0: self.vth0 + d_vth0,
            ld: (self.ld + d_ld).max(0.0),
            wd: (self.wd + d_wd).max(0.0),
            u0: self.u0 * (1.0 + d_u0_rel).max(0.1),
            cj: self.cj * (1.0 + d_cj_rel).max(0.1),
            cjsw: self.cjsw * (1.0 + d_cjsw_rel).max(0.1),
            ..*self
        }
    }
}

/// Geometry of a MOSFET instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosGeometry {
    /// Drawn channel width (m).
    pub w: f64,
    /// Drawn channel length (m).
    pub l: f64,
    /// Parallel multiplier (number of fingers), >= 1.
    pub m: f64,
}

impl MosGeometry {
    /// Creates a geometry description.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if any dimension is not strictly
    /// positive.
    pub fn new(w: f64, l: f64, m: f64) -> Result<Self, SpiceError> {
        if w <= 0.0 || l <= 0.0 || m < 1.0 {
            return Err(SpiceError::InvalidElement {
                reason: format!("invalid MOS geometry w={w}, l={l}, m={m}"),
            });
        }
        Ok(Self { w, l, m })
    }

    /// Gate area `W * L * m` (m^2), used for mismatch scaling and area estimates.
    pub fn gate_area(&self) -> f64 {
        self.w * self.l * self.m
    }
}

/// Small-signal and large-signal operating-point data for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosOperatingPoint {
    /// Operating region.
    pub region: Region,
    /// Drain current magnitude (A).
    pub id: f64,
    /// Gate overdrive `|Vgs| - |Vth|` (V); negative in cutoff.
    pub vov: f64,
    /// Effective threshold voltage magnitude (V).
    pub vth: f64,
    /// Transconductance gm (S).
    pub gm: f64,
    /// Output conductance gds (S).
    pub gds: f64,
    /// Bulk transconductance gmb (S).
    pub gmb: f64,
    /// Gate-source capacitance (F).
    pub cgs: f64,
    /// Gate-drain (overlap) capacitance (F).
    pub cgd: f64,
    /// Drain-bulk junction capacitance (F).
    pub cdb: f64,
    /// Source-bulk junction capacitance (F).
    pub csb: f64,
    /// Saturation voltage `Vdsat` (V).
    pub vdsat: f64,
}

/// A MOSFET device: model card plus geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    /// Model card (possibly perturbed by process variation).
    pub model: MosModel,
    /// Instance geometry.
    pub geometry: MosGeometry,
}

impl Mosfet {
    /// Creates a device from a model card and geometry.
    pub fn new(model: MosModel, geometry: MosGeometry) -> Self {
        Self { model, geometry }
    }

    /// Effective channel length after lateral diffusion (m).
    pub fn l_eff(&self) -> f64 {
        (self.geometry.l - 2.0 * self.model.ld).max(1e-9)
    }

    /// Effective channel width after width reduction (m), including multiplier.
    pub fn w_eff(&self) -> f64 {
        ((self.geometry.w - 2.0 * self.model.wd).max(1e-9)) * self.geometry.m
    }

    /// Effective channel-length modulation coefficient (1/V).
    pub fn lambda(&self) -> f64 {
        self.model.lambda_l / self.l_eff()
    }

    /// Evaluates the large- and small-signal behaviour at bias `(vgs, vds, vsb)`.
    ///
    /// All voltages follow the usual *magnitude* convention for the device
    /// polarity: for a PMOS pass `vgs = vsg`, `vds = vsd`, `vsb = vbs`, i.e.
    /// positive numbers for a normally biased device. Currents returned are
    /// magnitudes.
    pub fn operating_point(&self, vgs: f64, vds: f64, vsb: f64) -> MosOperatingPoint {
        let m = &self.model;
        let w_eff = self.w_eff();
        let l_eff = self.l_eff();
        let kp = m.kp();
        let beta = kp * w_eff / l_eff;
        // Body effect on threshold (simple first-order model).
        let phi_f2 = 0.7;
        let vth = m.vth0 + m.gamma * ((phi_f2 + vsb.max(0.0)).sqrt() - phi_f2.sqrt());
        let vov = vgs - vth;
        let lambda = self.lambda();
        let vdsat = vov.max(0.0);

        let (region, id, gm, gds) = if vov <= 0.0 {
            // Subthreshold: exponential tail so the DC solver sees a smooth,
            // monotone characteristic instead of a hard zero.
            let n = m.subthreshold_n;
            let i0 = beta * n * VT_THERMAL * VT_THERMAL * 2.0;
            let id = i0 * (vov / (n * VT_THERMAL)).exp() * (1.0 - (-vds / VT_THERMAL).exp());
            let gm = id / (n * VT_THERMAL);
            let gds = (i0 * (vov / (n * VT_THERMAL)).exp() * (-vds / VT_THERMAL).exp()
                / VT_THERMAL)
                .max(1e-12);
            (Region::Cutoff, id.max(0.0), gm.max(0.0), gds)
        } else if vds < vdsat {
            // Triode.
            let id = beta * (vov * vds - 0.5 * vds * vds) * (1.0 + lambda * vds);
            let gm = beta * vds * (1.0 + lambda * vds);
            let gds = beta * (vov - vds) * (1.0 + lambda * vds)
                + beta * (vov * vds - 0.5 * vds * vds) * lambda;
            (Region::Triode, id.max(0.0), gm.max(0.0), gds.max(1e-12))
        } else {
            // Saturation.
            let id = 0.5 * beta * vov * vov * (1.0 + lambda * vds);
            let gm = beta * vov * (1.0 + lambda * vds);
            let gds = 0.5 * beta * vov * vov * lambda;
            (Region::Saturation, id, gm, gds.max(1e-12))
        };

        // Body transconductance: gmb = gm * gamma / (2 sqrt(phi + vsb)).
        let gmb = gm * m.gamma / (2.0 * (phi_f2 + vsb.max(0.0)).sqrt());

        // Capacitances.
        let cox = m.cox();
        let c_overlap = w_eff * m.ld.max(1e-9) * cox;
        let cgs = match region {
            Region::Saturation | Region::Cutoff => (2.0 / 3.0) * w_eff * l_eff * cox + c_overlap,
            Region::Triode => 0.5 * w_eff * l_eff * cox + c_overlap,
        };
        let cgd = match region {
            Region::Saturation | Region::Cutoff => c_overlap,
            Region::Triode => 0.5 * w_eff * l_eff * cox + c_overlap,
        };
        // Junction capacitances assume a drain/source diffusion length of ~3x
        // the minimum feature; only the scaling with W matters for the
        // pole locations that set GBW/PM.
        let ldiff = 3.0 * self.geometry.l.min(1e-6);
        let cdb = m.cj * w_eff * ldiff + m.cjsw * (2.0 * (w_eff + ldiff));
        let csb = cdb;

        MosOperatingPoint {
            region,
            id,
            vov,
            vth,
            gm,
            gds,
            gmb,
            cgs,
            cgd,
            cdb,
            csb,
            vdsat,
        }
    }

    /// Drain current magnitude at bias `(vgs, vds, vsb)` — bit-identical to
    /// `self.operating_point(vgs, vds, vsb).id` but skipping the small-signal
    /// and capacitance computation.
    ///
    /// This is the inner function of the [`Self::vgs_for_current`] bisection,
    /// which only ever observes the current; `tests` pin the bit-identity
    /// against [`Self::operating_point`] over a dense bias grid.
    pub fn drain_current(&self, vgs: f64, vds: f64, vsb: f64) -> f64 {
        let m = &self.model;
        let w_eff = self.w_eff();
        let l_eff = self.l_eff();
        let kp = m.kp();
        let beta = kp * w_eff / l_eff;
        let phi_f2 = 0.7;
        let vth = m.vth0 + m.gamma * ((phi_f2 + vsb.max(0.0)).sqrt() - phi_f2.sqrt());
        let vov = vgs - vth;
        let lambda = self.lambda();
        let vdsat = vov.max(0.0);
        if vov <= 0.0 {
            let n = m.subthreshold_n;
            let i0 = beta * n * VT_THERMAL * VT_THERMAL * 2.0;
            let id = i0 * (vov / (n * VT_THERMAL)).exp() * (1.0 - (-vds / VT_THERMAL).exp());
            id.max(0.0)
        } else if vds < vdsat {
            let id = beta * (vov * vds - 0.5 * vds * vds) * (1.0 + lambda * vds);
            id.max(0.0)
        } else {
            0.5 * beta * vov * vov * (1.0 + lambda * vds)
        }
    }

    /// Solves for the `|Vgs|` that produces the requested drain current in
    /// saturation at the given `|Vds|`, via bisection on the device equation.
    ///
    /// This is the workhorse used by the analytic bias generators in the
    /// `moheco-analog` crate: branch currents are set by current mirrors, and
    /// each device's gate voltage follows from its current.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::DcNoConvergence`] when the target current cannot
    /// be reached within the gate-voltage search range (0 to 5 V overdrive).
    pub fn vgs_for_current(&self, id_target: f64, vds: f64, vsb: f64) -> Result<f64, SpiceError> {
        if id_target <= 0.0 {
            return Err(SpiceError::InvalidElement {
                reason: format!("target current must be positive, got {id_target}"),
            });
        }
        let mut lo = 0.0_f64;
        let mut hi = self.model.vth0 + 5.0;
        // Hoisted replica of [`Self::drain_current`]: every quantity that does
        // not depend on `vgs` is computed once, with the exact expressions the
        // per-call version uses, so each iteration sees bit-identical values
        // while skipping the redundant sqrt/exp work (the bisection runs this
        // ~40 times per bias point).
        let m = &self.model;
        let w_eff = self.w_eff();
        let l_eff = self.l_eff();
        let kp = m.kp();
        let beta = kp * w_eff / l_eff;
        let phi_f2 = 0.7;
        let vth = m.vth0 + m.gamma * ((phi_f2 + vsb.max(0.0)).sqrt() - phi_f2.sqrt());
        let lambda = self.lambda();
        let n = m.subthreshold_n;
        let nvt = n * VT_THERMAL;
        let i0 = beta * n * VT_THERMAL * VT_THERMAL * 2.0;
        let drain_factor = 1.0 - (-vds / VT_THERMAL).exp();
        let clm = 1.0 + lambda * vds;
        let f = |vgs: f64| {
            let vov = vgs - vth;
            let vdsat = vov.max(0.0);
            let id = if vov <= 0.0 {
                (i0 * (vov / nvt).exp() * drain_factor).max(0.0)
            } else if vds < vdsat {
                (beta * (vov * vds - 0.5 * vds * vds) * clm).max(0.0)
            } else {
                0.5 * beta * vov * vov * clm
            };
            id - id_target
        };
        if f(hi) < 0.0 {
            return Err(SpiceError::DcNoConvergence {
                iterations: 0,
                residual: -f(hi),
            });
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo < 1e-12 {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

/// Returns a representative 0.35 µm model card for the requested polarity.
///
/// Values are textbook-level approximations of a 0.35 µm CMOS process
/// (3.3 V supply): |Vth0| ≈ 0.55/0.65 V, tox ≈ 7.6 nm.
pub fn model_035um(mos_type: MosType) -> MosModel {
    match mos_type {
        MosType::Nmos => MosModel {
            mos_type,
            vth0: 0.55,
            u0: 0.0430,
            tox: 7.6e-9,
            lambda_l: 0.06e-6,
            ld: 0.03e-6,
            wd: 0.02e-6,
            cj: 9.0e-4,
            cjsw: 2.8e-10,
            gamma: 0.58,
            subthreshold_n: 1.4,
        },
        MosType::Pmos => MosModel {
            mos_type,
            vth0: 0.65,
            u0: 0.0145,
            tox: 7.6e-9,
            lambda_l: 0.08e-6,
            ld: 0.03e-6,
            wd: 0.02e-6,
            cj: 1.1e-3,
            cjsw: 3.0e-10,
            gamma: 0.52,
            subthreshold_n: 1.45,
        },
    }
}

/// Returns a representative 90 nm model card for the requested polarity.
///
/// Values approximate a 90 nm CMOS process (1.2 V supply): |Vth0| ≈ 0.30/0.33 V,
/// tox ≈ 2.1 nm.
pub fn model_90nm(mos_type: MosType) -> MosModel {
    match mos_type {
        MosType::Nmos => MosModel {
            mos_type,
            vth0: 0.30,
            u0: 0.0280,
            tox: 2.1e-9,
            lambda_l: 0.025e-6,
            ld: 0.008e-6,
            wd: 0.005e-6,
            cj: 1.1e-3,
            cjsw: 1.0e-10,
            gamma: 0.35,
            subthreshold_n: 1.5,
        },
        MosType::Pmos => MosModel {
            mos_type,
            vth0: 0.33,
            u0: 0.0110,
            tox: 2.1e-9,
            lambda_l: 0.035e-6,
            ld: 0.008e-6,
            wd: 0.005e-6,
            cj: 1.2e-3,
            cjsw: 1.1e-10,
            gamma: 0.32,
            subthreshold_n: 1.55,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos_035(w_um: f64, l_um: f64) -> Mosfet {
        Mosfet::new(
            model_035um(MosType::Nmos),
            MosGeometry::new(w_um * 1e-6, l_um * 1e-6, 1.0).unwrap(),
        )
    }

    #[test]
    fn geometry_validation() {
        assert!(MosGeometry::new(1e-6, 0.35e-6, 1.0).is_ok());
        assert!(MosGeometry::new(-1e-6, 0.35e-6, 1.0).is_err());
        assert!(MosGeometry::new(1e-6, 0.0, 1.0).is_err());
        assert!(MosGeometry::new(1e-6, 0.35e-6, 0.5).is_err());
    }

    #[test]
    fn cox_and_kp_are_physical() {
        let m = model_035um(MosType::Nmos);
        let cox = m.cox();
        // ~4.5 mF/m^2 for 7.6nm oxide
        assert!(cox > 3e-3 && cox < 6e-3, "cox = {cox}");
        assert!(m.kp() > 1e-4 && m.kp() < 3e-4, "kp = {}", m.kp());
    }

    #[test]
    fn saturation_current_follows_square_law() {
        let d = nmos_035(10.0, 1.0);
        let op1 = d.operating_point(0.55 + 0.2, 1.5, 0.0);
        let op2 = d.operating_point(0.55 + 0.4, 1.5, 0.0);
        assert_eq!(op1.region, Region::Saturation);
        assert_eq!(op2.region, Region::Saturation);
        // Doubling Vov should roughly quadruple Id (lambda causes slight deviation).
        let ratio = op2.id / op1.id;
        assert!((ratio - 4.0).abs() < 0.3, "ratio = {ratio}");
    }

    #[test]
    fn gm_matches_finite_difference() {
        let d = nmos_035(20.0, 0.7);
        let vgs = 0.9;
        let vds = 1.2;
        let op = d.operating_point(vgs, vds, 0.0);
        let h = 1e-6;
        let gm_fd = (d.operating_point(vgs + h, vds, 0.0).id
            - d.operating_point(vgs - h, vds, 0.0).id)
            / (2.0 * h);
        assert!(
            (op.gm - gm_fd).abs() / gm_fd < 1e-3,
            "gm {} vs fd {}",
            op.gm,
            gm_fd
        );
    }

    #[test]
    fn gds_matches_finite_difference_in_saturation() {
        let d = nmos_035(20.0, 0.7);
        let vgs = 0.9;
        let vds = 1.5;
        let op = d.operating_point(vgs, vds, 0.0);
        assert_eq!(op.region, Region::Saturation);
        let h = 1e-6;
        let gds_fd = (d.operating_point(vgs, vds + h, 0.0).id
            - d.operating_point(vgs, vds - h, 0.0).id)
            / (2.0 * h);
        assert!(
            (op.gds - gds_fd).abs() / gds_fd < 1e-2,
            "gds {} vs fd {}",
            op.gds,
            gds_fd
        );
    }

    #[test]
    fn regions_are_classified() {
        let d = nmos_035(10.0, 0.35);
        assert_eq!(d.operating_point(0.3, 1.0, 0.0).region, Region::Cutoff);
        assert_eq!(d.operating_point(1.2, 0.2, 0.0).region, Region::Triode);
        assert_eq!(d.operating_point(1.2, 1.5, 0.0).region, Region::Saturation);
    }

    #[test]
    fn cutoff_current_is_tiny_but_positive() {
        let d = nmos_035(10.0, 0.35);
        let op = d.operating_point(0.2, 1.0, 0.0);
        assert!(op.id >= 0.0);
        assert!(op.id < 1e-6);
    }

    #[test]
    fn longer_channel_gives_higher_output_resistance() {
        let short = nmos_035(10.0, 0.35);
        let long = nmos_035(10.0, 1.4);
        // Bias both to the same overdrive.
        let op_s = short.operating_point(0.85, 1.5, 0.0);
        let op_l = long.operating_point(0.85, 1.5, 0.0);
        let ro_s = 1.0 / op_s.gds;
        let ro_l = 1.0 / op_l.gds;
        assert!(ro_l > ro_s, "ro_l {ro_l} should exceed ro_s {ro_s}");
    }

    #[test]
    fn body_effect_raises_threshold() {
        let d = nmos_035(10.0, 0.35);
        let op0 = d.operating_point(1.0, 1.5, 0.0);
        let op1 = d.operating_point(1.0, 1.5, 1.0);
        assert!(op1.vth > op0.vth);
        assert!(op1.id < op0.id);
    }

    #[test]
    fn vgs_for_current_inverts_the_model() {
        let d = nmos_035(50.0, 0.5);
        let target = 100e-6;
        let vgs = d.vgs_for_current(target, 1.5, 0.0).unwrap();
        let op = d.operating_point(vgs, 1.5, 0.0);
        assert!((op.id - target).abs() / target < 1e-6);
    }

    #[test]
    fn vgs_for_current_rejects_bad_input() {
        let d = nmos_035(50.0, 0.5);
        assert!(d.vgs_for_current(-1.0, 1.5, 0.0).is_err());
        assert!(d.vgs_for_current(0.0, 1.5, 0.0).is_err());
        // Unreachable current for a tiny device.
        let tiny = nmos_035(0.5, 10.0);
        assert!(tiny.vgs_for_current(1.0, 1.5, 0.0).is_err());
    }

    #[test]
    fn drain_current_is_bit_identical_to_operating_point() {
        // Seeded LCG grid spanning cutoff, triode and saturation for both
        // polarities and both model cards; the id-only fast path must agree
        // with the full operating-point evaluation bit for bit, and the
        // bisection built on it must land on bitwise-identical vgs values.
        let mut state = 0x9e37_79b9_97f4_a7c5_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let devices = [
            Mosfet::new(
                model_035um(MosType::Nmos),
                MosGeometry::new(20e-6, 0.5e-6, 1.0).unwrap(),
            ),
            Mosfet::new(
                model_035um(MosType::Pmos),
                MosGeometry::new(40e-6, 0.5e-6, 2.0).unwrap(),
            ),
            Mosfet::new(
                model_90nm(MosType::Nmos),
                MosGeometry::new(2e-6, 0.1e-6, 1.0).unwrap(),
            ),
            Mosfet::new(
                model_90nm(MosType::Pmos),
                MosGeometry::new(4e-6, 0.1e-6, 1.0).unwrap(),
            ),
        ];
        let mut regions = [0usize; 3];
        for d in &devices {
            for _ in 0..500 {
                let vgs = -0.5 + 3.0 * next();
                let vds = 3.0 * next();
                let vsb = -0.2 + 1.0 * next();
                let op = d.operating_point(vgs, vds, vsb);
                regions[match op.region {
                    Region::Cutoff => 0,
                    Region::Triode => 1,
                    Region::Saturation => 2,
                }] += 1;
                assert_eq!(
                    d.drain_current(vgs, vds, vsb).to_bits(),
                    op.id.to_bits(),
                    "id mismatch at vgs={vgs} vds={vds} vsb={vsb}"
                );
            }
            for _ in 0..20 {
                let id_target = 1e-6 + 200e-6 * next();
                let vds = 0.2 + 2.0 * next();
                let via_fast = d.vgs_for_current(id_target, vds, 0.0);
                // Reference bisection over the full operating-point id.
                let slow = |id_target: f64, vds: f64, vsb: f64| -> Result<f64, SpiceError> {
                    let mut lo = 0.0_f64;
                    let mut hi = d.model.vth0 + 5.0;
                    let f = |vgs: f64| d.operating_point(vgs, vds, vsb).id - id_target;
                    if f(hi) < 0.0 {
                        return Err(SpiceError::DcNoConvergence {
                            iterations: 0,
                            residual: -f(hi),
                        });
                    }
                    for _ in 0..200 {
                        let mid = 0.5 * (lo + hi);
                        if f(mid) > 0.0 {
                            hi = mid;
                        } else {
                            lo = mid;
                        }
                        if hi - lo < 1e-12 {
                            break;
                        }
                    }
                    Ok(0.5 * (lo + hi))
                };
                match (via_fast, slow(id_target, vds, 0.0)) {
                    (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("divergent results: {a:?} vs {b:?}"),
                }
            }
        }
        assert!(
            regions.iter().all(|&c| c > 0),
            "bias grid must exercise all regions, got {regions:?}"
        );
    }

    #[test]
    fn perturbation_shifts_vth_and_current() {
        let base = model_035um(MosType::Nmos);
        let pert = base.perturbed(0.0, 0.05, 0.0, 0.0, 0.0, 0.0, 0.0);
        let g = MosGeometry::new(10e-6, 0.35e-6, 1.0).unwrap();
        let d0 = Mosfet::new(base, g);
        let d1 = Mosfet::new(pert, g);
        let id0 = d0.operating_point(1.0, 1.5, 0.0).id;
        let id1 = d1.operating_point(1.0, 1.5, 0.0).id;
        assert!(id1 < id0, "higher vth must reduce current");
    }

    #[test]
    fn thinner_oxide_raises_current() {
        let base = model_035um(MosType::Nmos);
        let pert = base.perturbed(-0.5e-9, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        let g = MosGeometry::new(10e-6, 0.35e-6, 1.0).unwrap();
        let id0 = Mosfet::new(base, g).operating_point(1.0, 1.5, 0.0).id;
        let id1 = Mosfet::new(pert, g).operating_point(1.0, 1.5, 0.0).id;
        assert!(id1 > id0);
    }

    #[test]
    fn capacitances_scale_with_width() {
        let small = nmos_035(5.0, 0.35);
        let big = nmos_035(50.0, 0.35);
        let op_s = small.operating_point(1.0, 1.5, 0.0);
        let op_b = big.operating_point(1.0, 1.5, 0.0);
        assert!(op_b.cgs > 5.0 * op_s.cgs);
        assert!(op_b.cdb > 5.0 * op_s.cdb);
    }

    #[test]
    fn pmos_models_exist_for_both_nodes() {
        for m in [
            model_035um(MosType::Pmos),
            model_90nm(MosType::Nmos),
            model_90nm(MosType::Pmos),
        ] {
            assert!(m.vth0 > 0.0 && m.tox > 0.0 && m.u0 > 0.0);
        }
        assert!(model_90nm(MosType::Nmos).tox < model_035um(MosType::Nmos).tox);
    }

    #[test]
    fn multiplier_scales_current() {
        let m = model_035um(MosType::Nmos);
        let d1 = Mosfet::new(m, MosGeometry::new(10e-6, 0.35e-6, 1.0).unwrap());
        let d4 = Mosfet::new(m, MosGeometry::new(10e-6, 0.35e-6, 4.0).unwrap());
        let id1 = d1.operating_point(1.0, 1.5, 0.0).id;
        let id4 = d4.operating_point(1.0, 1.5, 0.0).id;
        assert!((id4 / id1 - 4.0).abs() < 0.05);
    }
}
