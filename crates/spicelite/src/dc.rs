//! Newton–Raphson DC operating-point analysis.
//!
//! The solver assembles the MNA matrix of a [`Circuit`] at each Newton
//! iteration, replacing every MOSFET by its companion model (linearised
//! current source + conductances evaluated at the present voltage estimate).
//! A `gmin` conductance to ground on every node and simple voltage-step
//! damping keep the iteration stable for the bias networks exercised in this
//! workspace.

use crate::error::SpiceError;
use crate::linalg::Matrix;
use crate::mosfet::MosOperatingPoint;
use crate::netlist::{Circuit, NodeId};

/// Result of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    /// Node voltages, indexed by [`NodeId`] (ground included, always 0.0).
    pub node_voltages: Vec<f64>,
    /// Currents through the voltage sources, in source insertion order.
    pub vsource_currents: Vec<f64>,
    /// Operating point of every MOSFET, in instance insertion order.
    pub mosfet_ops: Vec<MosOperatingPoint>,
    /// Number of Newton iterations used.
    pub iterations: usize,
}

impl DcSolution {
    /// Voltage of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.node_voltages[node]
    }

    /// Current delivered by voltage source `idx` (positive out of the `p` terminal).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn vsource_current(&self, idx: usize) -> f64 {
        self.vsource_currents[idx]
    }
}

/// Options controlling the Newton–Raphson iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcOptions {
    /// Maximum number of Newton iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the max voltage update (V).
    pub vtol: f64,
    /// Minimum conductance to ground added on every node (S).
    pub gmin: f64,
    /// Maximum voltage step per iteration (V); larger updates are clamped.
    pub max_step: f64,
}

impl Default for DcOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            vtol: 1e-9,
            gmin: 1e-12,
            max_step: 0.5,
        }
    }
}

/// Solves the DC operating point of `circuit` with default options.
///
/// # Errors
///
/// Returns [`SpiceError::DcNoConvergence`] if the Newton iteration does not
/// converge and [`SpiceError::SingularMatrix`] if the MNA matrix is singular
/// (e.g. a floating node with no DC path to ground).
pub fn solve_dc(circuit: &Circuit) -> Result<DcSolution, SpiceError> {
    solve_dc_with(circuit, DcOptions::default())
}

/// Solves the DC operating point of `circuit` with explicit options.
///
/// # Errors
///
/// See [`solve_dc`].
pub fn solve_dc_with(circuit: &Circuit, opts: DcOptions) -> Result<DcSolution, SpiceError> {
    let n = circuit.num_nodes();
    let m = circuit.num_vsources();
    let dim = (n - 1) + m;
    if dim == 0 {
        return Ok(DcSolution {
            node_voltages: vec![0.0; n],
            vsource_currents: Vec::new(),
            mosfet_ops: Vec::new(),
            iterations: 0,
        });
    }

    // Initial guess: every node at half of the maximum source voltage, which
    // is a serviceable starting point for single-supply analog circuits.
    let vmax = circuit
        .vsources
        .iter()
        .map(|v| v.volts.abs())
        .fold(0.0_f64, f64::max);
    let mut v = vec![vmax * 0.5; n];
    v[0] = 0.0;

    let mut iterations = 0;
    loop {
        iterations += 1;
        let (a, rhs) = assemble(circuit, &v, opts.gmin);
        let x = a.solve(&rhs)?;
        // Damped update of node voltages.
        let mut max_delta = 0.0_f64;
        for node in 1..n {
            let newv = x[node - 1];
            let mut delta = newv - v[node];
            if delta.abs() > opts.max_step {
                delta = opts.max_step * delta.signum();
            }
            v[node] += delta;
            max_delta = max_delta.max(delta.abs());
        }
        if max_delta < opts.vtol {
            // Converged: extract branch currents and device operating points.
            let (_, _) = (a, rhs);
            let vsource_currents: Vec<f64> = (0..m).map(|k| x[(n - 1) + k]).collect();
            let mosfet_ops = circuit
                .mosfets()
                .iter()
                .map(|inst| {
                    let sign = inst.device.model.mos_type.sign();
                    let vgs = sign * (v[inst.g] - v[inst.s]);
                    let vds = sign * (v[inst.d] - v[inst.s]);
                    let vsb = sign * (v[inst.s] - v[inst.b]);
                    inst.device.operating_point(vgs, vds.max(0.0), vsb.max(0.0))
                })
                .collect();
            return Ok(DcSolution {
                node_voltages: v,
                vsource_currents,
                mosfet_ops,
                iterations,
            });
        }
        if iterations >= opts.max_iterations {
            return Err(SpiceError::DcNoConvergence {
                iterations,
                residual: max_delta,
            });
        }
    }
}

/// Assembles the linearised MNA system around the voltage estimate `v`.
fn assemble(circuit: &Circuit, v: &[f64], gmin: f64) -> (Matrix, Vec<f64>) {
    let n = circuit.num_nodes();
    let m = circuit.num_vsources();
    let dim = (n - 1) + m;
    let mut a = Matrix::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];

    let idx = |node: NodeId| -> Option<usize> {
        if node == 0 {
            None
        } else {
            Some(node - 1)
        }
    };

    let stamp_g = |a: &mut Matrix, p: NodeId, q: NodeId, g: f64| {
        if let Some(i) = idx(p) {
            a[(i, i)] += g;
        }
        if let Some(j) = idx(q) {
            a[(j, j)] += g;
        }
        if let (Some(i), Some(j)) = (idx(p), idx(q)) {
            a[(i, j)] -= g;
            a[(j, i)] -= g;
        }
    };

    // gmin to ground for every node.
    for node in 1..n {
        a[(node - 1, node - 1)] += gmin;
    }

    for r in &circuit.resistors {
        stamp_g(&mut a, r.a, r.b, 1.0 / r.ohms);
    }
    // Capacitors are open circuits at DC; nothing to stamp.

    for g in &circuit.vccs {
        // i(out_p -> out_n) = gm * (v(in_p) - v(in_n))
        for (out_node, sign_out) in [(g.out_p, 1.0), (g.out_n, -1.0)] {
            if let Some(i) = idx(out_node) {
                if let Some(j) = idx(g.in_p) {
                    a[(i, j)] += sign_out * g.gm;
                }
                if let Some(j) = idx(g.in_n) {
                    a[(i, j)] -= sign_out * g.gm;
                }
            }
        }
    }

    for s in &circuit.isources {
        if let Some(i) = idx(s.from) {
            rhs[i] -= s.amps;
        }
        if let Some(i) = idx(s.to) {
            rhs[i] += s.amps;
        }
    }

    for (k, vs) in circuit.vsources.iter().enumerate() {
        let row = (n - 1) + k;
        if let Some(i) = idx(vs.p) {
            a[(i, row)] += 1.0;
            a[(row, i)] += 1.0;
        }
        if let Some(i) = idx(vs.n) {
            a[(i, row)] -= 1.0;
            a[(row, i)] -= 1.0;
        }
        rhs[row] = vs.volts;
    }

    // MOSFET companion models.
    for inst in circuit.mosfets() {
        let sign = inst.device.model.mos_type.sign();
        let vgs = sign * (v[inst.g] - v[inst.s]);
        let vds = sign * (v[inst.d] - v[inst.s]);
        let vsb = sign * (v[inst.s] - v[inst.b]);
        let op = inst.device.operating_point(vgs, vds.max(0.0), vsb.max(0.0));
        // Linearised drain current (device-polarity magnitudes):
        //   id ~= Ieq + gm * vgs + gds * vds
        let ieq = op.id - op.gm * vgs - op.gds * vds.max(0.0);
        // Stamp gm as a VCCS (d->s controlled by g-s) and gds between d and s.
        // For PMOS the current direction flips: a positive magnitude current
        // flows source -> drain in circuit orientation.
        let (drain, source) = (inst.d, inst.s);
        // gds between drain and source.
        stamp_g(&mut a, drain, source, op.gds);
        // gm VCCS: i(drain -> source) += gm * (v_g - v_s) * sign (converted back
        // to circuit polarity).
        for (out_node, sign_out) in [(drain, 1.0), (source, -1.0)] {
            if let Some(i) = idx(out_node) {
                if let Some(j) = idx(inst.g) {
                    a[(i, j)] += sign_out * op.gm;
                }
                if let Some(j) = idx(inst.s) {
                    a[(i, j)] -= sign_out * op.gm;
                }
            }
        }
        // Equivalent current source: magnitude ieq flows drain->source for NMOS,
        // source->drain for PMOS. In node equations, current leaving the drain
        // node is +id*sign at drain, -id*sign at source.
        let i_circ = sign * ieq;
        if let Some(i) = idx(drain) {
            rhs[i] -= i_circ;
        }
        if let Some(i) = idx(source) {
            rhs[i] += i_circ;
        }
    }

    (a, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::{model_035um, MosGeometry, MosType, Mosfet, Region};
    use crate::netlist::Circuit;

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new();
        let vin = c.node();
        let mid = c.node();
        c.add_vsource(vin, 0, 3.0).unwrap();
        c.add_resistor(vin, mid, 1000.0).unwrap();
        c.add_resistor(mid, 0, 2000.0).unwrap();
        let sol = solve_dc(&c).unwrap();
        assert!((sol.voltage(mid) - 2.0).abs() < 1e-6);
        // Source current = -3/3000 (flowing out of + terminal into the circuit).
        assert!((sol.vsource_current(0) + 1e-3).abs() < 1e-6);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n1 = c.node();
        c.add_isource(0, n1, 1e-3).unwrap();
        c.add_resistor(n1, 0, 5000.0).unwrap();
        let sol = solve_dc(&c).unwrap();
        assert!((sol.voltage(n1) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn vccs_inverting_amplifier() {
        // VCCS driving a load resistor from a fixed input voltage: v_out = -gm*R*v_in.
        let mut c = Circuit::new();
        let vin = c.node();
        let vout = c.node();
        c.add_vsource(vin, 0, 0.1).unwrap();
        c.add_vccs(vout, 0, vin, 0, 1e-3).unwrap();
        c.add_resistor(vout, 0, 10_000.0).unwrap();
        let sol = solve_dc(&c).unwrap();
        assert!((sol.voltage(vout) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_is_reported_singular() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        // Two nodes joined by a resistor but no path to ground other than gmin:
        // the gmin keeps it solvable, so instead build a truly empty column by
        // adding a capacitor only (open at DC).
        c.add_capacitor(a, b, 1e-12).unwrap();
        // With gmin stamping the system is still solvable; verify it does not
        // blow up and produces ~0 voltages.
        let sol = solve_dc(&c).unwrap();
        assert!(sol.voltage(a).abs() < 1e-6);
        assert!(sol.voltage(b).abs() < 1e-6);
    }

    #[test]
    fn nmos_common_source_operating_point() {
        // VDD -- RD -- drain, gate driven at fixed bias, source grounded.
        let mut c = Circuit::new();
        let vdd = c.node();
        let gate = c.node();
        let drain = c.node();
        c.add_vsource(vdd, 0, 3.3).unwrap();
        c.add_vsource(gate, 0, 0.9).unwrap();
        c.add_resistor(vdd, drain, 10_000.0).unwrap();
        let dev = Mosfet::new(
            model_035um(MosType::Nmos),
            MosGeometry::new(20e-6, 1.0e-6, 1.0).unwrap(),
        );
        c.add_mosfet("M1", drain, gate, 0, 0, dev).unwrap();
        let sol = solve_dc(&c).unwrap();
        let vd = sol.voltage(drain);
        assert!(vd > 0.2 && vd < 3.3, "drain voltage {vd} out of range");
        // KCL check: resistor current equals device current.
        let ir = (3.3 - vd) / 10_000.0;
        let op = &sol.mosfet_ops[0];
        assert!(
            (ir - op.id).abs() / ir < 1e-3,
            "resistor {ir} vs device {}",
            op.id
        );
        assert_eq!(op.region, Region::Saturation);
    }

    #[test]
    fn diode_connected_nmos_settles_near_vth_plus_vov() {
        let mut c = Circuit::new();
        let vdd = c.node();
        let drain = c.node();
        c.add_vsource(vdd, 0, 3.3).unwrap();
        c.add_resistor(vdd, drain, 20_000.0).unwrap();
        let dev = Mosfet::new(
            model_035um(MosType::Nmos),
            MosGeometry::new(20e-6, 1.0e-6, 1.0).unwrap(),
        );
        // Diode connection: gate tied to drain.
        c.add_mosfet("M1", drain, drain, 0, 0, dev).unwrap();
        let sol = solve_dc(&c).unwrap();
        let vd = sol.voltage(drain);
        assert!(vd > 0.55 && vd < 1.5, "diode voltage {vd}");
    }

    #[test]
    fn pmos_source_follower_level() {
        // PMOS with source at VDD through nothing (common-source, drain load to gnd).
        let mut c = Circuit::new();
        let vdd = c.node();
        let gate = c.node();
        let drain = c.node();
        c.add_vsource(vdd, 0, 3.3).unwrap();
        c.add_vsource(gate, 0, 2.3).unwrap();
        c.add_resistor(drain, 0, 20_000.0).unwrap();
        let dev = Mosfet::new(
            model_035um(MosType::Pmos),
            MosGeometry::new(40e-6, 1.0e-6, 1.0).unwrap(),
        );
        c.add_mosfet("M1", drain, gate, vdd, vdd, dev).unwrap();
        let sol = solve_dc(&c).unwrap();
        let vd = sol.voltage(drain);
        assert!(vd > 0.0 && vd < 3.3, "drain voltage {vd}");
        let ir = vd / 20_000.0;
        assert!((ir - sol.mosfet_ops[0].id).abs() / ir.max(1e-12) < 1e-2);
    }

    #[test]
    fn empty_circuit_is_trivial() {
        let c = Circuit::new();
        let sol = solve_dc(&c).unwrap();
        assert_eq!(sol.node_voltages, vec![0.0]);
        assert!(sol.vsource_currents.is_empty());
    }

    #[test]
    fn convergence_failure_is_reported() {
        // Force failure with an absurdly low iteration cap.
        let mut c = Circuit::new();
        let vdd = c.node();
        let gate = c.node();
        let drain = c.node();
        c.add_vsource(vdd, 0, 3.3).unwrap();
        c.add_vsource(gate, 0, 1.2).unwrap();
        c.add_resistor(vdd, drain, 100_000.0).unwrap();
        let dev = Mosfet::new(
            model_035um(MosType::Nmos),
            MosGeometry::new(100e-6, 0.35e-6, 1.0).unwrap(),
        );
        c.add_mosfet("M1", drain, gate, 0, 0, dev).unwrap();
        let err = solve_dc_with(
            &c,
            DcOptions {
                max_iterations: 1,
                ..DcOptions::default()
            },
        );
        assert!(matches!(err, Err(SpiceError::DcNoConvergence { .. })));
    }
}
