//! Netlist description and modified nodal analysis (MNA) stamping.
//!
//! Two circuit representations are provided:
//!
//! * [`Circuit`] — a nonlinear netlist (linear elements plus [`Mosfet`]
//!   devices) consumed by the Newton–Raphson DC operating-point solver in
//!   [`crate::dc`].
//! * [`LinearCircuit`] — a purely linear small-signal netlist (conductances,
//!   capacitances, VCCSs, independent sources) consumed by the AC solver in
//!   [`crate::ac`]. It can be built directly, or derived from a [`Circuit`]
//!   and a DC solution via [`Circuit::linearize`].
//!
//! Node 0 is always ground.

use crate::error::SpiceError;
use crate::mosfet::{MosType, Mosfet};

/// Identifier of a circuit node. Node `0` is ground.
pub type NodeId = usize;

/// A two-terminal resistor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resistor {
    /// First terminal.
    pub a: NodeId,
    /// Second terminal.
    pub b: NodeId,
    /// Resistance in ohms (strictly positive).
    pub ohms: f64,
}

/// A two-terminal capacitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacitor {
    /// First terminal.
    pub a: NodeId,
    /// Second terminal.
    pub b: NodeId,
    /// Capacitance in farads (non-negative).
    pub farads: f64,
}

/// A voltage-controlled current source: `i(out_p -> out_n) = gm * (v(in_p) - v(in_n))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vccs {
    /// Current exits this node.
    pub out_p: NodeId,
    /// Current enters this node.
    pub out_n: NodeId,
    /// Positive controlling node.
    pub in_p: NodeId,
    /// Negative controlling node.
    pub in_n: NodeId,
    /// Transconductance in siemens.
    pub gm: f64,
}

/// An independent DC current source pushing `amps` from `from` into `to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentSource {
    /// Node the current is pulled from.
    pub from: NodeId,
    /// Node the current is pushed into.
    pub to: NodeId,
    /// Source current in amperes.
    pub amps: f64,
}

/// An independent voltage source `v(p) - v(n) = volts` (adds an MNA branch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageSource {
    /// Positive terminal.
    pub p: NodeId,
    /// Negative terminal.
    pub n: NodeId,
    /// Source voltage in volts.
    pub volts: f64,
    /// Small-signal (AC) amplitude; usually 0 except for the stimulus source.
    pub ac: f64,
}

/// A MOSFET instance in a nonlinear netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct MosInstance {
    /// Instance name, used in diagnostics.
    pub name: String,
    /// Drain node.
    pub d: NodeId,
    /// Gate node.
    pub g: NodeId,
    /// Source node.
    pub s: NodeId,
    /// Bulk node.
    pub b: NodeId,
    /// The device (model card + geometry).
    pub device: Mosfet,
}

/// A nonlinear netlist for DC operating-point analysis.
///
/// # Examples
///
/// ```
/// use spicelite::netlist::Circuit;
///
/// let mut ckt = Circuit::new();
/// let vdd = ckt.node();
/// let out = ckt.node();
/// ckt.add_vsource(vdd, 0, 3.3)?;
/// ckt.add_resistor(vdd, out, 10_000.0)?;
/// ckt.add_resistor(out, 0, 10_000.0)?;
/// let sol = spicelite::dc::solve_dc(&ckt)?;
/// assert!((sol.voltage(out) - 1.65).abs() < 1e-6);
/// # Ok::<(), spicelite::error::SpiceError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    num_nodes: usize,
    pub(crate) resistors: Vec<Resistor>,
    pub(crate) capacitors: Vec<Capacitor>,
    pub(crate) vccs: Vec<Vccs>,
    pub(crate) isources: Vec<CurrentSource>,
    pub(crate) vsources: Vec<VoltageSource>,
    pub(crate) mosfets: Vec<MosInstance>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Self {
            num_nodes: 1,
            ..Default::default()
        }
    }

    /// Allocates and returns a fresh node id.
    pub fn node(&mut self) -> NodeId {
        let id = self.num_nodes;
        self.num_nodes += 1;
        id
    }

    /// Total number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of independent voltage sources (MNA branch count).
    pub fn num_vsources(&self) -> usize {
        self.vsources.len()
    }

    /// Number of MOSFET instances.
    pub fn num_mosfets(&self) -> usize {
        self.mosfets.len()
    }

    fn check_node(&self, n: NodeId) -> Result<(), SpiceError> {
        if n < self.num_nodes {
            Ok(())
        } else {
            Err(SpiceError::UnknownNode { node: n })
        }
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] for a non-positive resistance and
    /// [`SpiceError::UnknownNode`] for unknown nodes.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> Result<(), SpiceError> {
        self.check_node(a)?;
        self.check_node(b)?;
        // NaN must be rejected too, hence the negated comparison spelled out.
        if ohms.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(SpiceError::InvalidElement {
                reason: format!("resistance must be positive, got {ohms}"),
            });
        }
        self.resistors.push(Resistor { a, b, ohms });
        Ok(())
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] for a negative capacitance and
    /// [`SpiceError::UnknownNode`] for unknown nodes.
    pub fn add_capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> Result<(), SpiceError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if farads < 0.0 {
            return Err(SpiceError::InvalidElement {
                reason: format!("capacitance must be non-negative, got {farads}"),
            });
        }
        self.capacitors.push(Capacitor { a, b, farads });
        Ok(())
    }

    /// Adds a voltage-controlled current source.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown nodes.
    pub fn add_vccs(
        &mut self,
        out_p: NodeId,
        out_n: NodeId,
        in_p: NodeId,
        in_n: NodeId,
        gm: f64,
    ) -> Result<(), SpiceError> {
        for n in [out_p, out_n, in_p, in_n] {
            self.check_node(n)?;
        }
        self.vccs.push(Vccs {
            out_p,
            out_n,
            in_p,
            in_n,
            gm,
        });
        Ok(())
    }

    /// Adds an independent current source pushing `amps` from `from` into `to`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown nodes.
    pub fn add_isource(&mut self, from: NodeId, to: NodeId, amps: f64) -> Result<(), SpiceError> {
        self.check_node(from)?;
        self.check_node(to)?;
        self.isources.push(CurrentSource { from, to, amps });
        Ok(())
    }

    /// Adds an independent voltage source and returns its branch index.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown nodes.
    pub fn add_vsource(&mut self, p: NodeId, n: NodeId, volts: f64) -> Result<usize, SpiceError> {
        self.check_node(p)?;
        self.check_node(n)?;
        self.vsources.push(VoltageSource {
            p,
            n,
            volts,
            ac: 0.0,
        });
        Ok(self.vsources.len() - 1)
    }

    /// Adds an independent voltage source with an AC stimulus amplitude.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown nodes.
    pub fn add_vsource_ac(
        &mut self,
        p: NodeId,
        n: NodeId,
        volts: f64,
        ac: f64,
    ) -> Result<usize, SpiceError> {
        let idx = self.add_vsource(p, n, volts)?;
        self.vsources[idx].ac = ac;
        Ok(idx)
    }

    /// Adds a MOSFET instance.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown nodes.
    pub fn add_mosfet(
        &mut self,
        name: impl Into<String>,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        device: Mosfet,
    ) -> Result<(), SpiceError> {
        for n in [d, g, s, b] {
            self.check_node(n)?;
        }
        self.mosfets.push(MosInstance {
            name: name.into(),
            d,
            g,
            s,
            b,
            device,
        });
        Ok(())
    }

    /// MOSFET instances in insertion order.
    pub fn mosfets(&self) -> &[MosInstance] {
        &self.mosfets
    }

    /// Voltage sources in insertion order.
    pub fn vsources(&self) -> &[VoltageSource] {
        &self.vsources
    }

    /// Builds the small-signal [`LinearCircuit`] at the operating point
    /// described by `node_voltages` (one entry per node, ground included).
    ///
    /// Every MOSFET is replaced by its small-signal model: a gate-source
    /// controlled `gm` VCCS, a drain-source conductance `gds`, a bulk-source
    /// controlled `gmb` VCCS and the capacitances `cgs`, `cgd`, `cdb`, `csb`.
    /// DC voltage sources become AC shorts (their branches are kept so a
    /// stimulus can be applied through them).
    ///
    /// # Panics
    ///
    /// Panics if `node_voltages.len() != self.num_nodes()`.
    pub fn linearize(&self, node_voltages: &[f64]) -> LinearCircuit {
        assert_eq!(
            node_voltages.len(),
            self.num_nodes,
            "node voltage vector must cover every node"
        );
        let mut lin = LinearCircuit::with_nodes(self.num_nodes);
        for r in &self.resistors {
            lin.add_conductance(r.a, r.b, 1.0 / r.ohms);
        }
        for c in &self.capacitors {
            lin.add_capacitance(c.a, c.b, c.farads);
        }
        for g in &self.vccs {
            lin.add_vccs(g.out_p, g.out_n, g.in_p, g.in_n, g.gm);
        }
        for v in &self.vsources {
            lin.add_vsource(v.p, v.n, v.ac);
        }
        for m in &self.mosfets {
            let vd = node_voltages[m.d];
            let vg = node_voltages[m.g];
            let vs = node_voltages[m.s];
            let vb = node_voltages[m.b];
            let sign = m.device.model.mos_type.sign();
            let vgs = sign * (vg - vs);
            let vds = sign * (vd - vs);
            let vsb = sign * (vs - vb);
            let op = m.device.operating_point(vgs, vds.max(0.0), vsb.max(0.0));
            lin.add_mos_small_signal(
                m.d, m.g, m.s, m.b, op.gm, op.gds, op.gmb, op.cgs, op.cgd, op.cdb, op.csb,
            );
        }
        lin
    }
}

/// A purely linear small-signal netlist for AC analysis.
#[derive(Debug, Clone, Default)]
pub struct LinearCircuit {
    num_nodes: usize,
    pub(crate) conductances: Vec<(NodeId, NodeId, f64)>,
    pub(crate) capacitances: Vec<(NodeId, NodeId, f64)>,
    pub(crate) vccs: Vec<Vccs>,
    pub(crate) isources: Vec<CurrentSource>,
    pub(crate) vsources: Vec<VoltageSource>,
}

impl LinearCircuit {
    /// Creates an empty linear circuit containing only ground.
    pub fn new() -> Self {
        Self::with_nodes(1)
    }

    /// Creates a linear circuit with `num_nodes` pre-allocated nodes
    /// (including ground).
    pub fn with_nodes(num_nodes: usize) -> Self {
        Self {
            num_nodes: num_nodes.max(1),
            ..Default::default()
        }
    }

    /// Allocates and returns a fresh node id.
    pub fn node(&mut self) -> NodeId {
        let id = self.num_nodes;
        self.num_nodes += 1;
        id
    }

    /// Total number of nodes, including ground.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of voltage-source branches.
    pub fn num_vsources(&self) -> usize {
        self.vsources.len()
    }

    /// Adds a conductance (1/R) between `a` and `b`.
    pub fn add_conductance(&mut self, a: NodeId, b: NodeId, siemens: f64) {
        self.grow(a.max(b));
        self.conductances.push((a, b, siemens));
    }

    /// Adds a resistor between `a` and `b` (convenience wrapper).
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) {
        self.add_conductance(a, b, 1.0 / ohms);
    }

    /// Adds a capacitance between `a` and `b`.
    pub fn add_capacitance(&mut self, a: NodeId, b: NodeId, farads: f64) {
        self.grow(a.max(b));
        self.capacitances.push((a, b, farads));
    }

    /// Adds a voltage-controlled current source.
    pub fn add_vccs(&mut self, out_p: NodeId, out_n: NodeId, in_p: NodeId, in_n: NodeId, gm: f64) {
        self.grow(out_p.max(out_n).max(in_p).max(in_n));
        self.vccs.push(Vccs {
            out_p,
            out_n,
            in_p,
            in_n,
            gm,
        });
    }

    /// Adds an AC current source pushing current from `from` into `to`.
    pub fn add_isource(&mut self, from: NodeId, to: NodeId, amps: f64) {
        self.grow(from.max(to));
        self.isources.push(CurrentSource { from, to, amps });
    }

    /// Adds a voltage-source branch with the given AC amplitude and returns its index.
    pub fn add_vsource(&mut self, p: NodeId, n: NodeId, ac: f64) -> usize {
        self.grow(p.max(n));
        self.vsources.push(VoltageSource {
            p,
            n,
            volts: 0.0,
            ac,
        });
        self.vsources.len() - 1
    }

    /// Adds the full small-signal expansion of a MOSFET.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mos_small_signal(
        &mut self,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        gm: f64,
        gds: f64,
        gmb: f64,
        cgs: f64,
        cgd: f64,
        cdb: f64,
        csb: f64,
    ) {
        self.add_vccs(d, s, g, s, gm);
        self.add_conductance(d, s, gds);
        if gmb > 0.0 {
            self.add_vccs(d, s, b, s, gmb);
        }
        self.add_capacitance(g, s, cgs);
        self.add_capacitance(g, d, cgd);
        self.add_capacitance(d, b, cdb);
        self.add_capacitance(s, b, csb);
    }

    fn grow(&mut self, max_node: NodeId) {
        if max_node >= self.num_nodes {
            self.num_nodes = max_node + 1;
        }
    }
}

/// Returns `true` when the device polarity means the source terminal is the
/// higher-potential terminal (PMOS), used by netlist builders.
pub fn source_is_high(t: MosType) -> bool {
    matches!(t, MosType::Pmos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::{model_035um, MosGeometry, MosType, Mosfet};

    #[test]
    fn node_allocation_is_sequential() {
        let mut c = Circuit::new();
        assert_eq!(c.num_nodes(), 1);
        assert_eq!(c.node(), 1);
        assert_eq!(c.node(), 2);
        assert_eq!(c.num_nodes(), 3);
    }

    #[test]
    fn element_validation() {
        let mut c = Circuit::new();
        let n1 = c.node();
        assert!(c.add_resistor(n1, 0, 1000.0).is_ok());
        assert!(c.add_resistor(n1, 0, 0.0).is_err());
        assert!(c.add_resistor(n1, 99, 1000.0).is_err());
        assert!(c.add_capacitor(n1, 0, -1e-12).is_err());
        assert!(c.add_capacitor(n1, 0, 1e-12).is_ok());
        assert!(c.add_isource(n1, 0, 1e-3).is_ok());
        assert!(c.add_vsource(99, 0, 1.0).is_err());
        assert!(c.add_vccs(n1, 0, n1, 0, 1e-3).is_ok());
    }

    #[test]
    fn vsource_indices_increment() {
        let mut c = Circuit::new();
        let n1 = c.node();
        let n2 = c.node();
        assert_eq!(c.add_vsource(n1, 0, 1.0).unwrap(), 0);
        assert_eq!(c.add_vsource(n2, 0, 2.0).unwrap(), 1);
        assert_eq!(c.num_vsources(), 2);
    }

    #[test]
    fn mosfet_addition_and_lookup() {
        let mut c = Circuit::new();
        let d = c.node();
        let g = c.node();
        let dev = Mosfet::new(
            model_035um(MosType::Nmos),
            MosGeometry::new(10e-6, 0.35e-6, 1.0).unwrap(),
        );
        c.add_mosfet("M1", d, g, 0, 0, dev).unwrap();
        assert_eq!(c.num_mosfets(), 1);
        assert_eq!(c.mosfets()[0].name, "M1");
        assert!(c.add_mosfet("M2", 42, g, 0, 0, dev).is_err());
    }

    #[test]
    fn linear_circuit_grows_nodes_on_demand() {
        let mut lc = LinearCircuit::new();
        lc.add_conductance(3, 0, 1e-3);
        assert_eq!(lc.num_nodes(), 4);
        lc.add_capacitance(5, 2, 1e-12);
        assert_eq!(lc.num_nodes(), 6);
        let b = lc.add_vsource(1, 0, 1.0);
        assert_eq!(b, 0);
    }

    #[test]
    fn linearize_produces_expected_element_counts() {
        let mut c = Circuit::new();
        let vdd = c.node();
        let out = c.node();
        let gate = c.node();
        c.add_vsource(vdd, 0, 3.3).unwrap();
        c.add_vsource(gate, 0, 1.0).unwrap();
        c.add_resistor(vdd, out, 10e3).unwrap();
        let dev = Mosfet::new(
            model_035um(MosType::Nmos),
            MosGeometry::new(20e-6, 0.7e-6, 1.0).unwrap(),
        );
        c.add_mosfet("M1", out, gate, 0, 0, dev).unwrap();
        let v = vec![0.0, 3.3, 2.0, 1.0];
        let lin = c.linearize(&v);
        // resistor -> 1 conductance, mosfet -> gds conductance
        assert_eq!(lin.conductances.len(), 2);
        // mosfet: gm + gmb (gmb>0 since vsb=0 -> still >0? gmb = gm*gamma/(2 sqrt(phi)) > 0)
        assert!(!lin.vccs.is_empty());
        // mosfet caps: cgs, cgd, cdb, csb
        assert_eq!(lin.capacitances.len(), 4);
        // both DC sources become branches
        assert_eq!(lin.num_vsources(), 2);
    }

    #[test]
    fn source_is_high_only_for_pmos() {
        assert!(source_is_high(MosType::Pmos));
        assert!(!source_is_high(MosType::Nmos));
    }
}
