//! Dense linear algebra kernels used by the MNA solver and by other crates in
//! the workspace (Cholesky factorisation for correlated process sampling,
//! normal-equation solves for Levenberg–Marquardt training).
//!
//! Only the operations the workspace needs are implemented: dense storage,
//! matrix/vector products, LU factorisation with partial pivoting (real and
//! complex) and Cholesky factorisation for symmetric positive definite
//! matrices.

use crate::complex::Complex;
use crate::error::SpiceError;
use std::fmt;

/// A dense, row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use spicelite::linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve(&[3.0, 5.0]).expect("non-singular");
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix-matrix product `A * B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn mul_mat(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "dimension mismatch in mul_mat");
        let mut c = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    c[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        c
    }

    /// Adds `k * I` to the diagonal in place (used for LM damping).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, k: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += k;
        }
    }

    /// Solves `A x = b` by LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when a pivot underflows,
    /// [`SpiceError::DimensionMismatch`] if `b` has the wrong length or the
    /// matrix is not square.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        if !self.is_square() {
            return Err(SpiceError::DimensionMismatch {
                expected: self.rows,
                got: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(SpiceError::DimensionMismatch {
                expected: self.rows,
                got: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        lu_solve_in_place(n, &mut a, &mut x)?;
        Ok(x)
    }

    /// Cholesky factorisation `A = L L^T` of a symmetric positive-definite
    /// matrix, returning the lower-triangular factor `L`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NotPositiveDefinite`] when a diagonal entry of the
    /// factor would be non-positive, and [`SpiceError::DimensionMismatch`] when
    /// the matrix is not square.
    pub fn cholesky(&self) -> Result<Matrix, SpiceError> {
        if !self.is_square() {
            return Err(SpiceError::DimensionMismatch {
                expected: self.rows,
                got: self.cols,
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(SpiceError::NotPositiveDefinite { row: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.4e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A dense, row-major matrix of [`Complex`] entries, used by the AC solver.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows x cols` complex matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Solves `A x = b` by complex LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when the matrix is numerically
    /// singular and [`SpiceError::DimensionMismatch`] on shape errors.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, SpiceError> {
        if self.rows != self.cols {
            return Err(SpiceError::DimensionMismatch {
                expected: self.rows,
                got: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(SpiceError::DimensionMismatch {
                expected: self.rows,
                got: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<Complex> = b.to_vec();
        clu_solve_in_place(n, &mut a, &mut x)?;
        Ok(x)
    }
}

/// Solves `A x = b` in place by real LU factorisation with partial pivoting.
///
/// `a` is an `n x n` row-major matrix that is overwritten with its (permuted)
/// LU factors; `x` holds the right-hand side on entry and the solution on
/// return. This is the arithmetic core of [`Matrix::solve`], exposed so the
/// batched simulation path and the DC Newton loop can reuse preallocated
/// buffers while producing **bit-identical** results to the allocating API —
/// both call this exact function.
///
/// # Errors
///
/// Returns [`SpiceError::SingularMatrix`] when a pivot underflows.
///
/// # Panics
///
/// Panics if `a.len() < n * n` or `x.len() < n`.
pub fn lu_solve_in_place(n: usize, a: &mut [f64], x: &mut [f64]) -> Result<(), SpiceError> {
    // In-place LU with partial pivoting, forward/back substitution.
    for k in 0..n {
        // Pivot search.
        let mut p = k;
        let mut max = a[k * n + k].abs();
        for i in (k + 1)..n {
            let v = a[i * n + k].abs();
            if v > max {
                max = v;
                p = i;
            }
        }
        if max < 1e-300 {
            return Err(SpiceError::SingularMatrix { pivot: k });
        }
        if p != k {
            for j in 0..n {
                a.swap(k * n + j, p * n + j);
            }
            x.swap(k, p);
        }
        let pivot = a[k * n + k];
        for i in (k + 1)..n {
            let f = a[i * n + k] / pivot;
            if f == 0.0 {
                continue;
            }
            a[i * n + k] = 0.0;
            for j in (k + 1)..n {
                a[i * n + j] -= f * a[k * n + j];
            }
            x[i] -= f * x[k];
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in (i + 1)..n {
            acc -= a[i * n + j] * x[j];
        }
        x[i] = acc / a[i * n + i];
    }
    Ok(())
}

/// Complex counterpart of [`lu_solve_in_place`]: the arithmetic core of
/// [`CMatrix::solve`], shared with the batched AC sweep so both paths run the
/// identical floating-point operation sequence.
///
/// # Errors
///
/// Returns [`SpiceError::SingularMatrix`] when a pivot underflows.
///
/// # Panics
///
/// Panics if `a.len() < n * n` or `x.len() < n`.
pub fn clu_solve_in_place(
    n: usize,
    a: &mut [Complex],
    x: &mut [Complex],
) -> Result<(), SpiceError> {
    for k in 0..n {
        let mut p = k;
        let mut max = a[k * n + k].norm_sqr();
        for i in (k + 1)..n {
            let v = a[i * n + k].norm_sqr();
            if v > max {
                max = v;
                p = i;
            }
        }
        if max < 1e-300 {
            return Err(SpiceError::SingularMatrix { pivot: k });
        }
        if p != k {
            for j in 0..n {
                a.swap(k * n + j, p * n + j);
            }
            x.swap(k, p);
        }
        let pivot = a[k * n + k];
        for i in (k + 1)..n {
            let f = a[i * n + k] / pivot;
            if f == Complex::ZERO {
                continue;
            }
            a[i * n + k] = Complex::ZERO;
            for j in (k + 1)..n {
                let update = f * a[k * n + j];
                a[i * n + j] -= update;
            }
            let update = f * x[k];
            x[i] -= update;
        }
    }
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in (i + 1)..n {
            acc -= a[i * n + j] * x[j];
        }
        x[i] = acc / a[i * n + i];
    }
    Ok(())
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

/// Computes the dot product of two equally sized slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = a.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero pivot forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn non_square_solve_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SpiceError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rhs_length_mismatch_is_rejected() {
        let a = Matrix::identity(3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SpiceError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.mul_mat(&b);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
        let t = a.transpose();
        assert_eq!(t, Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let y = a.mul_vec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn cholesky_of_spd_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = a.cholesky().unwrap();
        // Reconstruct L * L^T and compare.
        let lt = l.transpose();
        let rec = l.mul_mat(&lt);
        for i in 0..2 {
            for j in 0..2 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            a.cholesky(),
            Err(SpiceError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn add_diagonal_damps() {
        let mut a = Matrix::identity(2);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(1, 1)], 1.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn complex_solve_roundtrip() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::new(1.0, 1.0);
        a[(0, 1)] = Complex::new(0.0, -1.0);
        a[(1, 0)] = Complex::new(2.0, 0.0);
        a[(1, 1)] = Complex::new(3.0, 1.0);
        let x_true = [Complex::new(1.0, -1.0), Complex::new(0.5, 2.0)];
        // b = A * x_true
        let b = [
            a[(0, 0)] * x_true[0] + a[(0, 1)] * x_true[1],
            a[(1, 0)] * x_true[0] + a[(1, 1)] * x_true[1],
        ];
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-12);
        }
    }

    #[test]
    fn complex_singular_detected() {
        let a = CMatrix::zeros(2, 2);
        assert!(matches!(
            a.solve(&[Complex::ONE, Complex::ONE]),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-14);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        let a = Matrix::identity(4);
        assert!((a.frobenius_norm() - 2.0).abs() < 1e-14);
    }
}
