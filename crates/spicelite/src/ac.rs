//! Small-signal AC analysis and amplifier figure-of-merit extraction.
//!
//! The AC engine solves the complex MNA system `(G + jωC) x = b` of a
//! [`LinearCircuit`] over a logarithmic frequency sweep and extracts the
//! figures of merit the MOHECO benchmark circuits are specified on: DC gain,
//! gain–bandwidth product (unity-gain frequency) and phase margin.

use crate::complex::Complex;
use crate::error::SpiceError;
use crate::linalg::CMatrix;
use crate::netlist::{LinearCircuit, NodeId};

/// Generates `points` logarithmically spaced frequencies from `f_start` to
/// `f_stop` (both inclusive, in hertz).
///
/// # Panics
///
/// Panics if the frequencies are not positive, `f_stop <= f_start`, or
/// `points < 2`.
pub fn log_space(f_start: f64, f_stop: f64, points: usize) -> Vec<f64> {
    assert!(f_start > 0.0 && f_stop > f_start, "invalid frequency range");
    assert!(points >= 2, "need at least two points");
    let l0 = f_start.log10();
    let l1 = f_stop.log10();
    (0..points)
        .map(|i| 10f64.powf(l0 + (l1 - l0) * i as f64 / (points - 1) as f64))
        .collect()
}

/// Solves the complex MNA system of `circuit` at angular frequency `omega`
/// and returns the node voltage phasors (ground included, index 0, always 0).
///
/// # Errors
///
/// Returns [`SpiceError::SingularMatrix`] if the system cannot be solved at
/// this frequency.
pub fn solve_at(circuit: &LinearCircuit, omega: f64) -> Result<Vec<Complex>, SpiceError> {
    let n = circuit.num_nodes();
    let m = circuit.num_vsources();
    let dim = (n - 1) + m;
    if dim == 0 {
        return Ok(vec![Complex::ZERO; n]);
    }
    let mut a = CMatrix::zeros(dim, dim);
    let mut rhs = vec![Complex::ZERO; dim];
    let idx = |node: NodeId| -> Option<usize> {
        if node == 0 {
            None
        } else {
            Some(node - 1)
        }
    };

    let stamp_adm = |a: &mut CMatrix, p: NodeId, q: NodeId, y: Complex| {
        if let Some(i) = idx(p) {
            a[(i, i)] += y;
        }
        if let Some(j) = idx(q) {
            a[(j, j)] += y;
        }
        if let (Some(i), Some(j)) = (idx(p), idx(q)) {
            a[(i, j)] -= y;
            a[(j, i)] -= y;
        }
    };

    for &(p, q, g) in &circuit.conductances {
        stamp_adm(&mut a, p, q, Complex::from_real(g));
    }
    for &(p, q, c) in &circuit.capacitances {
        stamp_adm(&mut a, p, q, Complex::from_imag(omega * c));
    }
    for g in &circuit.vccs {
        for (out_node, sign_out) in [(g.out_p, 1.0), (g.out_n, -1.0)] {
            if let Some(i) = idx(out_node) {
                if let Some(j) = idx(g.in_p) {
                    a[(i, j)] += Complex::from_real(sign_out * g.gm);
                }
                if let Some(j) = idx(g.in_n) {
                    a[(i, j)] -= Complex::from_real(sign_out * g.gm);
                }
            }
        }
    }
    for s in &circuit.isources {
        if let Some(i) = idx(s.from) {
            rhs[i] -= Complex::from_real(s.amps);
        }
        if let Some(i) = idx(s.to) {
            rhs[i] += Complex::from_real(s.amps);
        }
    }
    for (k, vs) in circuit.vsources.iter().enumerate() {
        let row = (n - 1) + k;
        if let Some(i) = idx(vs.p) {
            a[(i, row)] += Complex::ONE;
            a[(row, i)] += Complex::ONE;
        }
        if let Some(i) = idx(vs.n) {
            a[(i, row)] -= Complex::ONE;
            a[(row, i)] -= Complex::ONE;
        }
        rhs[row] = Complex::from_real(vs.ac);
    }

    let x = a.solve(&rhs)?;
    let mut v = vec![Complex::ZERO; n];
    v[1..n].copy_from_slice(&x[..n - 1]);
    Ok(v)
}

/// The complex response of one output node over a frequency sweep.
#[derive(Debug, Clone)]
pub struct FrequencyResponse {
    /// Sweep frequencies in hertz, ascending.
    pub freqs: Vec<f64>,
    /// Output phasor at each frequency.
    pub values: Vec<Complex>,
}

impl FrequencyResponse {
    /// Gain magnitude (linear) at sweep point `i`.
    pub fn magnitude(&self, i: usize) -> f64 {
        self.values[i].abs()
    }

    /// Gain in dB at sweep point `i`.
    pub fn gain_db(&self, i: usize) -> f64 {
        20.0 * self.magnitude(i).max(1e-30).log10()
    }

    /// Phase in degrees at sweep point `i`, unwrapped so that it decreases
    /// monotonically through poles (standard Bode convention starting near 180°
    /// for an inverting amplifier or 0° for a non-inverting one).
    pub fn phase_deg(&self, i: usize) -> f64 {
        self.unwrapped_phase()[i]
    }

    fn unwrapped_phase(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.values.len());
        let mut prev = self.values[0].arg_deg();
        out.push(prev);
        for v in &self.values[1..] {
            let mut p = v.arg_deg();
            while p - prev > 180.0 {
                p -= 360.0;
            }
            while p - prev < -180.0 {
                p += 360.0;
            }
            out.push(p);
            prev = p;
        }
        out
    }

    /// Low-frequency (DC) gain in dB — the gain at the first sweep point.
    pub fn dc_gain_db(&self) -> f64 {
        self.gain_db(0)
    }

    /// Unity-gain frequency in hertz, found by log-linear interpolation of the
    /// first 0 dB crossing. For a single-dominant-pole amplifier this equals
    /// the gain–bandwidth product.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::AcExtraction`] when the gain never crosses 0 dB
    /// inside the swept range.
    pub fn unity_gain_freq(&self) -> Result<f64, SpiceError> {
        let n = self.freqs.len();
        if self.gain_db(0) <= 0.0 {
            return Err(SpiceError::AcExtraction {
                reason: "gain is below 0 dB at the lowest swept frequency".into(),
            });
        }
        for i in 1..n {
            let g0 = self.gain_db(i - 1);
            let g1 = self.gain_db(i);
            if g0 > 0.0 && g1 <= 0.0 {
                // Interpolate in log-frequency.
                let t = g0 / (g0 - g1);
                let lf = self.freqs[i - 1].log10()
                    + t * (self.freqs[i].log10() - self.freqs[i - 1].log10());
                return Ok(10f64.powf(lf));
            }
        }
        Err(SpiceError::AcExtraction {
            reason: "no unity-gain crossing within the swept range".into(),
        })
    }

    /// Phase margin in degrees: `180° + phase(unity-gain frequency)`, where the
    /// phase is measured relative to the low-frequency phase (so the result is
    /// independent of whether the amplifier output is inverting).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::AcExtraction`] when no unity-gain crossing exists.
    pub fn phase_margin_deg(&self) -> Result<f64, SpiceError> {
        let fu = self.unity_gain_freq()?;
        let phases = self.unwrapped_phase();
        // Interpolate the unwrapped phase at fu.
        let mut phase_at_fu = phases[phases.len() - 1];
        for i in 1..self.freqs.len() {
            if self.freqs[i] >= fu {
                let t = (fu.log10() - self.freqs[i - 1].log10())
                    / (self.freqs[i].log10() - self.freqs[i - 1].log10());
                phase_at_fu = phases[i - 1] + t * (phases[i] - phases[i - 1]);
                break;
            }
        }
        let phase_shift = phase_at_fu - phases[0];
        Ok(180.0 + phase_shift)
    }

    /// Extracts all three amplifier figures of merit in a single pass.
    ///
    /// Bit-identical to calling [`Self::dc_gain_db`], [`Self::unity_gain_freq`]
    /// and [`Self::phase_margin_deg`] separately (the batched simulation path
    /// relies on this), but computes the gain curve and unwrapped phase once
    /// instead of once per method.
    pub fn foms(&self) -> AcFoms {
        let n = self.freqs.len();
        let gains: Vec<f64> = (0..n)
            .map(|i| 20.0 * self.magnitude(i).max(1e-30).log10())
            .collect();
        let unity_gain_freq = (|| {
            if gains[0] <= 0.0 {
                return Err(SpiceError::AcExtraction {
                    reason: "gain is below 0 dB at the lowest swept frequency".into(),
                });
            }
            for i in 1..n {
                let g0 = gains[i - 1];
                let g1 = gains[i];
                if g0 > 0.0 && g1 <= 0.0 {
                    let t = g0 / (g0 - g1);
                    let lf = self.freqs[i - 1].log10()
                        + t * (self.freqs[i].log10() - self.freqs[i - 1].log10());
                    return Ok(10f64.powf(lf));
                }
            }
            Err(SpiceError::AcExtraction {
                reason: "no unity-gain crossing within the swept range".into(),
            })
        })();
        let phase_margin_deg = match &unity_gain_freq {
            Err(e) => Err(e.clone()),
            Ok(fu) => {
                let fu = *fu;
                let phases = self.unwrapped_phase();
                let mut phase_at_fu = phases[phases.len() - 1];
                for i in 1..self.freqs.len() {
                    if self.freqs[i] >= fu {
                        let t = (fu.log10() - self.freqs[i - 1].log10())
                            / (self.freqs[i].log10() - self.freqs[i - 1].log10());
                        phase_at_fu = phases[i - 1] + t * (phases[i] - phases[i - 1]);
                        break;
                    }
                }
                let phase_shift = phase_at_fu - phases[0];
                Ok(180.0 + phase_shift)
            }
        };
        AcFoms {
            dc_gain_db: gains[0],
            unity_gain_freq,
            phase_margin_deg,
        }
    }
}

/// The amplifier figures of merit of one frequency response, extracted in a
/// single pass by [`FrequencyResponse::foms`].
#[derive(Debug, Clone)]
pub struct AcFoms {
    /// Gain at the first sweep point, in dB.
    pub dc_gain_db: f64,
    /// First 0 dB crossing (hertz), or the same error
    /// [`FrequencyResponse::unity_gain_freq`] returns.
    pub unity_gain_freq: Result<f64, SpiceError>,
    /// Phase margin in degrees, or the same error
    /// [`FrequencyResponse::phase_margin_deg`] returns.
    pub phase_margin_deg: Result<f64, SpiceError>,
}

/// Sweeps `circuit` over `freqs` and records the phasor at `output`.
///
/// The stimulus must already be present in the circuit (an AC voltage source
/// or current source).
///
/// # Errors
///
/// Propagates [`SpiceError::SingularMatrix`] from any sweep point.
pub fn sweep(
    circuit: &LinearCircuit,
    output: NodeId,
    freqs: &[f64],
) -> Result<FrequencyResponse, SpiceError> {
    let mut values = Vec::with_capacity(freqs.len());
    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let v = solve_at(circuit, omega)?;
        values.push(v[output]);
    }
    Ok(FrequencyResponse {
        freqs: freqs.to_vec(),
        values,
    })
}

/// Differential sweep: records `v(out_p) - v(out_n)` over the sweep.
///
/// # Errors
///
/// Propagates [`SpiceError::SingularMatrix`] from any sweep point.
pub fn sweep_differential(
    circuit: &LinearCircuit,
    out_p: NodeId,
    out_n: NodeId,
    freqs: &[f64],
) -> Result<FrequencyResponse, SpiceError> {
    let mut values = Vec::with_capacity(freqs.len());
    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let v = solve_at(circuit, omega)?;
        values.push(v[out_p] - v[out_n]);
    }
    Ok(FrequencyResponse {
        freqs: freqs.to_vec(),
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::LinearCircuit;

    /// RC low-pass driven by a unit AC source through the resistor.
    fn rc_lowpass(r: f64, c: f64) -> (LinearCircuit, NodeId) {
        let mut ckt = LinearCircuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.add_vsource(vin, 0, 1.0);
        ckt.add_resistor(vin, vout, r);
        ckt.add_capacitance(vout, 0, c);
        (ckt, vout)
    }

    #[test]
    fn log_space_endpoints() {
        let f = log_space(1.0, 1e6, 7);
        assert_eq!(f.len(), 7);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[6] - 1e6).abs() < 1e-6);
        assert!((f[3] - 1e3).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn log_space_rejects_bad_range() {
        let _ = log_space(10.0, 1.0, 5);
    }

    #[test]
    fn rc_lowpass_corner_frequency() {
        let r = 1_000.0;
        let c = 1e-6; // fc = 159.15 Hz
        let (ckt, out) = rc_lowpass(r, c);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let freqs = vec![fc / 1000.0, fc, fc * 1000.0];
        let resp = sweep(&ckt, out, &freqs).unwrap();
        // At DC the gain is ~1 (0 dB); at fc it is -3 dB; far above it rolls off.
        assert!(resp.gain_db(0).abs() < 0.01);
        assert!((resp.gain_db(1) + 3.0103).abs() < 0.05);
        assert!(resp.gain_db(2) < -55.0);
    }

    #[test]
    fn rc_lowpass_phase_at_corner_is_minus_45() {
        let r = 1_000.0;
        let c = 1e-6;
        let (ckt, out) = rc_lowpass(r, c);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let resp = sweep(&ckt, out, &[fc / 1e3, fc]).unwrap();
        let phase_shift = resp.phase_deg(1) - resp.phase_deg(0);
        assert!((phase_shift + 45.0).abs() < 0.5, "shift {phase_shift}");
    }

    #[test]
    fn single_pole_amplifier_foms() {
        // gm stage into R||C load: A0 = gm*R, GBW = gm/(2 pi C), PM ~ 90 deg.
        let gm = 1e-3;
        let r = 1e6;
        let c = 1e-12;
        let mut ckt = LinearCircuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.add_vsource(vin, 0, 1.0);
        ckt.add_vccs(vout, 0, vin, 0, gm);
        ckt.add_resistor(vout, 0, r);
        ckt.add_capacitance(vout, 0, c);
        let freqs = log_space(1.0, 1e12, 400);
        let resp = sweep(&ckt, vout, &freqs).unwrap();
        let a0_expected = 20.0 * (gm * r).log10();
        assert!((resp.dc_gain_db() - a0_expected).abs() < 0.1);
        let gbw_expected = gm / (2.0 * std::f64::consts::PI * c);
        let gbw = resp.unity_gain_freq().unwrap();
        assert!(
            (gbw - gbw_expected).abs() / gbw_expected < 0.02,
            "gbw {gbw} vs {gbw_expected}"
        );
        let pm = resp.phase_margin_deg().unwrap();
        assert!((pm - 90.0).abs() < 2.0, "pm {pm}");
    }

    #[test]
    fn two_pole_amplifier_phase_margin_drops() {
        // Two cascaded gm stages -> two poles; PM well below 90 degrees when
        // the poles are close together.
        let mut ckt = LinearCircuit::new();
        let vin = ckt.node();
        let mid = ckt.node();
        let vout = ckt.node();
        ckt.add_vsource(vin, 0, 1.0);
        ckt.add_vccs(mid, 0, vin, 0, 1e-3);
        ckt.add_resistor(mid, 0, 100e3);
        ckt.add_capacitance(mid, 0, 1e-12);
        ckt.add_vccs(vout, 0, mid, 0, 1e-3);
        ckt.add_resistor(vout, 0, 100e3);
        ckt.add_capacitance(vout, 0, 1e-12);
        let freqs = log_space(1.0, 1e12, 500);
        let resp = sweep(&ckt, vout, &freqs).unwrap();
        let pm = resp.phase_margin_deg().unwrap();
        assert!(
            pm < 45.0,
            "two identical poles should give low PM, got {pm}"
        );
        assert!(pm > -30.0);
    }

    #[test]
    fn unity_gain_extraction_fails_for_passive_network() {
        let (ckt, out) = rc_lowpass(1_000.0, 1e-9);
        let freqs = log_space(1.0, 1e6, 50);
        let resp = sweep(&ckt, out, &freqs).unwrap();
        assert!(resp.unity_gain_freq().is_err());
        assert!(resp.phase_margin_deg().is_err());
    }

    #[test]
    fn differential_sweep_doubles_single_ended() {
        // Symmetric circuit: +gm into out_p, -gm into out_n.
        let mut ckt = LinearCircuit::new();
        let vin = ckt.node();
        let out_p = ckt.node();
        let out_n = ckt.node();
        ckt.add_vsource(vin, 0, 1.0);
        ckt.add_vccs(out_p, 0, vin, 0, 1e-3);
        ckt.add_resistor(out_p, 0, 10e3);
        ckt.add_vccs(0, out_n, vin, 0, 1e-3);
        ckt.add_resistor(out_n, 0, 10e3);
        let freqs = vec![100.0];
        let single = sweep(&ckt, out_p, &freqs).unwrap();
        let diff = sweep_differential(&ckt, out_p, out_n, &freqs).unwrap();
        assert!((diff.magnitude(0) / single.magnitude(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn foms_bit_identical_to_individual_methods() {
        // Cover all three shapes: clean crossing, no crossing (gain < 0 dB at
        // DC), and no crossing inside the swept range.
        let mut responses = Vec::new();
        {
            let mut ckt = LinearCircuit::new();
            let vin = ckt.node();
            let vout = ckt.node();
            ckt.add_vsource(vin, 0, 1.0);
            ckt.add_vccs(vout, 0, vin, 0, 1e-3);
            ckt.add_resistor(vout, 0, 1e6);
            ckt.add_capacitance(vout, 0, 1e-12);
            responses.push(sweep(&ckt, vout, &log_space(1.0, 1e12, 173)).unwrap());
            responses.push(sweep(&ckt, vout, &log_space(1.0, 1e3, 40)).unwrap());
        }
        {
            let (ckt, out) = rc_lowpass(1_000.0, 1e-9);
            responses.push(sweep(&ckt, out, &log_space(1.0, 1e6, 50)).unwrap());
        }
        for resp in &responses {
            let foms = resp.foms();
            assert_eq!(foms.dc_gain_db.to_bits(), resp.dc_gain_db().to_bits());
            match (&foms.unity_gain_freq, resp.unity_gain_freq()) {
                (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (Err(a), Err(b)) => assert_eq!(*a, b),
                (a, b) => panic!("foms {a:?} vs method {b:?}"),
            }
            match (&foms.phase_margin_deg, resp.phase_margin_deg()) {
                (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (Err(a), Err(b)) => assert_eq!(*a, b),
                (a, b) => panic!("foms {a:?} vs method {b:?}"),
            }
        }
    }

    #[test]
    fn empty_circuit_solves_to_zero() {
        let ckt = LinearCircuit::new();
        let v = solve_at(&ckt, 1.0).unwrap();
        assert_eq!(v.len(), 1);
    }
}
