//! Seed-driven property suite for the dense linear-algebra kernels.
//!
//! The LU and Cholesky routines in `linalg` are the arithmetic floor the
//! whole workspace stands on — the DC Newton loop, the AC sweep, the batched
//! simulation path and the process sampler all funnel through them. The unit
//! tests in the module pin a handful of hand-computed systems; this suite
//! drives the kernels over families of random systems and asserts the
//! *properties* that must hold for every member: small residuals on
//! well-conditioned systems, exact reconstruction for Cholesky factors,
//! detected singularities with the correct pivot, and round-trips through the
//! complex solver.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spicelite::linalg::lu_solve_in_place;
use spicelite::{CMatrix, Complex, Matrix, SpiceError};

/// Random square matrix with entries in `[-2, 2)` plus `2n` on the diagonal,
/// which makes it strictly diagonally dominant and therefore comfortably
/// non-singular.
fn random_dominant(rng: &mut StdRng, n: usize) -> Matrix {
    let mut m = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen_range(-2.0..2.0)).collect());
    m.add_diagonal(2.0 * n as f64);
    m
}

fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    a.mul_vec(x)
        .iter()
        .zip(b)
        .map(|(ax, bi)| (ax - bi) * (ax - bi))
        .sum::<f64>()
        .sqrt()
}

#[test]
fn random_dominant_solves_have_small_residuals() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..13);
        let a = random_dominant(&mut rng, n);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let x = a.solve(&b).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let res = residual_norm(&a, &x, &b);
        assert!(
            res <= 1e-10 * (1.0 + bnorm),
            "seed {seed} n {n}: residual {res:e}"
        );
    }
}

#[test]
fn solve_is_bit_identical_to_the_in_place_kernel() {
    // `Matrix::solve` is documented to be a thin allocator around
    // `lu_solve_in_place`; the batched AC path relies on the two entry points
    // agreeing bit-for-bit.
    for seed in 100..120u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..10);
        let a = random_dominant(&mut rng, n);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let via_matrix = a.solve(&b).unwrap();
        let mut flat = a.as_slice().to_vec();
        let mut x = b.clone();
        lu_solve_in_place(n, &mut flat, &mut x).unwrap();
        for (i, (m, k)) in via_matrix.iter().zip(&x).enumerate() {
            assert_eq!(m.to_bits(), k.to_bits(), "seed {seed} x[{i}]: {m} vs {k}");
        }
    }
}

#[test]
fn cholesky_factors_reconstruct_random_spd_matrices() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(0xC0DE + seed);
        let n = rng.gen_range(1..10);
        // G^T G is positive semi-definite; the diagonal shift makes it SPD.
        let g = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let mut a = g.transpose().mul_mat(&g);
        a.add_diagonal(0.5);
        let l = a
            .cholesky()
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        // L must be lower triangular with positive diagonal.
        for i in 0..n {
            assert!(l[(i, i)] > 0.0, "seed {seed}: L[{i},{i}] not positive");
            for j in (i + 1)..n {
                assert_eq!(l[(i, j)], 0.0, "seed {seed}: L[{i},{j}] above diagonal");
            }
        }
        let rec = l.mul_mat(&l.transpose());
        let mut err = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                err = err.max((rec[(i, j)] - a[(i, j)]).abs());
            }
        }
        assert!(
            err <= 1e-10 * a.frobenius_norm(),
            "seed {seed} n {n}: reconstruction error {err:e}"
        );
    }
}

#[test]
fn zeroed_columns_report_the_failing_pivot() {
    // A zero column stays zero under row elimination, so the factorisation
    // must fail exactly when it reaches that column — the `pivot` field is
    // what the AC sweep surfaces to diagnose which MNA row went singular.
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(0xBAD + seed);
        let n = rng.gen_range(2..9);
        let dead = rng.gen_range(0..n);
        let mut a = random_dominant(&mut rng, n);
        for i in 0..n {
            a[(i, dead)] = 0.0;
        }
        let b = vec![1.0; n];
        match a.solve(&b) {
            Err(SpiceError::SingularMatrix { pivot }) => assert_eq!(
                pivot, dead,
                "seed {seed} n {n}: expected failure at column {dead}"
            ),
            other => panic!("seed {seed}: expected SingularMatrix, got {other:?}"),
        }
    }
}

#[test]
fn duplicated_rows_are_singular() {
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(0xD0 + seed);
        let n = rng.gen_range(2..9);
        let mut a = random_dominant(&mut rng, n);
        let src = rng.gen_range(0..n);
        let dst = (src + 1) % n;
        for j in 0..n {
            let v = a[(src, j)];
            a[(dst, j)] = v;
        }
        assert!(
            matches!(
                a.solve(&vec![1.0; n]),
                Err(SpiceError::SingularMatrix { .. })
            ),
            "seed {seed}: duplicated rows must be singular"
        );
    }
}

#[test]
fn complex_solves_round_trip_random_systems() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(0xCAFE + seed);
        let n = rng.gen_range(1..9);
        let mut a = CMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
            }
            // Diagonal dominance keeps the system well conditioned.
            a[(i, i)] += Complex::new(2.0 * n as f64, 0.0);
        }
        let x_true: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)))
            .collect();
        let mut b = vec![Complex::ZERO; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[(i, j)] * x_true[j];
            }
        }
        let x = a.solve(&b).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        for (i, (got, want)) in x.iter().zip(&x_true).enumerate() {
            assert!(
                (*got - *want).abs() < 1e-10,
                "seed {seed} x[{i}]: {got:?} vs {want:?}"
            );
        }
    }
}

#[test]
fn complex_zero_column_reports_the_failing_pivot() {
    let n = 5;
    let dead = 2;
    let mut a = CMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = Complex::new((i + 2 * j + 1) as f64, (i as f64) - (j as f64));
        }
        a[(i, i)] += Complex::new(10.0, 0.0);
    }
    for i in 0..n {
        a[(i, dead)] = Complex::ZERO;
    }
    match a.solve(&vec![Complex::ONE; n]) {
        Err(SpiceError::SingularMatrix { pivot }) => assert_eq!(pivot, dead),
        other => panic!("expected SingularMatrix, got {other:?}"),
    }
}

/// Satellite regression anchor: no numeric divergence between the scalar and
/// batched paths was found while building the batch kernel, so instead this
/// pins the solution of a pathological, nearly singular system to exact bit
/// patterns. Any future change to the elimination order, pivot strategy or
/// accumulation style of `lu_solve_in_place` shows up here first — which is
/// the alarm the bit-identity contract of the batched path needs.
#[test]
fn near_singular_solve_is_digest_pinned() {
    // Scaled 4x4 Hilbert matrix with one row nudged by 1e-12: condition
    // number ~1e4 * 1e12, right at the edge of double precision.
    let mut a = Matrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            a[(i, j)] = 1.0 / ((i + j + 1) as f64);
        }
    }
    a[(3, 3)] += 1e-12;
    let b = [1.0, 0.0, 0.0, 1.0];
    let x = a.solve(&b).expect("perturbed Hilbert system must solve");
    let got: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
    let expected = [
        0xc05efffffe701f58u64, // -123.999999627585
        0x40985ffffed4178au64, //  1559.9999955310218
        0xc0aeeffffe891d80u64, // -3959.9999888275634
        0x40a4c7ffff0613b5u64, //  2659.9999925517136
    ];
    assert_eq!(
        got, expected,
        "pinned near-singular solution drifted: {x:?}"
    );
}
