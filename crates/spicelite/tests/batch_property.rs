//! Generative differential suite for the batched AC path.
//!
//! [`FactorizedCircuit::sweep`] promises to be bit-for-bit identical to
//! [`spicelite::ac::sweep`] on any structurally matching circuit — including
//! which frequency fails first and with which pivot on singular systems. The
//! named-circuit tests inside `batch.rs` cover the benchmark amplifier
//! topologies; this suite generates random linear circuits from seeds so the
//! contract is exercised over arbitrary stamp patterns, element mixes, lane
//! tails (sweep lengths that are not a multiple of the SIMD width) and
//! factorization reuse across value-perturbed clones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spicelite::ac::{log_space, sweep};
use spicelite::{CMatrix, Complex, FactorizedCircuit, LinearCircuit, NodeId, SpiceError};

/// The elements of a generated circuit, recorded in insertion order so the
/// oracle test can re-stamp the MNA system without access to the netlist's
/// internals.
#[derive(Default)]
struct Spec {
    num_nodes: usize,
    conductances: Vec<(NodeId, NodeId, f64)>,
    capacitances: Vec<(NodeId, NodeId, f64)>,
    vccs: Vec<(NodeId, NodeId, NodeId, NodeId, f64)>,
    isources: Vec<(NodeId, NodeId, f64)>,
    vsources: Vec<(NodeId, NodeId, f64)>,
}

/// Builds a random linear circuit whose *topology* is decided by
/// `struct_seed` and whose element *values* are decided by `value_seed`.
/// Circuits sharing a `struct_seed` structurally match each other, so one
/// [`FactorizedCircuit`] plan serves all of them.
fn random_circuit(struct_seed: u64, value_seed: u64) -> (LinearCircuit, NodeId, Spec) {
    let mut st = StdRng::seed_from_u64(struct_seed);
    let mut vl = StdRng::seed_from_u64(value_seed);
    let mut ckt = LinearCircuit::new();
    let mut spec = Spec::default();
    let n_nodes = st.gen_range(2..6);
    let nodes: Vec<NodeId> = (0..n_nodes).map(|_| ckt.node()).collect();
    spec.num_nodes = ckt.num_nodes();
    // Unit-ish AC stimulus into the first node.
    let ac = vl.gen_range(0.5..2.0);
    ckt.add_vsource(nodes[0], 0, ac);
    spec.vsources.push((nodes[0], 0, ac));
    // Ground every node so the nominal system is non-singular.
    for &nd in &nodes {
        let g = vl.gen_range(1e-6..1e-2);
        ckt.add_conductance(nd, 0, g);
        spec.conductances.push((nd, 0, g));
    }
    // A random mix of extra elements, ground included as a terminal.
    let n_extra = st.gen_range(4..12);
    for _ in 0..n_extra {
        let pick = |s: &mut StdRng| -> NodeId {
            let k = s.gen_range(0..=n_nodes);
            if k == n_nodes {
                0
            } else {
                nodes[k]
            }
        };
        let a = pick(&mut st);
        let b = pick(&mut st);
        match st.gen_range(0..4u32) {
            0 => {
                let g = vl.gen_range(1e-6..1e-1);
                ckt.add_conductance(a, b, g);
                spec.conductances.push((a, b, g));
            }
            1 => {
                let c = vl.gen_range(1e-15..1e-9);
                ckt.add_capacitance(a, b, c);
                spec.capacitances.push((a, b, c));
            }
            2 => {
                let (ip, in_) = (pick(&mut st), pick(&mut st));
                let gm = vl.gen_range(-1e-2..1e-2);
                ckt.add_vccs(a, b, ip, in_, gm);
                spec.vccs.push((a, b, ip, in_, gm));
            }
            _ => {
                let i = vl.gen_range(-1e-3..1e-3);
                ckt.add_isource(a, b, i);
                spec.isources.push((a, b, i));
            }
        }
    }
    let out = nodes[st.gen_range(0..n_nodes)];
    (ckt, out, spec)
}

fn assert_sweeps_bit_equal(ckt: &LinearCircuit, out: NodeId, freqs: &[f64], ctx: &str) {
    let scalar = sweep(ckt, out, freqs);
    let mut fac = FactorizedCircuit::new(ckt);
    assert!(fac.matches(ckt), "{ctx}: plan must match its own template");
    let batched = fac.sweep(ckt, out, freqs);
    match (&scalar, &batched) {
        (Ok(s), Ok(b)) => {
            assert_eq!(s.values.len(), b.values.len(), "{ctx}: length");
            for (i, (vs, vb)) in s.values.iter().zip(&b.values).enumerate() {
                assert_eq!(
                    vs.re.to_bits(),
                    vb.re.to_bits(),
                    "{ctx}: re diverged at point {i}: {vs:?} vs {vb:?}"
                );
                assert_eq!(
                    vs.im.to_bits(),
                    vb.im.to_bits(),
                    "{ctx}: im diverged at point {i}: {vs:?} vs {vb:?}"
                );
            }
        }
        (Err(es), Err(eb)) => assert_eq!(es, eb, "{ctx}: errors must match exactly"),
        (s, b) => panic!("{ctx}: scalar {s:?} vs batched {b:?}"),
    }
}

#[test]
fn random_circuits_sweep_bit_identically() {
    // Sweep lengths straddle the lane width (8): shorter than one chunk,
    // exactly one chunk, ragged tails and multi-chunk grids.
    let grids = [2usize, 5, 8, 9, 23, 50];
    for seed in 0..30u64 {
        let (ckt, out, _) = random_circuit(seed, 1000 + seed);
        let points = grids[seed as usize % grids.len()];
        let freqs = log_space(1e2, 1e9, points);
        assert_sweeps_bit_equal(&ckt, out, &freqs, &format!("seed {seed} ({points} pts)"));
    }
}

#[test]
fn one_factorization_serves_value_perturbed_clones() {
    // The engine's usage pattern: one plan per design, re-loaded with the
    // element values of every process sample.
    for struct_seed in 0..8u64 {
        let (template, out, _) = random_circuit(struct_seed, 0);
        let mut fac = FactorizedCircuit::new(&template);
        let freqs = log_space(1e3, 1e8, 13);
        for value_seed in 1..6u64 {
            let (variant, _, _) = random_circuit(struct_seed, 7000 + value_seed);
            assert!(
                fac.matches(&variant),
                "struct {struct_seed}: variant must structurally match"
            );
            let scalar = sweep(&variant, out, &freqs).unwrap();
            let batched = fac.sweep(&variant, out, &freqs).unwrap();
            for (i, (vs, vb)) in scalar.values.iter().zip(&batched.values).enumerate() {
                assert_eq!(
                    vs.re.to_bits(),
                    vb.re.to_bits(),
                    "s{struct_seed} v{value_seed} pt{i}"
                );
                assert_eq!(
                    vs.im.to_bits(),
                    vb.im.to_bits(),
                    "s{struct_seed} v{value_seed} pt{i}"
                );
            }
        }
    }
}

#[test]
fn structural_mismatch_is_detected() {
    let (ckt, _, _) = random_circuit(3, 3);
    let fac = FactorizedCircuit::new(&ckt);
    let mut other = ckt.clone();
    other.add_conductance(0, 0, 1.0); // one extra element changes the signature
    assert!(!fac.matches(&other));
}

#[test]
fn singular_circuits_fail_with_matching_errors() {
    // A floating node pair (resistor between two nodes, no path to ground)
    // makes the MNA matrix singular at every frequency; both paths must
    // return the exact same pivot.
    let mut ckt = LinearCircuit::new();
    let vin = ckt.node();
    let a = ckt.node();
    let b = ckt.node();
    ckt.add_vsource(vin, 0, 1.0);
    ckt.add_conductance(vin, 0, 1e-3);
    ckt.add_conductance(a, b, 1e-3); // floating island
    let freqs = log_space(1e2, 1e6, 11);
    let scalar = sweep(&ckt, a, &freqs);
    let batched = FactorizedCircuit::new(&ckt).sweep(&ckt, a, &freqs);
    assert!(scalar.is_err(), "floating island must be singular");
    match (scalar, batched) {
        (
            Err(SpiceError::SingularMatrix { pivot: ps }),
            Err(SpiceError::SingularMatrix { pivot: pb }),
        ) => {
            assert_eq!(ps, pb, "singular pivot must match");
        }
        (s, b) => panic!("scalar {s:?} vs batched {b:?}"),
    }
}

#[test]
fn batched_sweep_is_pinned_to_the_scalar_complex_solver() {
    // Independent oracle: assemble the complex MNA system exactly the way
    // `ac::solve_at` documents it — from the recorded element list, in
    // insertion order — and solve with `CMatrix::solve`, the scalar LU the
    // committed yield baselines were produced with. The batched sweep must
    // reproduce those solutions bit-for-bit.
    for seed in 40..52u64 {
        let (ckt, out, spec) = random_circuit(seed, 4000 + seed);
        let freqs = log_space(1e3, 1e9, 9);
        let n = spec.num_nodes;
        let m = spec.vsources.len();
        let dim = (n - 1) + m;
        let idx = |node: NodeId| -> Option<usize> {
            if node == 0 {
                None
            } else {
                Some(node - 1)
            }
        };

        let batched = FactorizedCircuit::new(&ckt)
            .sweep(&ckt, out, &freqs)
            .unwrap();

        for (fi, &f) in freqs.iter().enumerate() {
            let omega = 2.0 * std::f64::consts::PI * f;
            let mut a = CMatrix::zeros(dim, dim);
            let mut rhs = vec![Complex::ZERO; dim];
            let stamp = |a: &mut CMatrix, p: NodeId, q: NodeId, y: Complex| {
                if let Some(i) = idx(p) {
                    a[(i, i)] += y;
                }
                if let Some(j) = idx(q) {
                    a[(j, j)] += y;
                }
                if let (Some(i), Some(j)) = (idx(p), idx(q)) {
                    a[(i, j)] -= y;
                    a[(j, i)] -= y;
                }
            };
            for &(p, q, g) in &spec.conductances {
                stamp(&mut a, p, q, Complex::from_real(g));
            }
            for &(p, q, c) in &spec.capacitances {
                stamp(&mut a, p, q, Complex::from_imag(omega * c));
            }
            for &(op, on, ip, in_, gm) in &spec.vccs {
                for (out_node, sign_out) in [(op, 1.0), (on, -1.0)] {
                    if let Some(i) = idx(out_node) {
                        if let Some(j) = idx(ip) {
                            a[(i, j)] += Complex::from_real(sign_out * gm);
                        }
                        if let Some(j) = idx(in_) {
                            a[(i, j)] -= Complex::from_real(sign_out * gm);
                        }
                    }
                }
            }
            for &(from, to, amps) in &spec.isources {
                if let Some(i) = idx(from) {
                    rhs[i] -= Complex::from_real(amps);
                }
                if let Some(i) = idx(to) {
                    rhs[i] += Complex::from_real(amps);
                }
            }
            for (k, &(p, nn, ac)) in spec.vsources.iter().enumerate() {
                let row = (n - 1) + k;
                if let Some(i) = idx(p) {
                    a[(i, row)] += Complex::ONE;
                    a[(row, i)] += Complex::ONE;
                }
                if let Some(i) = idx(nn) {
                    a[(i, row)] -= Complex::ONE;
                    a[(row, i)] -= Complex::ONE;
                }
                rhs[row] = Complex::from_real(ac);
            }
            let x = a.solve(&rhs).unwrap();
            let want = if out == 0 { Complex::ZERO } else { x[out - 1] };
            let got = batched.values[fi];
            assert_eq!(
                got.re.to_bits(),
                want.re.to_bits(),
                "seed {seed} f[{fi}]: re {got:?} vs oracle {want:?}"
            );
            assert_eq!(
                got.im.to_bits(),
                want.im.to_bits(),
                "seed {seed} f[{fi}]: im {got:?} vs oracle {want:?}"
            );
        }
    }
}
