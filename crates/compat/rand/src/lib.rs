//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in an environment without crates.io access, so the
//! real `rand` cannot be fetched. This shim provides exactly the surface the
//! MOHECO reproduction uses — [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (`seed_from_u64`, `from_seed`) and [`rngs::StdRng`] — with
//! the same semantics (half-open/inclusive ranges, `[0, 1)` floats, at least
//! one mutated crossover component, …).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 (the reference seeding procedure recommended by its authors).
//! It is *not* bit-compatible with upstream `rand`'s ChaCha-based `StdRng`,
//! but every consumer in this workspace only relies on seeded determinism,
//! not on a particular stream, so the swap is behaviour-preserving at the
//! level the tests and experiments observe.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Distributions and the helpers [`Rng::gen`] relies on.
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from the distribution.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform over the natural domain of the
    /// type (`[0, 1)` for floats, all values for integers, fair coin for
    /// `bool`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<i64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types over which `gen_range` can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping; the modulo bias of a
                // 64-bit draw over these small spans is < 2^-40 and irrelevant
                // for the stochastic algorithms in this workspace.
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }

            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = unit_f64(rng.next_u64());
                let v = lo as f64 + (hi as f64 - lo as f64) * u;
                // Guard against rounding landing exactly on `hi`.
                if v >= hi as f64 { <$t>::from_f64_lossy(lo as f64) } else { <$t>::from_f64_lossy(v) }
            }

            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = unit_f64(rng.next_u64());
                <$t>::from_f64_lossy(lo as f64 + (hi as f64 - lo as f64) * u)
            }
        }
    )*};
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lossy conversion helper so the float macro can cover `f32` and `f64`.
trait FromF64Lossy {
    fn from_f64_lossy(v: f64) -> Self;
}

impl FromF64Lossy for f64 {
    fn from_f64_lossy(v: f64) -> Self {
        v
    }
}

impl FromF64Lossy for f32 {
    fn from_f64_lossy(v: f64) -> Self {
        v as f32
    }
}

impl_sample_uniform_float!(f64, f32);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing random-number-generation methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Draws a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }

    /// Draws a value from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a 64-bit seed, expanding it with SplitMix64
    /// exactly like upstream `rand`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded RNG: xoshiro256++.
    ///
    /// Chosen for its tiny state, excellent statistical quality and trivial
    /// portability; every use in this workspace is behind a fixed seed, so
    /// bit-compatibility with upstream `rand` is not required.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn float_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = rng.gen_range(2usize..5);
            assert!((2..5).contains(&v));
            let w = rng.gen_range(0usize..=1);
            seen_lo |= w == 0;
            seen_hi |= w == 1;
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive range must reach both ends");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn works_through_mut_references() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            let r: &mut R = rng;
            r.gen()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let v = take(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
