//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched. This shim implements the small surface the workspace
//! benches use — [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! (`sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`Bencher::iter`], [`BenchmarkId`] and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop:
//! a short warm-up followed by `sample_size` timed samples, reporting
//! min / median / mean per iteration.
//!
//! Benches declare `harness = false`, so the macro-generated `main` runs the
//! registered groups directly. The shim honours the standard
//! `cargo bench -- <filter>` argument by substring-matching benchmark names.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Identifier for a parameterised benchmark, e.g. `lhs/8`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `"{function_name}/{parameter}"`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the closure given to `bench_function`; runs the measurement loop.
pub struct Bencher<'a> {
    samples: usize,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a couple of untimed runs so first-touch effects (page
        // faults, lazy statics) do not pollute the first sample.
        for _ in 0..2.min(self.samples) {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (criterion default: 100;
    /// this shim defaults to 20 to keep offline runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.group_name, id);
        self.run(full, f);
        self
    }

    /// Runs one parameterised benchmark; the input is moved into the closure
    /// by reference, exactly like criterion.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.group_name, id);
        self.run(full, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, full_name: String, mut f: F) {
        if !self.criterion.matches(&full_name) {
            return;
        }
        let mut results = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: self.sample_size,
            results: &mut results,
        };
        f(&mut bencher);
        report(&full_name, &results);
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; `--bench` and other harness flags are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            group_name: name.into(),
            sample_size: 20,
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = name.to_string();
        if self.matches(&full) {
            let mut results = Vec::with_capacity(20);
            let mut bencher = Bencher {
                samples: 20,
                results: &mut results,
            };
            f(&mut bencher);
            report(&full, &results);
        }
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{name:<48} min {:>12} median {:>12} mean {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut results = Vec::new();
        let mut b = Bencher {
            samples: 5,
            results: &mut results,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(results.len(), 5);
        assert!(count >= 5);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("lhs", 8).to_string(), "lhs/8");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("us"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
