//! `moheco-obs` — structured span tracing, phase budget attribution, and
//! metrics exposition for the MOHECO reproduction.
//!
//! The paper's whole contribution is *where the simulation budget goes*
//! (OCBA allocation vs. memetic search phases), so this crate provides the
//! telemetry substrate the rest of the workspace threads through its
//! engine/optimizer/campaign layers:
//!
//! * [`Tracer`] / [`Span`] — a lightweight hierarchical span API. Phases are
//!   named like paths (`optimize/estimation/stage1/ocba_round`); entering a
//!   span is an RAII guard ([`Span::enter`]) on the orchestration thread, and
//!   every simulation, cache hit and eviction observed through the installed
//!   counter [`probe`](Tracer::set_probe) is attributed to the **innermost
//!   active phase** at the moment it happens.
//! * [`Collector`] — the pluggable event sink. [`NoopCollector`] (the
//!   default) discards events, [`MemoryCollector`] records them
//!   deterministically for tests, and [`JsonlCollector`] streams one flat
//!   JSON object per event to a file with timing fields segregated last —
//!   the same discipline the campaign rows use so gated digests stay
//!   bit-identical.
//! * [`PhaseBreakdown`] — the aggregated per-phase budget attribution
//!   (spans, simulations, cache hits, evictions, wall nanos), rendered as a
//!   self-time table or a text flamegraph by `moheco-profile`.
//! * [`prometheus`] — Prometheus-style text exposition helpers used by the
//!   campaign process to publish engine and phase counters.
//!
//! # Determinism rules
//!
//! Everything except wall-clock time is deterministic: phase paths, span
//! counts and counter deltas reproduce bit-identically across runs of the
//! same seed (parallel engines included — spans are entered on the
//! orchestration thread between engine batches, where the engine is
//! quiescent). Wall-nanos fields are *timing*: they must never enter gated
//! digests, campaign rows, or [`PhaseBreakdown::digest`]. A disabled tracer
//! (the default, [`Tracer::disabled`]) does nothing at all, so instrumented
//! code paths stay bit-identical to uninstrumented ones.
//!
//! # Example
//!
//! ```
//! use moheco_obs::{MemoryCollector, ProbeCounters, Span, Tracer};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let sims = Arc::new(AtomicU64::new(0));
//! let collector = Arc::new(MemoryCollector::new());
//! let tracer = Tracer::new(collector.clone());
//! let probe_sims = sims.clone();
//! tracer.set_probe(move || ProbeCounters {
//!     simulations: probe_sims.load(Ordering::Relaxed),
//!     ..ProbeCounters::default()
//! });
//!
//! {
//!     let _run = Span::enter(&tracer, "run");
//!     sims.fetch_add(3, Ordering::Relaxed); // attributed to "run"
//!     let _inner = Span::enter(&tracer, "stage1/ocba_round");
//!     sims.fetch_add(7, Ordering::Relaxed); // attributed to the round
//! }
//!
//! let breakdown = tracer.breakdown();
//! assert_eq!(breakdown.total_simulations(), 10);
//! assert_eq!(breakdown.get("run/stage1/ocba_round").unwrap().simulations, 7);
//! ```

#![warn(missing_docs)]

mod breakdown;
mod collector;
pub mod prometheus;
mod span;

pub use breakdown::{PhaseBreakdown, PhaseEntry};
pub use collector::{Collector, JsonlCollector, MemoryCollector, NoopCollector, RecordedEvent};
pub use span::{ProbeCounters, Span, SpanEvent, Tracer};
