//! Aggregated per-phase budget attribution and its renderers.

use crate::span::SpanEvent;
use std::collections::BTreeMap;

/// One phase (full `/`-joined path) of a [`PhaseBreakdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEntry {
    /// Full phase path, e.g. `optimize/estimation/stage1/ocba_round`.
    pub path: String,
    /// Number of span occurrences aggregated into this entry.
    pub spans: u64,
    /// Simulations attributed to this phase itself (children excluded).
    pub simulations: u64,
    /// Cache hits attributed to this phase itself (children excluded).
    pub cache_hits: u64,
    /// Cache evictions attributed to this phase itself (children excluded).
    pub evictions: u64,
    /// Inclusive wall time of all occurrences. Timing — excluded from
    /// [`PhaseBreakdown::digest`] and from every gated serialization.
    pub wall_nanos: u64,
}

/// The per-phase budget attribution of a traced run: a tree of phases
/// (encoded by their `/`-joined paths), each with self counters and
/// inclusive wall time.
///
/// The central invariant (tested across the workspace): when a root span
/// covers an entire run on a fresh engine, the sum of per-phase
/// `simulations` equals the engine's `simulations_run` counter exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Entries sorted by path (lexicographic, which places every parent
    /// before its children).
    pub phases: Vec<PhaseEntry>,
}

impl PhaseBreakdown {
    /// Rebuilds a breakdown by aggregating raw span events (as read back
    /// from a JSONL stream) by path.
    pub fn from_span_events<I: IntoIterator<Item = SpanEvent>>(events: I) -> Self {
        let mut map: BTreeMap<String, PhaseEntry> = BTreeMap::new();
        for event in events {
            let entry = map.entry(event.path.clone()).or_insert_with(|| PhaseEntry {
                path: event.path.clone(),
                spans: 0,
                simulations: 0,
                cache_hits: 0,
                evictions: 0,
                wall_nanos: 0,
            });
            entry.spans += 1;
            entry.simulations += event.simulations;
            entry.cache_hits += event.cache_hits;
            entry.evictions += event.evictions;
            entry.wall_nanos += event.wall_nanos;
        }
        Self {
            phases: map.into_values().collect(),
        }
    }

    /// Whether any phase was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The entry for `path`, if recorded.
    pub fn get(&self, path: &str) -> Option<&PhaseEntry> {
        self.phases.iter().find(|e| e.path == path)
    }

    /// Sum of per-phase self simulations — equals the engine's
    /// `simulations_run` when a root span covered the whole run.
    pub fn total_simulations(&self) -> u64 {
        self.phases.iter().map(|e| e.simulations).sum()
    }

    /// Sum of per-phase self cache hits.
    pub fn total_cache_hits(&self) -> u64 {
        self.phases.iter().map(|e| e.cache_hits).sum()
    }

    /// FNV-1a digest over the deterministic fields (paths and counters;
    /// wall time deliberately excluded), matching the workspace's
    /// `trace_digest` format: 16 lowercase hex digits.
    pub fn digest(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for entry in &self.phases {
            eat(entry.path.as_bytes());
            eat(&[0xff]);
            eat(&entry.spans.to_le_bytes());
            eat(&entry.simulations.to_le_bytes());
            eat(&entry.cache_hits.to_le_bytes());
            eat(&entry.evictions.to_le_bytes());
        }
        format!("{hash:016x}")
    }

    /// Compact single-line deterministic encoding
    /// (`path=spans:sims:hits:evictions;...`), used to embed a breakdown
    /// summary in flat result records. Timing is excluded by construction.
    pub fn to_compact(&self) -> String {
        self.phases
            .iter()
            .map(|e| {
                format!(
                    "{}={}:{}:{}:{}",
                    e.path, e.spans, e.simulations, e.cache_hits, e.evictions
                )
            })
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Index of the nearest recorded ancestor of each entry (`None` for
    /// roots): the longest entry path that is a proper `/`-prefix.
    fn ancestors(&self) -> Vec<Option<usize>> {
        self.phases
            .iter()
            .map(|entry| {
                self.phases
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| {
                        entry.path.len() > a.path.len()
                            && entry.path.starts_with(&a.path)
                            && entry.path.as_bytes()[a.path.len()] == b'/'
                    })
                    .max_by_key(|(_, a)| a.path.len())
                    .map(|(i, _)| i)
            })
            .collect()
    }

    /// Inclusive simulations per entry: self plus all recorded descendants.
    fn inclusive_simulations(&self) -> Vec<u64> {
        self.phases
            .iter()
            .map(|entry| {
                let prefix = format!("{}/", entry.path);
                entry.simulations
                    + self
                        .phases
                        .iter()
                        .filter(|d| d.path.starts_with(&prefix))
                        .map(|d| d.simulations)
                        .sum::<u64>()
            })
            .collect()
    }

    /// Self wall time per entry: inclusive wall minus the inclusive wall of
    /// direct recorded children (saturating, since timings are measured
    /// independently).
    fn self_wall_nanos(&self) -> Vec<u64> {
        let ancestors = self.ancestors();
        let mut self_wall: Vec<u64> = self.phases.iter().map(|e| e.wall_nanos).collect();
        for (i, ancestor) in ancestors.iter().enumerate() {
            if let Some(parent) = ancestor {
                self_wall[*parent] = self_wall[*parent].saturating_sub(self.phases[i].wall_nanos);
            }
        }
        self_wall
    }

    /// Renders a self-time table sorted by self simulations (descending,
    /// ties by path).
    pub fn render_table(&self) -> String {
        let total = self.total_simulations().max(1);
        let self_wall = self.self_wall_nanos();
        let mut order: Vec<usize> = (0..self.phases.len()).collect();
        order.sort_by(|&a, &b| {
            self.phases[b]
                .simulations
                .cmp(&self.phases[a].simulations)
                .then_with(|| self.phases[a].path.cmp(&self.phases[b].path))
        });
        let mut out = format!(
            "{:<44} {:>7} {:>10} {:>6} {:>10} {:>8} {:>10} {:>10}\n",
            "phase", "spans", "sims", "sims%", "hits", "evict", "self ms", "total ms"
        );
        for i in order {
            let e = &self.phases[i];
            out.push_str(&format!(
                "{:<44} {:>7} {:>10} {:>5.1}% {:>10} {:>8} {:>10.2} {:>10.2}\n",
                e.path,
                e.spans,
                e.simulations,
                100.0 * e.simulations as f64 / total as f64,
                e.cache_hits,
                e.evictions,
                self_wall[i] as f64 / 1e6,
                e.wall_nanos as f64 / 1e6,
            ));
        }
        out
    }

    /// Renders a text flamegraph: tree-indented phases with bars sized by
    /// *inclusive* simulations (self plus descendants).
    pub fn render_flamegraph(&self) -> String {
        let ancestors = self.ancestors();
        let inclusive = self.inclusive_simulations();
        let grand_total: u64 = ancestors
            .iter()
            .zip(&inclusive)
            .filter(|(a, _)| a.is_none())
            .map(|(_, &sims)| sims)
            .sum::<u64>()
            .max(1);
        let depth_of = |mut i: usize| {
            let mut depth = 0usize;
            while let Some(parent) = ancestors[i] {
                depth += 1;
                i = parent;
            }
            depth
        };
        let mut out = String::new();
        for (i, entry) in self.phases.iter().enumerate() {
            let depth = depth_of(i);
            let label = match ancestors[i] {
                Some(parent) => &entry.path[self.phases[parent].path.len() + 1..],
                None => entry.path.as_str(),
            };
            let frac = inclusive[i] as f64 / grand_total as f64;
            let bar = "#".repeat(((frac * 40.0).round() as usize).clamp(1, 40));
            out.push_str(&format!(
                "{:<44} {:>10} sims {:>5.1}% {bar}\n",
                format!("{}{label}", "  ".repeat(depth)),
                inclusive[i],
                100.0 * frac,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhaseBreakdown {
        PhaseBreakdown {
            phases: vec![
                PhaseEntry {
                    path: "run".to_string(),
                    spans: 1,
                    simulations: 10,
                    cache_hits: 0,
                    evictions: 0,
                    wall_nanos: 10_000_000,
                },
                PhaseEntry {
                    path: "run/estimation".to_string(),
                    spans: 4,
                    simulations: 20,
                    cache_hits: 5,
                    evictions: 0,
                    wall_nanos: 6_000_000,
                },
                PhaseEntry {
                    path: "run/estimation/stage1/ocba_round".to_string(),
                    spans: 12,
                    simulations: 70,
                    cache_hits: 30,
                    evictions: 1,
                    wall_nanos: 4_000_000,
                },
            ],
        }
    }

    #[test]
    fn totals_and_lookup() {
        let b = sample();
        assert_eq!(b.total_simulations(), 100);
        assert_eq!(b.total_cache_hits(), 35);
        assert_eq!(b.get("run/estimation").unwrap().spans, 4);
        assert!(b.get("missing").is_none());
    }

    #[test]
    fn digest_ignores_wall_time_but_not_counters() {
        let b = sample();
        let mut timing_only = b.clone();
        timing_only.phases[0].wall_nanos = 999;
        assert_eq!(b.digest(), timing_only.digest());
        let mut changed = b.clone();
        changed.phases[0].simulations += 1;
        assert_ne!(b.digest(), changed.digest());
        assert_eq!(b.digest().len(), 16);
    }

    #[test]
    fn from_span_events_aggregates_by_path() {
        let events = vec![
            SpanEvent {
                seq: 1,
                path: "run/round".to_string(),
                depth: 1,
                simulations: 3,
                cache_hits: 1,
                evictions: 0,
                wall_nanos: 10,
            },
            SpanEvent {
                seq: 2,
                path: "run/round".to_string(),
                depth: 1,
                simulations: 4,
                cache_hits: 0,
                evictions: 0,
                wall_nanos: 20,
            },
            SpanEvent {
                seq: 3,
                path: "run".to_string(),
                depth: 0,
                simulations: 1,
                cache_hits: 0,
                evictions: 0,
                wall_nanos: 50,
            },
        ];
        let b = PhaseBreakdown::from_span_events(events);
        assert_eq!(b.phases.len(), 2);
        assert_eq!(b.phases[0].path, "run"); // sorted, parent first
        let round = b.get("run/round").unwrap();
        assert_eq!(round.spans, 2);
        assert_eq!(round.simulations, 7);
        assert_eq!(round.wall_nanos, 30);
    }

    #[test]
    fn ancestor_skips_unrecorded_intermediate_segments() {
        // "run/estimation/stage1/ocba_round" has no recorded
        // "run/estimation/stage1" entry; its nearest ancestor is
        // "run/estimation".
        let b = sample();
        let ancestors = b.ancestors();
        assert_eq!(ancestors[0], None);
        assert_eq!(ancestors[1], Some(0));
        assert_eq!(ancestors[2], Some(1));
    }

    #[test]
    fn renderers_cover_every_phase() {
        let b = sample();
        let table = b.render_table();
        let flame = b.render_flamegraph();
        for entry in &b.phases {
            assert!(table.contains(&entry.path), "table missing {}", entry.path);
        }
        assert!(flame.contains("ocba_round"));
        // Table is self-sims sorted: the OCBA rounds dominate.
        let first_row = table.lines().nth(1).unwrap();
        assert!(first_row.starts_with("run/estimation/stage1/ocba_round"));
        // Flamegraph bars scale with inclusive sims: the root covers 100%.
        let root_line = flame.lines().next().unwrap();
        assert!(root_line.contains("100.0%"), "{root_line}");
        assert!(root_line.contains(&"#".repeat(40)));
    }

    #[test]
    fn compact_encoding_is_deterministic_and_timing_free() {
        let b = sample();
        assert_eq!(
            b.to_compact(),
            "run=1:10:0:0;run/estimation=4:20:5:0;run/estimation/stage1/ocba_round=12:70:30:1"
        );
    }

    #[test]
    fn empty_breakdown_renders_without_panic() {
        let b = PhaseBreakdown::default();
        assert!(b.is_empty());
        assert_eq!(b.total_simulations(), 0);
        assert_eq!(b.to_compact(), "");
        let _ = b.render_table();
        let _ = b.render_flamegraph();
    }
}
