//! Pluggable sinks for span and custom events.

use crate::span::SpanEvent;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Receives span exits and custom events from a [`crate::Tracer`].
///
/// Implementations must be thread-safe (the tracer is cloneable and may be
/// flushed from any thread) and must uphold the determinism rules of the
/// crate: whatever a collector persists, timing fields (`wall_nanos` and
/// friends) go **after** all deterministic fields, so deterministic prefixes
/// of serialized events stay bit-identical across runs.
pub trait Collector: Send + Sync {
    /// Called once per span occurrence, at exit.
    fn span(&self, event: &SpanEvent);

    /// Called for custom (non-span) events such as campaign progress or
    /// end-of-run summaries. `fields` arrive in their serialization order.
    fn event(&self, kind: &str, fields: &[(&str, String)]);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Discards everything. The default collector: tracing with it costs only
/// the per-boundary probe read and map update.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopCollector;

impl Collector for NoopCollector {
    fn span(&self, _event: &SpanEvent) {}
    fn event(&self, _kind: &str, _fields: &[(&str, String)]) {}
}

/// A custom event as recorded by [`MemoryCollector`]: the event kind plus
/// its key/value fields in emission order.
pub type RecordedEvent = (String, Vec<(String, String)>);

/// Records every event in memory, in arrival order — the deterministic
/// collector used by tests.
#[derive(Debug, Default)]
pub struct MemoryCollector {
    spans: Mutex<Vec<SpanEvent>>,
    events: Mutex<Vec<RecordedEvent>>,
}

impl MemoryCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// All span events recorded so far, in exit order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.spans.lock().expect("collector poisoned").clone()
    }

    /// All custom events recorded so far, in emission order.
    pub fn events(&self) -> Vec<RecordedEvent> {
        self.events.lock().expect("collector poisoned").clone()
    }
}

impl Collector for MemoryCollector {
    fn span(&self, event: &SpanEvent) {
        self.spans
            .lock()
            .expect("collector poisoned")
            .push(event.clone());
    }

    fn event(&self, kind: &str, fields: &[(&str, String)]) {
        self.events.lock().expect("collector poisoned").push((
            kind.to_string(),
            fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        ));
    }
}

/// Streams one flat JSON object per event to a file.
///
/// Span lines look like
///
/// ```json
/// {"event": "span", "seq": 3, "path": "optimize/screening", "depth": 1,
///  "simulations": 40, "cache_hits": 10, "evictions": 0, "wall_nanos": 81250}
/// ```
///
/// with `wall_nanos` — the only timing field — always last, exactly like the
/// campaign rows segregate `wall_time_ms`: stripping the final timing field
/// leaves a byte-stable deterministic record. Custom events serialize their
/// fields in emission order under their `event` kind; emitters keep timing
/// fields last there too.
#[derive(Debug)]
pub struct JsonlCollector {
    out: Mutex<BufWriter<File>>,
}

impl JsonlCollector {
    /// Creates (truncating) the JSONL stream at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().expect("collector poisoned");
        // Profiling output is best-effort: a full disk should not abort the
        // run it is observing.
        let _ = writeln!(out, "{line}");
    }
}

impl Collector for JsonlCollector {
    fn span(&self, event: &SpanEvent) {
        self.write_line(&format!(
            "{{\"event\": \"span\", \"seq\": {}, \"path\": \"{}\", \"depth\": {}, \
             \"simulations\": {}, \"cache_hits\": {}, \"evictions\": {}, \"wall_nanos\": {}}}",
            event.seq,
            escape_json(&event.path),
            event.depth,
            event.simulations,
            event.cache_hits,
            event.evictions,
            event.wall_nanos,
        ));
    }

    fn event(&self, kind: &str, fields: &[(&str, String)]) {
        let mut line = format!("{{\"event\": \"{}\"", escape_json(kind));
        for (key, value) in fields {
            line.push_str(&format!(
                ", \"{}\": {}",
                escape_json(key),
                json_value(value)
            ));
        }
        line.push('}');
        self.write_line(&line);
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("collector poisoned").flush();
    }
}

impl Drop for JsonlCollector {
    fn drop(&mut self) {
        Collector::flush(self);
    }
}

/// Escapes a string for embedding inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a custom-event field value: bare if it already reads as a JSON
/// number, quoted otherwise.
fn json_value(value: &str) -> String {
    let numeric = !value.is_empty()
        && value.parse::<f64>().is_ok()
        // `parse::<f64>` accepts forms JSON does not ("inf", "nan", "1.")
        // and forms we do not want bare ("1e5" is fine, "+1" is not).
        && value
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        && !value.ends_with('.')
        && value != "-"
        && !value.starts_with('+');
    if numeric {
        value.to_string()
    } else {
        format!("\"{}\"", escape_json(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("moheco-obs-{}-{tag}.jsonl", std::process::id()))
    }

    fn sample_event() -> SpanEvent {
        SpanEvent {
            seq: 1,
            path: "optimize/screening".to_string(),
            depth: 1,
            simulations: 40,
            cache_hits: 10,
            evictions: 0,
            wall_nanos: 81_250,
        }
    }

    #[test]
    fn jsonl_span_lines_put_timing_last() {
        let path = temp_path("span");
        {
            let collector = JsonlCollector::create(&path).unwrap();
            collector.span(&sample_event());
            collector.event(
                "run_summary",
                &[
                    ("scenario", "margin_wall".to_string()),
                    ("simulations_run", "1234".to_string()),
                ],
            );
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].ends_with("\"wall_nanos\": 81250}"),
            "timing must be the final field: {}",
            lines[0]
        );
        assert!(lines[0].contains("\"simulations\": 40"));
        assert!(lines[1].contains("\"event\": \"run_summary\""));
        assert!(lines[1].contains("\"scenario\": \"margin_wall\""));
        assert!(lines[1].contains("\"simulations_run\": 1234"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_collector_is_deterministic_storage() {
        let collector = MemoryCollector::new();
        collector.span(&sample_event());
        collector.event("progress", &[("cell", "a/b".to_string())]);
        assert_eq!(collector.spans(), vec![sample_event()]);
        assert_eq!(
            collector.events(),
            vec![(
                "progress".to_string(),
                vec![("cell".to_string(), "a/b".to_string())]
            )]
        );
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_value("12"), "12");
        assert_eq!(json_value("-3.5"), "-3.5");
        assert_eq!(json_value("1e5"), "1e5");
        assert_eq!(json_value("abc"), "\"abc\"");
        assert_eq!(json_value("1."), "\"1.\"");
        assert_eq!(json_value("+1"), "\"+1\"");
        assert_eq!(json_value(""), "\"\"");
    }
}
