//! Prometheus text-exposition helpers.
//!
//! The campaign process (and anything else that wants a metrics endpoint)
//! renders point-in-time snapshots in the [Prometheus text exposition
//! format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! `# HELP` / `# TYPE` headers followed by `name{labels} value` samples.
//! Rendering is pull-style and allocation-only — no sockets, no background
//! threads — so callers can write the snapshot to a file, stderr, or an
//! HTTP response as they see fit.

use crate::breakdown::PhaseBreakdown;

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Appends a `# HELP` / `# TYPE` header for one metric family.
pub fn push_header(out: &mut String, name: &str, metric_type: &str, help: &str) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {metric_type}\n"
    ));
}

/// Appends one sample line, e.g.
/// `moheco_phase_simulations_total{phase="run/screening"} 40`.
pub fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (key, val)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{key}=\"{}\"", escape_label(val)));
        }
        out.push('}');
    }
    // Counters are integers in practice; render them without a fraction so
    // the output is stable and diff-friendly.
    if value.fract() == 0.0 && value.abs() < 9e15 {
        out.push_str(&format!(" {}\n", value as i64));
    } else {
        out.push_str(&format!(" {value}\n"));
    }
}

/// Renders the per-phase attribution of `breakdown` as four counter
/// families (`spans`, `simulations`, `cache_hits` and `wall_seconds`), each
/// labelled by phase path.
pub fn render_phase_metrics(breakdown: &PhaseBreakdown) -> String {
    let mut out = String::new();
    if breakdown.is_empty() {
        return out;
    }
    push_header(
        &mut out,
        "moheco_phase_spans_total",
        "counter",
        "Span occurrences per phase.",
    );
    for e in &breakdown.phases {
        push_sample(
            &mut out,
            "moheco_phase_spans_total",
            &[("phase", &e.path)],
            e.spans as f64,
        );
    }
    push_header(
        &mut out,
        "moheco_phase_simulations_total",
        "counter",
        "Simulations attributed to each phase (self, children excluded).",
    );
    for e in &breakdown.phases {
        push_sample(
            &mut out,
            "moheco_phase_simulations_total",
            &[("phase", &e.path)],
            e.simulations as f64,
        );
    }
    push_header(
        &mut out,
        "moheco_phase_cache_hits_total",
        "counter",
        "Cache hits attributed to each phase (self, children excluded).",
    );
    for e in &breakdown.phases {
        push_sample(
            &mut out,
            "moheco_phase_cache_hits_total",
            &[("phase", &e.path)],
            e.cache_hits as f64,
        );
    }
    push_header(
        &mut out,
        "moheco_phase_wall_seconds_total",
        "counter",
        "Inclusive wall time per phase.",
    );
    for e in &breakdown.phases {
        push_sample(
            &mut out,
            "moheco_phase_wall_seconds_total",
            &[("phase", &e.path)],
            e.wall_nanos as f64 / 1e9,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown::PhaseEntry;

    #[test]
    fn sample_lines_follow_the_exposition_format() {
        let mut out = String::new();
        push_header(&mut out, "moheco_test_total", "counter", "A test metric.");
        push_sample(
            &mut out,
            "moheco_test_total",
            &[("phase", "run/a\"b"), ("algo", "memetic")],
            42.0,
        );
        push_sample(&mut out, "moheco_test_total", &[], 0.5);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "# HELP moheco_test_total A test metric.");
        assert_eq!(lines[1], "# TYPE moheco_test_total counter");
        assert_eq!(
            lines[2],
            "moheco_test_total{phase=\"run/a\\\"b\",algo=\"memetic\"} 42"
        );
        assert_eq!(lines[3], "moheco_test_total 0.5");
    }

    #[test]
    fn phase_metrics_cover_all_families_and_phases() {
        let breakdown = PhaseBreakdown {
            phases: vec![PhaseEntry {
                path: "run/screening".to_string(),
                spans: 2,
                simulations: 40,
                cache_hits: 10,
                evictions: 0,
                wall_nanos: 1_500_000_000,
            }],
        };
        let text = render_phase_metrics(&breakdown);
        assert!(text.contains("moheco_phase_spans_total{phase=\"run/screening\"} 2"));
        assert!(text.contains("moheco_phase_simulations_total{phase=\"run/screening\"} 40"));
        assert!(text.contains("moheco_phase_cache_hits_total{phase=\"run/screening\"} 10"));
        assert!(text.contains("moheco_phase_wall_seconds_total{phase=\"run/screening\"} 1.5"));
        assert_eq!(render_phase_metrics(&PhaseBreakdown::default()), "");
    }
}
