//! The tracer, its counter probe, and the RAII span guard.

use crate::breakdown::{PhaseBreakdown, PhaseEntry};
use crate::collector::Collector;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A point-in-time reading of the budget counters a tracer attributes to
/// phases.
///
/// The probe installed with [`Tracer::set_probe`] returns the *cumulative*
/// values as seen by the engine; the tracer works in deltas between span
/// boundaries, so the absolute origin does not matter (a reused engine with
/// prior history attributes only what happens while spans are active).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounters {
    /// Circuit simulations actually executed.
    pub simulations: u64,
    /// Samples served from the engine cache without running a simulation.
    pub cache_hits: u64,
    /// Cache blocks evicted by the bounded-memory policy.
    pub evictions: u64,
}

impl ProbeCounters {
    /// Counter-wise saturating difference `self - earlier`.
    pub fn delta_since(&self, earlier: &ProbeCounters) -> ProbeCounters {
        ProbeCounters {
            simulations: self.simulations.saturating_sub(earlier.simulations),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// One completed span occurrence, as delivered to a [`Collector`].
///
/// The counter fields (`simulations`, `cache_hits`, `evictions`) are **self**
/// values: work attributed to this span while it was the innermost active
/// phase, excluding its children. `wall_nanos` is the **inclusive** duration
/// of the occurrence (children included) and is the only timing field — it
/// must stay segregated from deterministic data (see the crate docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotonic sequence number of the exit event within this tracer.
    pub seq: u64,
    /// Full `/`-joined phase path, e.g. `optimize/stage1/ocba_round`.
    pub path: String,
    /// Nesting depth of the span guard (root guard = 0).
    pub depth: u32,
    /// Simulations attributed to this occurrence (self, not children).
    pub simulations: u64,
    /// Cache hits attributed to this occurrence (self, not children).
    pub cache_hits: u64,
    /// Evictions attributed to this occurrence (self, not children).
    pub evictions: u64,
    /// Inclusive wall-clock duration of the occurrence. Timing — never
    /// digest or gate on it.
    pub wall_nanos: u64,
}

/// Per-phase accumulation kept inside the tracer, keyed by full path.
#[derive(Debug, Default, Clone, Copy)]
struct PhaseAccum {
    spans: u64,
    counters: ProbeCounters,
    wall_nanos: u64,
}

struct ActiveSpan {
    path: String,
    start: Instant,
    self_counters: ProbeCounters,
}

type Probe = Box<dyn Fn() -> ProbeCounters + Send>;

struct TraceState {
    probe: Option<Probe>,
    last_probe: ProbeCounters,
    stack: Vec<ActiveSpan>,
    phases: BTreeMap<String, PhaseAccum>,
    seq: u64,
}

struct TracerInner {
    collector: Arc<dyn Collector>,
    state: Mutex<TraceState>,
}

/// The tracing handle threaded through engine, optimizer and campaign code.
///
/// A `Tracer` is cheap to clone (it is an `Arc` internally, or nothing at
/// all when disabled). The default is [`Tracer::disabled`], under which
/// every operation is a no-op with near-zero cost — instrumented code is
/// bit-identical to uninstrumented code.
///
/// Spans must be entered and dropped on a single orchestration thread in
/// LIFO order (the RAII [`Span`] guard guarantees this); the evaluation
/// engine itself may be parallel, because counter attribution only reads the
/// probe at span boundaries, where the engine is quiescent.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that does nothing at all (the default).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled tracer delivering span events to `collector`.
    ///
    /// Phase aggregation ([`Tracer::breakdown`]) always happens on an enabled
    /// tracer, independent of what the collector does with the event stream;
    /// pass a [`crate::NoopCollector`] for aggregation-only tracing.
    pub fn new(collector: Arc<dyn Collector>) -> Self {
        Self {
            inner: Some(Arc::new(TracerInner {
                collector,
                state: Mutex::new(TraceState {
                    probe: None,
                    last_probe: ProbeCounters::default(),
                    stack: Vec::new(),
                    phases: BTreeMap::new(),
                    seq: 0,
                }),
            })),
        }
    }

    /// An enabled tracer with a [`crate::NoopCollector`]: phase aggregation
    /// only, no event stream.
    pub fn aggregating() -> Self {
        Self::new(Arc::new(crate::NoopCollector))
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Installs the counter probe used for budget attribution.
    ///
    /// The probe is read at every span boundary; deltas between consecutive
    /// readings are attributed to the innermost active phase. Installing a
    /// probe when one is already present first settles attribution under the
    /// outgoing probe, then rebases the baseline on the incoming one — so a
    /// long-lived tracer may be pointed at a fresh engine (e.g. between
    /// campaign cells) without mis-attributing the counter discontinuity.
    /// On a disabled tracer this is a no-op.
    pub fn set_probe<F>(&self, probe: F)
    where
        F: Fn() -> ProbeCounters + Send + 'static,
    {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().expect("tracer state poisoned");
            if state.probe.is_some() {
                let settle = state.probe.as_ref().map(|p| p()).unwrap_or_default();
                attribute_to_top(&mut state, settle);
            }
            state.probe = Some(Box::new(probe));
            // Baseline from the new probe: counts that predate it (engine
            // history, or another engine entirely) attribute to nothing.
            state.last_probe = state.probe.as_ref().map(|p| p()).unwrap_or_default();
        }
    }

    /// Emits a custom (non-span) event to the collector, e.g. a campaign
    /// progress or `run_summary` record. Callers must keep timing fields
    /// (if any) last, matching the span-event discipline.
    pub fn emit(&self, kind: &str, fields: &[(&str, String)]) {
        if let Some(inner) = &self.inner {
            inner.collector.event(kind, fields);
        }
    }

    /// Flushes the collector (a no-op for non-buffering collectors).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.collector.flush();
        }
    }

    /// The per-phase budget attribution accumulated so far, sorted by path.
    ///
    /// Only *closed* spans contribute their span count and wall time; the
    /// counter deltas of still-open spans up to the last boundary are
    /// included. Call after the root guard has dropped for a complete view.
    pub fn breakdown(&self) -> PhaseBreakdown {
        let Some(inner) = &self.inner else {
            return PhaseBreakdown::default();
        };
        let state = inner.state.lock().expect("tracer state poisoned");
        PhaseBreakdown {
            phases: state
                .phases
                .iter()
                .map(|(path, accum)| PhaseEntry {
                    path: path.clone(),
                    spans: accum.spans,
                    simulations: accum.counters.simulations,
                    cache_hits: accum.counters.cache_hits,
                    evictions: accum.counters.evictions,
                    wall_nanos: accum.wall_nanos,
                })
                .collect(),
        }
    }

    fn enter_inner(&self, name: &str) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state.lock().expect("tracer state poisoned");
        let now = state.probe.as_ref().map(|p| p()).unwrap_or_default();
        attribute_to_top(&mut state, now);
        let path = match state.stack.last() {
            Some(top) => format!("{}/{name}", top.path),
            None => name.to_string(),
        };
        state.stack.push(ActiveSpan {
            path,
            start: Instant::now(),
            self_counters: ProbeCounters::default(),
        });
    }

    fn exit_inner(&self) {
        let Some(inner) = &self.inner else { return };
        let event = {
            let mut state = inner.state.lock().expect("tracer state poisoned");
            let now = state.probe.as_ref().map(|p| p()).unwrap_or_default();
            attribute_to_top(&mut state, now);
            let Some(span) = state.stack.pop() else {
                return; // unbalanced exit: ignore rather than panic in Drop
            };
            let wall_nanos = span.start.elapsed().as_nanos() as u64;
            let depth = state.stack.len() as u32;
            let accum = state.phases.entry(span.path.clone()).or_default();
            accum.spans += 1;
            accum.wall_nanos += wall_nanos;
            state.seq += 1;
            SpanEvent {
                seq: state.seq,
                path: span.path,
                depth,
                simulations: span.self_counters.simulations,
                cache_hits: span.self_counters.cache_hits,
                evictions: span.self_counters.evictions,
                wall_nanos,
            }
        };
        inner.collector.span(&event);
    }
}

/// Attributes the counter delta since the last boundary to the innermost
/// active span (both its occurrence-local counters and the per-phase
/// aggregate), then advances the baseline.
fn attribute_to_top(state: &mut TraceState, now: ProbeCounters) {
    let delta = now.delta_since(&state.last_probe);
    if let Some(top) = state.stack.last_mut() {
        top.self_counters.simulations += delta.simulations;
        top.self_counters.cache_hits += delta.cache_hits;
        top.self_counters.evictions += delta.evictions;
        let path = top.path.clone();
        let accum = state.phases.entry(path).or_default();
        accum.counters.simulations += delta.simulations;
        accum.counters.cache_hits += delta.cache_hits;
        accum.counters.evictions += delta.evictions;
    }
    state.last_probe = now;
}

/// RAII guard for an active phase span.
///
/// Created with [`Span::enter`]; the phase closes (and its event is emitted)
/// when the guard drops. Guards nest: the full phase path is the `/`-joined
/// chain of enclosing span names, and a single name may itself contain `/`
/// to declare sub-phases without nested guards (`stage2/ocba_round`).
#[must_use = "the span closes when this guard drops"]
pub struct Span {
    tracer: Tracer,
}

impl Span {
    /// Enters a phase on `tracer`, returning the guard that closes it.
    ///
    /// On a disabled tracer this is free (no allocation, no locking).
    pub fn enter(tracer: &Tracer, name: &str) -> Span {
        tracer.enter_inner(name);
        Span {
            tracer: tracer.clone(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.tracer.exit_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::MemoryCollector;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn counting_tracer() -> (Tracer, Arc<MemoryCollector>, Arc<AtomicU64>) {
        let sims = Arc::new(AtomicU64::new(0));
        let collector = Arc::new(MemoryCollector::new());
        let tracer = Tracer::new(collector.clone());
        let probe_sims = sims.clone();
        tracer.set_probe(move || ProbeCounters {
            simulations: probe_sims.load(Ordering::Relaxed),
            cache_hits: 0,
            evictions: 0,
        });
        (tracer, collector, sims)
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let _span = Span::enter(&tracer, "anything");
        tracer.emit("kind", &[]);
        tracer.flush();
        assert!(tracer.breakdown().is_empty());
    }

    #[test]
    fn deltas_attribute_to_the_innermost_phase() {
        let (tracer, _collector, sims) = counting_tracer();
        {
            let _root = Span::enter(&tracer, "run");
            sims.fetch_add(3, Ordering::Relaxed);
            {
                let _inner = Span::enter(&tracer, "stage1");
                sims.fetch_add(7, Ordering::Relaxed);
            }
            sims.fetch_add(2, Ordering::Relaxed);
        }
        let b = tracer.breakdown();
        assert_eq!(b.get("run").unwrap().simulations, 5);
        assert_eq!(b.get("run/stage1").unwrap().simulations, 7);
        assert_eq!(b.total_simulations(), 12);
    }

    #[test]
    fn pre_probe_counts_are_not_attributed() {
        let sims = Arc::new(AtomicU64::new(1_000)); // engine history predates tracing
        let tracer = Tracer::aggregating();
        let probe_sims = sims.clone();
        tracer.set_probe(move || ProbeCounters {
            simulations: probe_sims.load(Ordering::Relaxed),
            cache_hits: 0,
            evictions: 0,
        });
        {
            let _root = Span::enter(&tracer, "run");
            sims.fetch_add(4, Ordering::Relaxed);
        }
        assert_eq!(tracer.breakdown().total_simulations(), 4);
    }

    #[test]
    fn repeated_spans_aggregate_by_path() {
        let (tracer, collector, sims) = counting_tracer();
        let _root = Span::enter(&tracer, "run");
        for add in [1u64, 2, 3] {
            let _round = Span::enter(&tracer, "ocba_round");
            sims.fetch_add(add, Ordering::Relaxed);
        }
        let b = tracer.breakdown();
        let round = b.get("run/ocba_round").unwrap();
        assert_eq!(round.spans, 3);
        assert_eq!(round.simulations, 6);
        // Three exit events so far (root still open).
        assert_eq!(collector.spans().len(), 3);
        assert!(collector.spans().iter().all(|e| e.depth == 1));
    }

    #[test]
    fn events_carry_self_counters_and_sequence() {
        let (tracer, collector, sims) = counting_tracer();
        {
            let _root = Span::enter(&tracer, "run");
            let _child = Span::enter(&tracer, "screening");
            sims.fetch_add(9, Ordering::Relaxed);
        }
        let events = collector.spans();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].path, "run/screening");
        assert_eq!(events[0].simulations, 9);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].path, "run");
        assert_eq!(events[1].simulations, 0);
        assert_eq!(events[1].seq, 2);
    }

    #[test]
    fn custom_events_reach_the_collector() {
        let (tracer, collector, _sims) = counting_tracer();
        tracer.emit("run_summary", &[("simulations_run", "12".to_string())]);
        let events = collector.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, "run_summary");
        assert_eq!(
            events[0].1[0],
            ("simulations_run".to_string(), "12".to_string())
        );
    }

    #[test]
    fn reinstalling_a_probe_rebases_across_engines() {
        let (tracer, _collector, sims_a) = counting_tracer();
        let _root = Span::enter(&tracer, "campaign");
        sims_a.fetch_add(10, Ordering::Relaxed);
        // Second "engine": its counters restart near zero. The switch must
        // settle the 10 sims from engine A, then attribute only deltas
        // observed under engine B.
        let sims_b = Arc::new(AtomicU64::new(2));
        let probe_sims = sims_b.clone();
        tracer.set_probe(move || ProbeCounters {
            simulations: probe_sims.load(Ordering::Relaxed),
            cache_hits: 0,
            evictions: 0,
        });
        sims_b.fetch_add(5, Ordering::Relaxed);
        {
            let _cell = Span::enter(&tracer, "cell");
            sims_b.fetch_add(4, Ordering::Relaxed);
        }
        let b = tracer.breakdown();
        assert_eq!(b.get("campaign").unwrap().simulations, 15);
        assert_eq!(b.get("campaign/cell").unwrap().simulations, 4);
    }

    #[test]
    fn slash_in_a_span_name_declares_sub_phases() {
        let (tracer, _collector, sims) = counting_tracer();
        {
            let _root = Span::enter(&tracer, "run");
            let _s = Span::enter(&tracer, "stage2/promotion");
            sims.fetch_add(5, Ordering::Relaxed);
        }
        assert_eq!(
            tracer
                .breakdown()
                .get("run/stage2/promotion")
                .unwrap()
                .simulations,
            5
        );
    }
}
