//! Reproducible random-number streams and simulation counting.
//!
//! The experiments in the paper are statistical comparisons over 10
//! independent optimization runs; reproducing them requires independent but
//! reproducible RNG streams per (run, purpose) pair, plus a global counter of
//! how many circuit simulations each method consumed (the quantity reported
//! in Tables 2 and 4).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Factory of reproducible, statistically independent RNG streams derived
/// from a single master seed via SplitMix64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngStreams {
    master_seed: u64,
}

impl RngStreams {
    /// Creates a stream factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        Self { master_seed }
    }

    /// Returns the RNG for stream `(run, purpose)`.
    ///
    /// Different `(run, purpose)` pairs produce uncorrelated streams; the same
    /// pair always produces the same stream.
    pub fn stream(&self, run: u64, purpose: u64) -> StdRng {
        let mixed = splitmix64(
            self.master_seed ^ splitmix64(run.wrapping_mul(0x9E3779B97F4A7C15) ^ purpose),
        );
        StdRng::seed_from_u64(mixed)
    }
}

/// One SplitMix64 mixing step: the workspace's shared bit-mixing primitive
/// for deriving stream seeds and hash keys.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A shared counter of circuit simulations.
///
/// The counter is cheaply clonable (all clones share the same count), so the
/// evaluator, the yield estimator and the optimizer can all hold a handle.
/// It is atomic so the parallel evaluation engine's worker threads can bump
/// it without coordination.
#[derive(Debug, Clone, Default)]
pub struct SimulationCounter {
    count: Arc<AtomicU64>,
}

impl SimulationCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` simulations to the counter.
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn total(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_stream_is_reproducible() {
        let f = RngStreams::new(1234);
        let a: Vec<u32> = {
            let mut r = f.stream(3, 7);
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = f.stream(3, 7);
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_differ() {
        let f = RngStreams::new(1234);
        let mut r1 = f.stream(0, 0);
        let mut r2 = f.stream(0, 1);
        let mut r3 = f.stream(1, 0);
        let a: u64 = r1.gen();
        let b: u64 = r2.gen();
        let c: u64 = r3.gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn different_master_seeds_differ() {
        let mut r1 = RngStreams::new(1).stream(0, 0);
        let mut r2 = RngStreams::new(2).stream(0, 0);
        let a: u64 = r1.gen();
        let b: u64 = r2.gen();
        assert_ne!(a, b);
    }

    #[test]
    fn counter_accumulates_and_is_shared() {
        let c = SimulationCounter::new();
        let c2 = c.clone();
        c.add(10);
        c2.add(5);
        assert_eq!(c.total(), 15);
        assert_eq!(c2.total(), 15);
        c.reset();
        assert_eq!(c2.total(), 0);
    }
}
