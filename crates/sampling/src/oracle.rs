//! Closed-form yield oracles for analytic benchmark problems.
//!
//! The synthetic scenarios of the `moheco-scenarios` crate are built so that
//! their true yield is computable in closed form: every specification margin
//! is an analytic function of the design point plus additive Gaussian noise,
//! and the noise terms of different specifications are independent. For such
//! a problem the yield is a product of normal CDF values, so Monte-Carlo
//! estimator accuracy can be *asserted* against ground truth instead of
//! eyeballed against another Monte-Carlo run.
//!
//! This module is also the canonical home of the standard-normal CDF and
//! quantile approximations used across the workspace (`moheco-process`
//! re-exports them for its distribution samplers).
//!
//! # Example
//!
//! A specification that passes with 2σ of margin, next to an independent one
//! with 1σ, has a closed-form joint yield of `Φ(2) · Φ(1)`:
//!
//! ```
//! use moheco_sampling::oracle::{independent_margins_yield, standard_normal_cdf};
//!
//! let yield_ = independent_margins_yield(&[(2.0, 1.0), (0.5, 0.5)]);
//! let expected = standard_normal_cdf(2.0) * standard_normal_cdf(1.0);
//! assert!((yield_ - expected).abs() < 1e-12);
//! ```

/// CDF of the standard normal distribution.
///
/// Abramowitz–Stegun 26.2.17 rational approximation, absolute error below
/// `7.5e-8` — far tighter than any Monte-Carlo tolerance asserted in tests.
///
/// # Example
///
/// ```
/// use moheco_sampling::standard_normal_cdf;
///
/// assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
pub fn standard_normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let tail = pdf * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// Acklam's rational approximation, accurate to about `1.15e-9` over the
/// open interval `(0, 1)`; inputs are clamped away from 0 and 1.
///
/// # Example
///
/// ```
/// use moheco_sampling::{standard_normal_cdf, standard_normal_quantile};
///
/// let z = standard_normal_quantile(0.975);
/// assert!((z - 1.959964).abs() < 1e-5);
/// assert!((standard_normal_cdf(z) - 0.975).abs() < 1e-6);
/// ```
pub fn standard_normal_quantile(p: f64) -> f64 {
    let p = p.clamp(1e-15, 1.0 - 1e-15);

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Probability that a single Gaussian-noise specification passes:
/// `P[margin + sigma·Z ≥ 0] = Φ(margin / sigma)` for `Z ~ N(0, 1)`.
///
/// A `sigma` of zero degenerates to the deterministic indicator.
///
/// # Example
///
/// ```
/// use moheco_sampling::gaussian_margin_yield;
///
/// // One sigma of margin passes ~84.1 % of the time.
/// assert!((gaussian_margin_yield(1.0, 1.0) - 0.8413).abs() < 1e-3);
/// // No noise: the margin sign decides outright.
/// assert_eq!(gaussian_margin_yield(0.1, 0.0), 1.0);
/// ```
///
/// # Panics
///
/// Panics if `sigma` is negative or not finite.
pub fn gaussian_margin_yield(margin: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
    if sigma == 0.0 {
        return if margin >= 0.0 { 1.0 } else { 0.0 };
    }
    standard_normal_cdf(margin / sigma)
}

/// Joint yield of several specifications with *independent* Gaussian noise:
/// the product of the per-spec [`gaussian_margin_yield`] values.
///
/// Independence must be guaranteed by the caller (the synthetic scenarios
/// give each specification a disjoint block of statistical variables).
pub fn independent_margins_yield(margins_and_sigmas: &[(f64, f64)]) -> f64 {
    margins_and_sigmas
        .iter()
        .map(|&(m, s)| gaussian_margin_yield(m, s))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_matches_known_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((standard_normal_cdf(1.0) - 0.841344746).abs() < 1e-7);
        assert!((standard_normal_cdf(-1.0) - 0.158655254).abs() < 1e-7);
        assert!((standard_normal_cdf(1.959963985) - 0.975).abs() < 1e-7);
        assert!(standard_normal_cdf(8.0) > 1.0 - 1e-12);
        assert!(standard_normal_cdf(-8.0) < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = standard_normal_quantile(p);
            assert!(
                (standard_normal_cdf(x) - p).abs() < 1e-6,
                "round trip failed at p = {p}"
            );
        }
    }

    #[test]
    fn quantile_is_antisymmetric() {
        for &p in &[0.01, 0.2, 0.4] {
            let lo = standard_normal_quantile(p);
            let hi = standard_normal_quantile(1.0 - p);
            assert!((lo + hi).abs() < 1e-8, "asymmetry at p = {p}");
        }
        assert!(standard_normal_quantile(0.5).abs() < 1e-9);
    }

    #[test]
    fn margin_yield_limits() {
        assert_eq!(gaussian_margin_yield(1.0, 0.0), 1.0);
        assert_eq!(gaussian_margin_yield(-1.0, 0.0), 0.0);
        assert!((gaussian_margin_yield(0.0, 2.0) - 0.5).abs() < 1e-9);
        // Three sigma of margin: ~99.87 %.
        assert!((gaussian_margin_yield(3.0, 1.0) - 0.998650102).abs() < 1e-6);
    }

    #[test]
    fn independent_specs_multiply() {
        let specs = [(1.0, 1.0), (2.0, 2.0)];
        let expected = gaussian_margin_yield(1.0, 1.0) * gaussian_margin_yield(2.0, 2.0);
        assert!((independent_margins_yield(&specs) - expected).abs() < 1e-12);
        assert_eq!(independent_margins_yield(&[]), 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_sigma_panics() {
        let _ = gaussian_margin_yield(0.0, -1.0);
    }
}
