//! Pluggable variance-reduction yield estimators.
//!
//! Plain Monte-Carlo acceptance counting treats every sample the same way:
//! the yield estimate is the pass fraction and its confidence interval comes
//! from the binomial variance `p (1 - p) / n`. That interval width is what
//! actually drives simulation cost — an optimizer keeps sampling until the
//! interval is narrow enough to rank or certify a design — so an estimator
//! that *honestly reports a narrower interval from the same samples* saves
//! `simulate()` calls on the hot path.
//!
//! This module defines the estimator contract ([`YieldEstimator`]) and four
//! implementations selected by [`EstimatorKind`]:
//!
//! | Kind | Block points | Variance formula |
//! |---|---|---|
//! | [`MonteCarloEstimator`] | engine sampling plan (unchanged) | binomial `p(1-p)/n` |
//! | [`StratifiedLhsEstimator`] | Latin Hypercube per block | per-stratum-block pooling (replicate variance of block means) |
//! | [`AntitheticEstimator`] | LHS half-block + mirrored pairs | paired variance (pair means), pooled per block |
//! | [`ImportanceSamplingEstimator`] | mean shift toward the dominant failure spec | weighted sample variance of the per-sample yield contributions |
//!
//! # How estimators plug into the engine
//!
//! An estimator influences two things and nothing else:
//!
//! 1. **Block generation** ([`YieldEstimator::generate_block`]): the unit
//!    points (and, for importance sampling, the likelihood weights) of one
//!    cache block are a pure function of the block's RNG stream, exactly
//!    like the plain plan — so per-`(design, block)` determinism, the
//!    sharded cache and parallel == serial all survive unchanged.
//! 2. **Aggregation** ([`YieldEstimator::estimate`]): indexed outcome values
//!    are condensed into an [`EstimatedYield`] carrying the point estimate
//!    *and* a standard error computed with the estimator's own correct
//!    variance formula.
//!
//! Outcome values are *yield contributions*: for the non-weighted estimators
//! they are the raw pass/fail indicators (0.0 / 1.0); for importance
//! sampling each value is `1 - w · (1 - J)` (see [`weighted_outcome`]), so
//! the plain mean of any outcome vector is an unbiased yield estimate under
//! every estimator. Consumers that only need the point estimate can keep
//! summing outcomes; consumers that need an interval call
//! [`YieldEstimator::estimate`].

use crate::lhs::SamplingPlan;
use crate::oracle::{standard_normal_cdf, standard_normal_quantile};
use crate::yield_est::YieldEstimate;
use rand::rngs::StdRng;

/// z value of a two-sided 95 % normal confidence interval.
pub const Z_95: f64 = 1.96;

/// The variance-reduction estimators `moheco-run --estimator` can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorKind {
    /// Plain Monte-Carlo acceptance counting over the engine's sampling plan
    /// (the default; bit-identical to the pre-estimator behaviour).
    #[default]
    MonteCarlo,
    /// Latin-Hypercube stratification with per-stratum-block pooled variance.
    StratifiedLhs,
    /// Antithetic pairs `(u, 1 - u)` with paired variance.
    Antithetic,
    /// Mean-shifted importance sampling toward the dominant failure spec.
    ImportanceSampling,
}

impl EstimatorKind {
    /// Every kind, in CLI order.
    pub const ALL: [EstimatorKind; 4] = [
        EstimatorKind::MonteCarlo,
        EstimatorKind::StratifiedLhs,
        EstimatorKind::Antithetic,
        EstimatorKind::ImportanceSampling,
    ];

    /// Parses a `--estimator` value (`mc`, `lhs`, `antithetic`, `is`).
    ///
    /// # Example
    ///
    /// ```
    /// use moheco_sampling::EstimatorKind;
    ///
    /// assert_eq!(EstimatorKind::parse("lhs"), Some(EstimatorKind::StratifiedLhs));
    /// assert_eq!(EstimatorKind::parse("bogus"), None);
    /// ```
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mc" => Some(Self::MonteCarlo),
            "lhs" => Some(Self::StratifiedLhs),
            "antithetic" => Some(Self::Antithetic),
            "is" => Some(Self::ImportanceSampling),
            _ => None,
        }
    }

    /// The stable label used by the CLI and the result schema.
    pub fn label(&self) -> &'static str {
        match self {
            Self::MonteCarlo => "mc",
            Self::StratifiedLhs => "lhs",
            Self::Antithetic => "antithetic",
            Self::ImportanceSampling => "is",
        }
    }

    /// Whether this estimator stores fractional likelihood-weighted yield
    /// contributions rather than raw 0/1 pass indicators. Consumers that
    /// reconstruct pass counts from outcome sums (e.g. the two-stage OCBA
    /// loop) must not round weighted sums back to integers.
    ///
    /// # Example
    ///
    /// ```
    /// use moheco_sampling::EstimatorKind;
    ///
    /// assert!(EstimatorKind::ImportanceSampling.weighted_outcomes());
    /// assert!(!EstimatorKind::StratifiedLhs.weighted_outcomes());
    /// ```
    pub fn weighted_outcomes(&self) -> bool {
        matches!(self, Self::ImportanceSampling)
    }

    /// Builds the estimator implementation for an engine whose cache blocks
    /// hold `block_size` samples.
    ///
    /// # Example
    ///
    /// ```
    /// use moheco_sampling::EstimatorKind;
    ///
    /// let est = EstimatorKind::StratifiedLhs.build(50);
    /// assert_eq!(est.kind(), EstimatorKind::StratifiedLhs);
    /// ```
    pub fn build(&self, block_size: usize) -> Box<dyn YieldEstimator> {
        match self {
            Self::MonteCarlo => Box::new(MonteCarloEstimator),
            Self::StratifiedLhs => Box::new(StratifiedLhsEstimator::new(block_size)),
            Self::Antithetic => Box::new(AntitheticEstimator::new(block_size)),
            Self::ImportanceSampling => Box::new(ImportanceSamplingEstimator),
        }
    }
}

/// The unit points (and optional likelihood weights) of one sample block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPoints {
    /// Unit-hypercube points, one row per sample.
    pub points: Vec<Vec<f64>>,
    /// Per-sample likelihood weights; empty means all weights are exactly 1
    /// (every estimator except importance sampling).
    pub weights: Vec<f64>,
}

/// A yield estimate with the estimator's own uncertainty quantification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatedYield {
    /// The point estimate of the yield, clamped to `[0, 1]`.
    pub value: f64,
    /// Standard error of the estimate under the estimator's variance formula.
    ///
    /// This is the plug-in (maximum-likelihood) estimate, so degenerate
    /// samples report exactly zero: an all-pass/all-fail sample under the
    /// binomial formula, or coinciding replicate means under the pooled
    /// formulas. Consumers *certifying* a yield from few samples should use
    /// [`YieldEstimate::wilson_interval`](crate::yield_est::YieldEstimate::wilson_interval)
    /// on the counting representation (via `From<EstimatedYield>`), which
    /// keeps a strictly positive width at observed yields of 0 and 1.
    pub std_error: f64,
    /// Number of samples the estimate is based on.
    pub samples: usize,
    /// Which estimator produced the estimate.
    pub kind: EstimatorKind,
}

impl EstimatedYield {
    /// An empty estimate (no samples; value 0).
    pub fn empty(kind: EstimatorKind) -> Self {
        Self {
            value: 0.0,
            std_error: 0.0,
            samples: 0,
            kind,
        }
    }

    /// Confidence-interval half-width at the given z value
    /// ([`Z_95`] for 95 % confidence).
    ///
    /// # Example
    ///
    /// ```
    /// use moheco_sampling::{EstimatedYield, EstimatorKind, Z_95};
    ///
    /// let e = EstimatedYield {
    ///     value: 0.9,
    ///     std_error: 0.01,
    ///     samples: 900,
    ///     kind: EstimatorKind::MonteCarlo,
    /// };
    /// assert!((e.half_width(Z_95) - 0.0196).abs() < 1e-12);
    /// ```
    pub fn half_width(&self, z: f64) -> f64 {
        z * self.std_error
    }

    /// Variance of the estimate (`std_error²`).
    pub fn variance(&self) -> f64 {
        self.std_error * self.std_error
    }
}

/// Contract of a pluggable yield estimator.
///
/// An implementation owns both ends of the estimation pipeline: it decides
/// how the unit points of one cache block are laid out
/// ([`Self::generate_block`] — a pure function of the block's RNG stream, so
/// the engine's determinism and cache-stability guarantees hold under every
/// estimator), and how indexed outcome values condense into a yield estimate
/// with an honest standard error ([`Self::estimate`]).
pub trait YieldEstimator: Send + Sync + std::fmt::Debug {
    /// The kind selecting this implementation.
    fn kind(&self) -> EstimatorKind;

    /// Generates the `n` unit points (dimension `dim`) of one block from the
    /// block's RNG stream.
    ///
    /// `plan` is the engine's base sampling plan (used verbatim by the plain
    /// Monte-Carlo estimator; the others impose their own layout). `shift` is
    /// the model's importance-sampling mean shift in z-space (`None` for
    /// models without one, and ignored by every estimator except importance
    /// sampling).
    fn generate_block(
        &self,
        rng: &mut StdRng,
        n: usize,
        dim: usize,
        plan: SamplingPlan,
        shift: Option<&[f64]>,
    ) -> BlockPoints;

    /// Condenses outcome values `0 .. n` of one design's stream into a yield
    /// estimate with the estimator's own variance formula.
    ///
    /// Outcome values are the per-sample yield contributions stored by the
    /// engine: raw 0/1 indicators for the non-weighted estimators, weighted
    /// contributions ([`weighted_outcome`]) for importance sampling. The
    /// slice must start at sample index 0 of the stream — block and pair
    /// alignment is defined from the stream origin.
    fn estimate(&self, outcomes: &[f64]) -> EstimatedYield;
}

/// The per-sample yield contribution stored by the engine: `1 − w · (1 − J)`
/// for likelihood weight `w` and pass/fail indicator `J`.
///
/// With `w = 1` this is exactly `J`, so non-weighted estimators are
/// unaffected. With an importance-sampling weight it makes the plain mean of
/// the stored outcomes an unbiased yield estimate:
/// `E_q[1 − w (1 − J)] = 1 − E_p[1 − J] = Y`.
///
/// # Example
///
/// ```
/// use moheco_sampling::weighted_outcome;
///
/// assert_eq!(weighted_outcome(1.0, 1.0), 1.0); // unweighted pass
/// assert_eq!(weighted_outcome(1.0, 0.0), 0.0); // unweighted fail
/// assert_eq!(weighted_outcome(0.25, 0.0), 0.75); // down-weighted failure
/// ```
pub fn weighted_outcome(weight: f64, indicator: f64) -> f64 {
    1.0 - weight * (1.0 - indicator)
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased sample variance; zero with fewer than two observations.
fn sample_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Binomial standard error `√(p (1 − p) / n)` of a pass fraction.
fn binomial_std_error(p: f64, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    (p.clamp(0.0, 1.0) * (1.0 - p.clamp(0.0, 1.0)) / n as f64).sqrt()
}

fn clamped(value: f64, std_error: f64, samples: usize, kind: EstimatorKind) -> EstimatedYield {
    EstimatedYield {
        value: value.clamp(0.0, 1.0),
        std_error,
        samples,
        kind,
    }
}

/// Plain Monte-Carlo acceptance counting (the default estimator).
///
/// Block points come from the engine's base sampling plan unchanged, the
/// point estimate is the pass fraction and the standard error is binomial —
/// exactly the pre-estimator behaviour of the workspace, which is what makes
/// this the drop-in default.
///
/// # Example
///
/// ```
/// use moheco_sampling::{EstimatorKind, MonteCarloEstimator, YieldEstimator};
///
/// let est = MonteCarloEstimator;
/// let r = est.estimate(&[1.0, 1.0, 0.0, 1.0]);
/// assert_eq!(r.kind, EstimatorKind::MonteCarlo);
/// assert!((r.value - 0.75).abs() < 1e-12);
/// // Binomial standard error: sqrt(0.75 * 0.25 / 4).
/// assert!((r.std_error - (0.75_f64 * 0.25 / 4.0).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MonteCarloEstimator;

impl YieldEstimator for MonteCarloEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::MonteCarlo
    }

    fn generate_block(
        &self,
        rng: &mut StdRng,
        n: usize,
        dim: usize,
        plan: SamplingPlan,
        _shift: Option<&[f64]>,
    ) -> BlockPoints {
        BlockPoints {
            points: plan.generate(rng, n, dim),
            weights: Vec::new(),
        }
    }

    fn estimate(&self, outcomes: &[f64]) -> EstimatedYield {
        let p = mean(outcomes);
        clamped(
            p,
            binomial_std_error(p, outcomes.len()),
            outcomes.len(),
            self.kind(),
        )
    }
}

/// Latin-Hypercube stratification with per-stratum-block pooled variance.
///
/// Each cache block is one independent `stratum`-point Latin-Hypercube
/// design, so an estimate spanning `k` complete blocks is the mean of `k`
/// i.i.d. replicates. The variance formula pools at that granularity: the
/// spread of the per-block means estimates the (stratification-reduced)
/// variance of one replicate, and a partial trailing block contributes its
/// binomial term. With fewer than two complete blocks there is no replicate
/// information and the estimator falls back to the binomial formula (which
/// is conservative for stratified samples).
///
/// # Example
///
/// ```
/// use moheco_sampling::{EstimatorKind, StratifiedLhsEstimator, YieldEstimator};
///
/// // Two strata of 4 samples with very similar block means: the pooled
/// // standard error is far below the binomial one for the same data.
/// let est = StratifiedLhsEstimator::new(4);
/// let outcomes = [1.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0];
/// let r = est.estimate(&outcomes);
/// assert_eq!(r.kind, EstimatorKind::StratifiedLhs);
/// assert!((r.value - 0.75).abs() < 1e-12);
/// let binomial = (0.75_f64 * 0.25 / 8.0).sqrt();
/// assert!(r.std_error < binomial, "{} vs {binomial}", r.std_error);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StratifiedLhsEstimator {
    stratum: usize,
}

impl StratifiedLhsEstimator {
    /// Creates the estimator for an engine with `stratum` samples per cache
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if `stratum` is zero.
    pub fn new(stratum: usize) -> Self {
        assert!(stratum > 0, "stratum size must be positive");
        Self { stratum }
    }

    /// Samples per stratum block.
    pub fn stratum(&self) -> usize {
        self.stratum
    }
}

/// Replicate variance of the mean over complete blocks plus the binomial
/// contribution of a partial trailing block. Shared by the LHS and
/// antithetic estimators (whose replicates are both the engine blocks).
fn block_pooled_std_error(outcomes: &[f64], block: usize) -> f64 {
    let n = outcomes.len();
    let complete = n / block;
    if complete < 2 {
        // No replicate information: conservative binomial fallback.
        return binomial_std_error(mean(outcomes), n);
    }
    let head = complete * block;
    let block_means: Vec<f64> = outcomes[..head].chunks_exact(block).map(mean).collect();
    let replicate_var = sample_variance(&block_means);
    // Var(ŷ) for the weighted combination of k block means and a partial
    // remainder of r samples: (head/n)² · s²/k + (r/n)² · p(1−p)/r.
    let mut variance = (head as f64 / n as f64).powi(2) * replicate_var / complete as f64;
    let r = n - head;
    if r > 0 {
        let tail = &outcomes[head..];
        let p_tail = mean(tail);
        variance += (r as f64 / n as f64).powi(2) * p_tail * (1.0 - p_tail) / r as f64;
    }
    variance.max(0.0).sqrt()
}

impl YieldEstimator for StratifiedLhsEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::StratifiedLhs
    }

    fn generate_block(
        &self,
        rng: &mut StdRng,
        n: usize,
        dim: usize,
        _plan: SamplingPlan,
        _shift: Option<&[f64]>,
    ) -> BlockPoints {
        // Always Latin-Hypercube, regardless of the base plan: the variance
        // formula is only valid for stratified blocks.
        BlockPoints {
            points: SamplingPlan::LatinHypercube.generate(rng, n, dim),
            weights: Vec::new(),
        }
    }

    fn estimate(&self, outcomes: &[f64]) -> EstimatedYield {
        clamped(
            mean(outcomes),
            block_pooled_std_error(outcomes, self.stratum),
            outcomes.len(),
            self.kind(),
        )
    }
}

/// Antithetic pairs with paired variance, pooled per stratum block.
///
/// A block holds `block/2` Latin-Hypercube base points at even indices and
/// their mirrors `1 − u` at odd indices, so a pair always lives inside one
/// cache block (and therefore one cache shard key) — partial reads, the
/// sharded cache and parallel execution can never split a pair.
///
/// The atoms of the variance formula are the pair means
/// `t_i = (J_{2i} + J_{2i+1}) / 2`, which capture the negative covariance of
/// a mirrored pair. Because the base points of one block are additionally
/// LHS-coupled, pair means within a block are not independent; the blocks
/// are, so the pooling happens at block granularity exactly as for
/// [`StratifiedLhsEstimator`] (a block mean *is* the mean of its pair
/// means). With fewer than two complete blocks the estimator falls back to
/// treating pair means as i.i.d. (`s²_t / m`, conservative under LHS
/// coupling), and with fewer than two pairs to the binomial formula.
///
/// # Example
///
/// ```
/// use moheco_sampling::{AntitheticEstimator, EstimatorKind, YieldEstimator};
///
/// let est = AntitheticEstimator::new(50);
/// // Two pairs whose members disagree: every pair mean is exactly 0.5, so
/// // the paired variance — and the standard error — is zero.
/// let r = est.estimate(&[1.0, 0.0, 0.0, 1.0]);
/// assert_eq!(r.kind, EstimatorKind::Antithetic);
/// assert!((r.value - 0.5).abs() < 1e-12);
/// assert!(r.std_error < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AntitheticEstimator {
    block: usize,
}

impl AntitheticEstimator {
    /// Creates the estimator for an engine with `block` samples per cache
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero or odd (pairs may not straddle blocks).
    pub fn new(block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        assert!(
            block.is_multiple_of(2),
            "antithetic pairing requires an even block size"
        );
        Self { block }
    }
}

impl YieldEstimator for AntitheticEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Antithetic
    }

    fn generate_block(
        &self,
        rng: &mut StdRng,
        n: usize,
        dim: usize,
        _plan: SamplingPlan,
        _shift: Option<&[f64]>,
    ) -> BlockPoints {
        // LHS base points at even indices, mirrors at odd indices. An odd
        // trailing sample (only possible when the engine block size is odd,
        // which the constructor rejects) would get no mirror.
        let half = n / 2;
        let mut points = Vec::with_capacity(n);
        if half > 0 {
            for base in SamplingPlan::LatinHypercube.generate(rng, half, dim) {
                let mirror: Vec<f64> = base.iter().map(|&u| 1.0 - u).collect();
                points.push(base);
                points.push(mirror);
            }
        }
        if n % 2 == 1 {
            points.extend(SamplingPlan::PrimitiveMonteCarlo.generate(rng, 1, dim));
        }
        BlockPoints {
            points,
            weights: Vec::new(),
        }
    }

    fn estimate(&self, outcomes: &[f64]) -> EstimatedYield {
        let n = outcomes.len();
        let value = mean(outcomes);
        let pairs = n / 2;
        if pairs < 2 {
            return clamped(value, binomial_std_error(value, n), n, self.kind());
        }
        if n / self.block >= 2 {
            // Enough complete blocks for replicate pooling (a block mean is
            // the mean of its pair means).
            return clamped(
                value,
                block_pooled_std_error(outcomes, self.block),
                n,
                self.kind(),
            );
        }
        // Treat pair means as i.i.d. (conservative under the LHS coupling of
        // one block); an unpaired trailing sample adds its binomial term.
        let head = pairs * 2;
        let pair_means: Vec<f64> = outcomes[..head]
            .chunks_exact(2)
            .map(|pair| 0.5 * (pair[0] + pair[1]))
            .collect();
        let mut variance =
            (head as f64 / n as f64).powi(2) * sample_variance(&pair_means) / pairs as f64;
        if n > head {
            let p = outcomes[head].clamp(0.0, 1.0);
            variance += (1.0 / n as f64).powi(2) * p * (1.0 - p);
        }
        clamped(value, variance.max(0.0).sqrt(), n, self.kind())
    }
}

/// Mean-shifted importance sampling toward the dominant failure spec.
///
/// When the model exposes a z-space mean shift `μ` (see the runtime's
/// `SimulationModel::importance_shift`), each base point is shifted through
/// `u ↦ Φ(Φ⁻¹(u) + μ)` and carries the likelihood weight
/// `w = exp(−μ·z′ + ½‖μ‖²)` of the shifted sample `z′`. The engine stores
/// the *yield contribution* `1 − w (1 − J)` per sample
/// ([`weighted_outcome`]), so the mean of the stored outcomes estimates
/// `1 − E_p[1 − J] = Y` without bias, and the estimator's variance is the
/// sample variance of those contributions over `n` — the correct weighted
/// variance, which is small exactly when the shift concentrates samples
/// where failures happen.
///
/// Models without a shift hint (`None`) degrade gracefully: the points are
/// the base plan's, every weight is 1, and the estimate matches plain
/// Monte-Carlo up to the `n/(n−1)` sample-variance factor.
///
/// # Example
///
/// ```
/// use moheco_sampling::{EstimatorKind, ImportanceSamplingEstimator, YieldEstimator};
///
/// let est = ImportanceSamplingEstimator;
/// // Weighted yield contributions: two certain passes and two failures
/// // observed with weight 0.5 (i.e. contribution 1 − 0.5·1 = 0.5).
/// let r = est.estimate(&[1.0, 0.5, 1.0, 0.5]);
/// assert_eq!(r.kind, EstimatorKind::ImportanceSampling);
/// assert!((r.value - 0.75).abs() < 1e-12);
/// assert!(r.std_error > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ImportanceSamplingEstimator;

impl YieldEstimator for ImportanceSamplingEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::ImportanceSampling
    }

    fn generate_block(
        &self,
        rng: &mut StdRng,
        n: usize,
        dim: usize,
        plan: SamplingPlan,
        shift: Option<&[f64]>,
    ) -> BlockPoints {
        let base = plan.generate(rng, n, dim);
        let Some(mu) = shift.filter(|mu| mu.iter().any(|&m| m != 0.0)) else {
            return BlockPoints {
                points: base,
                weights: Vec::new(),
            };
        };
        assert_eq!(mu.len(), dim, "importance shift dimension mismatch");
        let mu_norm2: f64 = mu.iter().map(|m| m * m).sum();
        let mut points = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        for u in base {
            let mut shifted = Vec::with_capacity(dim);
            let mut dot = 0.0;
            for (&ui, &mi) in u.iter().zip(mu) {
                let z_shifted = standard_normal_quantile(ui) + mi;
                dot += mi * z_shifted;
                shifted.push(standard_normal_cdf(z_shifted));
            }
            // Likelihood ratio φ(z′) / φ(z′ − μ) = exp(−μ·z′ + ½‖μ‖²).
            weights.push((-dot + 0.5 * mu_norm2).exp());
            points.push(shifted);
        }
        BlockPoints { points, weights }
    }

    fn estimate(&self, outcomes: &[f64]) -> EstimatedYield {
        let n = outcomes.len();
        let value = mean(outcomes);
        let std_error = if n < 2 {
            binomial_std_error(value, n)
        } else {
            (sample_variance(outcomes) / n as f64).sqrt()
        };
        clamped(value, std_error, n, self.kind())
    }
}

/// Estimates the yield of `indicator` with a fresh standalone estimator:
/// `blocks × block` samples are generated block by block (each block an
/// independent stream of `rng`), simulated, and condensed with the
/// estimator's variance formula.
///
/// This is the self-contained entry point used by tests and examples; the
/// production path is the evaluation engine, which generates identical
/// blocks from its per-`(design, block)` streams and caches the outcomes.
///
/// # Example
///
/// ```
/// use moheco_sampling::{estimate_with, EstimatorKind};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// // P[u0 < 0.8] = 0.8, estimated with stratified LHS.
/// let est = estimate_with(
///     EstimatorKind::StratifiedLhs,
///     &mut rng,
///     8,  // blocks
///     50, // samples per block
///     1,  // dimension
///     None,
///     |u| u[0] < 0.8,
/// );
/// assert!((est.value - 0.8).abs() < 0.05);
/// assert!(est.std_error > 0.0 && est.samples == 400);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn estimate_with<F>(
    kind: EstimatorKind,
    rng: &mut StdRng,
    blocks: usize,
    block: usize,
    dim: usize,
    shift: Option<&[f64]>,
    mut indicator: F,
) -> EstimatedYield
where
    F: FnMut(&[f64]) -> bool,
{
    let estimator = kind.build(block);
    let mut outcomes = Vec::with_capacity(blocks * block);
    for _ in 0..blocks {
        let generated = estimator.generate_block(rng, block, dim, SamplingPlan::default(), shift);
        for (i, point) in generated.points.iter().enumerate() {
            let raw = if indicator(point) { 1.0 } else { 0.0 };
            let w = generated.weights.get(i).copied().unwrap_or(1.0);
            outcomes.push(weighted_outcome(w, raw));
        }
    }
    estimator.estimate(&outcomes)
}

/// Converts an [`EstimatedYield`] into the counting representation used by
/// the optimizer's bookkeeping ([`YieldEstimate`]); the uncertainty
/// information is dropped.
impl From<EstimatedYield> for YieldEstimate {
    fn from(est: EstimatedYield) -> Self {
        YieldEstimate::from_sum(est.value * est.samples as f64, est.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kind_labels_roundtrip() {
        for kind in EstimatorKind::ALL {
            assert_eq!(EstimatorKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.build(50).kind(), kind);
        }
        assert_eq!(EstimatorKind::parse("nope"), None);
        assert_eq!(EstimatorKind::default(), EstimatorKind::MonteCarlo);
    }

    #[test]
    fn mc_block_matches_the_plan_stream() {
        // The plain estimator must reproduce the engine's historic blocks
        // bit for bit: same RNG stream, same plan, no transformation.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let expected = SamplingPlan::LatinHypercube.generate(&mut a, 50, 3);
        let block =
            MonteCarloEstimator.generate_block(&mut b, 50, 3, SamplingPlan::LatinHypercube, None);
        assert_eq!(block.points, expected);
        assert!(block.weights.is_empty());
    }

    #[test]
    fn antithetic_blocks_are_mirrored_pairs() {
        let mut rng = StdRng::seed_from_u64(4);
        let block = AntitheticEstimator::new(50).generate_block(
            &mut rng,
            50,
            4,
            SamplingPlan::default(),
            None,
        );
        assert_eq!(block.points.len(), 50);
        for pair in block.points.chunks_exact(2) {
            for (u, v) in pair[0].iter().zip(&pair[1]) {
                assert!((u + v - 1.0).abs() < 1e-12, "not mirrored: {u} {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "even block size")]
    fn antithetic_rejects_odd_blocks() {
        let _ = AntitheticEstimator::new(51);
    }

    #[test]
    fn is_weights_have_unit_mean_under_the_shift() {
        // E_q[w] = 1 by construction; a sample average over many points must
        // sit close to 1.
        let mut rng = StdRng::seed_from_u64(11);
        let shift = vec![-1.2, 0.0, 0.4];
        let mut total = 0.0;
        let mut count = 0usize;
        for _ in 0..200 {
            let block = ImportanceSamplingEstimator.generate_block(
                &mut rng,
                50,
                3,
                SamplingPlan::LatinHypercube,
                Some(&shift),
            );
            assert_eq!(block.weights.len(), 50);
            total += block.weights.iter().sum::<f64>();
            count += block.weights.len();
        }
        let avg = total / count as f64;
        assert!((avg - 1.0).abs() < 0.05, "mean weight {avg}");
    }

    #[test]
    fn is_without_shift_degenerates_to_the_plan() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let plain = SamplingPlan::LatinHypercube.generate(&mut a, 20, 2);
        let block = ImportanceSamplingEstimator.generate_block(
            &mut b,
            20,
            2,
            SamplingPlan::LatinHypercube,
            Some(&[0.0, 0.0]),
        );
        assert_eq!(block.points, plain);
        assert!(block.weights.is_empty());
    }

    #[test]
    fn empty_outcomes_give_empty_estimates() {
        for kind in EstimatorKind::ALL {
            let est = kind.build(50).estimate(&[]);
            assert_eq!(est.samples, 0);
            assert_eq!(est.value, 0.0);
            assert_eq!(est.std_error, 0.0);
        }
    }

    #[test]
    fn all_pass_and_all_fail_have_zero_error() {
        for kind in EstimatorKind::ALL {
            let est = kind.build(4).estimate(&[1.0; 12]);
            assert_eq!(est.value, 1.0);
            assert!(est.std_error < 1e-12, "{kind:?}: {}", est.std_error);
            let est = kind.build(4).estimate(&[0.0; 12]);
            assert_eq!(est.value, 0.0);
            assert!(est.std_error < 1e-12);
        }
    }

    #[test]
    fn lhs_pooling_beats_binomial_on_homogeneous_blocks() {
        // Three blocks with identical means: replicate variance is zero even
        // though the binomial formula sees a mixed sample.
        let est = StratifiedLhsEstimator::new(4);
        let outcomes = [1.0, 0.0, 1.0, 1.0].repeat(3);
        let r = est.estimate(&outcomes);
        assert!((r.value - 0.75).abs() < 1e-12);
        assert!(r.std_error < 1e-12, "pooled se {}", r.std_error);
        // A single (partial) block has no replicates: binomial fallback.
        let single = est.estimate(&[1.0, 0.0, 1.0]);
        let p: f64 = 2.0 / 3.0;
        assert!((single.std_error - (p * (1.0 - p) / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn lhs_partial_tail_contributes_binomial_variance() {
        let est = StratifiedLhsEstimator::new(2);
        // Two complete identical blocks plus a mixed partial tail of one
        // sample (deterministic, so only the tail formula matters).
        let outcomes = [1.0, 0.0, 1.0, 0.0, 1.0];
        let r = est.estimate(&outcomes);
        assert!((r.value - 0.6).abs() < 1e-12);
        // Replicate variance is 0; the tail of one pass contributes
        // (1/5)² · 1·0/1 = 0 as well.
        assert!(r.std_error < 1e-12);
    }

    #[test]
    fn antithetic_paired_variance_sees_the_negative_covariance() {
        let est = AntitheticEstimator::new(50);
        // Perfectly anti-correlated pairs: zero paired variance.
        let perfect = est.estimate(&[1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        assert!(perfect.std_error < 1e-12);
        // Identical pairs: paired variance equals the binomial variance of
        // the pair means.
        let worst = est.estimate(&[1.0, 1.0, 0.0, 0.0]);
        assert!(worst.std_error > 0.3);
    }

    #[test]
    fn estimate_with_is_unbiased_for_every_kind() {
        // P[u0 + u1 < 1.0] = 0.5; average over seeds must track it.
        for kind in EstimatorKind::ALL {
            let mut total = 0.0;
            let runs = 30;
            for seed in 0..runs {
                let mut rng = StdRng::seed_from_u64(seed);
                let est = estimate_with(kind, &mut rng, 4, 50, 2, None, |u| u[0] + u[1] < 1.0);
                assert_eq!(est.samples, 200);
                total += est.value;
            }
            let avg = total / runs as f64;
            assert!((avg - 0.5).abs() < 0.02, "{kind:?}: mean {avg}");
        }
    }

    #[test]
    fn reported_intervals_cover_the_truth() {
        // For each estimator, the 95 % interval must cover the true value in
        // the vast majority of seeded runs (calibration sanity).
        for kind in EstimatorKind::ALL {
            let mut covered = 0;
            let runs = 40;
            for seed in 0..runs {
                let mut rng = StdRng::seed_from_u64(1000 + seed);
                let est = estimate_with(kind, &mut rng, 8, 50, 1, None, |u| u[0] < 0.8);
                let h = est.half_width(Z_95).max(1e-9);
                if (est.value - 0.8).abs() <= 1.5 * h {
                    covered += 1;
                }
            }
            assert!(
                covered >= runs * 9 / 10,
                "{kind:?}: covered {covered}/{runs}"
            );
        }
    }

    #[test]
    fn estimated_yield_conversion_keeps_value_and_samples() {
        let est = EstimatedYield {
            value: 0.85,
            std_error: 0.01,
            samples: 200,
            kind: EstimatorKind::StratifiedLhs,
        };
        let ye: YieldEstimate = est.into();
        assert_eq!(ye.samples, 200);
        assert!((ye.value() - 0.85).abs() < 1e-12);
        let empty = EstimatedYield::empty(EstimatorKind::MonteCarlo);
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.half_width(Z_95), 0.0);
    }
}
