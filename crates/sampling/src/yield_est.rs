//! Monte-Carlo yield estimation.
//!
//! Yield is the probability that a fabricated circuit meets all of its
//! specifications under process variation. A Monte-Carlo estimate is the
//! fraction of sampled process points whose simulated performances pass every
//! spec — the mean of the Bernoulli indicator `J(x, ξ)` used in the paper.

use crate::lhs::SamplingPlan;
use rand::Rng;

/// A Monte-Carlo yield estimate: accumulated yield contribution over sample
/// count.
///
/// For the unweighted estimators the accumulated `sum` is exactly the pass
/// count; the importance-sampling estimator stores fractional per-sample
/// yield contributions (see [`crate::estimator::weighted_outcome`]), so the
/// sum is a float. [`Self::value`] is the mean either way.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct YieldEstimate {
    /// Accumulated yield contribution (the pass count for unweighted
    /// estimators), clamped to `[0, samples]`.
    pub sum: f64,
    /// Total number of samples evaluated.
    pub samples: usize,
}

impl YieldEstimate {
    /// Creates an estimate from explicit pass/sample counts.
    ///
    /// # Panics
    ///
    /// Panics if `passes > samples`.
    pub fn new(passes: usize, samples: usize) -> Self {
        assert!(passes <= samples, "passes cannot exceed samples");
        Self {
            sum: passes as f64,
            samples,
        }
    }

    /// Creates an estimate from an accumulated (possibly fractional) yield
    /// contribution; the sum is clamped to `[0, samples]` so
    /// [`Self::value`] always stays a probability.
    pub fn from_sum(sum: f64, samples: usize) -> Self {
        Self {
            sum: sum.clamp(0.0, samples as f64),
            samples,
        }
    }

    /// The estimated yield in `[0, 1]`; zero when no samples were taken.
    pub fn value(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }

    /// Binomial standard error of the estimate.
    pub fn std_error(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let p = self.value();
        (p * (1.0 - p) / self.samples as f64).sqrt()
    }

    /// Per-sample variance `p (1 - p)` of the Bernoulli indicator, the
    /// quantity the OCBA rule needs.
    pub fn bernoulli_variance(&self) -> f64 {
        let p = self.value();
        p * (1.0 - p)
    }

    /// Wilson-score confidence interval at the given z value
    /// (1.96 for 95 % confidence).
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        if self.samples == 0 {
            return (0.0, 1.0);
        }
        let n = self.samples as f64;
        let p = self.value();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        ((centre - half).max(0.0), (centre + half).min(1.0))
    }

    /// Merges two estimates (e.g. stage-1 and stage-2 samples of the same design).
    pub fn merge(&self, other: &YieldEstimate) -> YieldEstimate {
        YieldEstimate {
            sum: self.sum + other.sum,
            samples: self.samples + other.samples,
        }
    }
}

/// Estimates yield by evaluating `indicator` on `n` fresh unit-hypercube
/// points of dimension `dim` generated according to `plan`.
///
/// The indicator receives one unit point and must return `true` when the
/// circuit meets all specifications at the corresponding process sample.
pub fn estimate_yield<R, F>(
    rng: &mut R,
    plan: SamplingPlan,
    n: usize,
    dim: usize,
    mut indicator: F,
) -> YieldEstimate
where
    R: Rng + ?Sized,
    F: FnMut(&[f64]) -> bool,
{
    if n == 0 {
        return YieldEstimate::default();
    }
    let points = plan.generate(rng, n, dim);
    let passes = points.iter().filter(|p| indicator(p)).count();
    YieldEstimate::new(passes, n)
}

/// Convenience: the absolute deviation between an estimated yield and a
/// reference yield, expressed in percentage points (the metric of Tables 1
/// and 3 of the paper).
pub fn deviation_pp(estimate: f64, reference: f64) -> f64 {
    (estimate - reference).abs() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn value_and_errors() {
        let e = YieldEstimate::new(80, 100);
        assert!((e.value() - 0.8).abs() < 1e-12);
        assert!((e.std_error() - (0.8_f64 * 0.2 / 100.0).sqrt()).abs() < 1e-12);
        assert!((e.bernoulli_variance() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn empty_estimate_is_zero() {
        let e = YieldEstimate::default();
        assert_eq!(e.value(), 0.0);
        assert_eq!(e.std_error(), 0.0);
        assert_eq!(e.wilson_interval(1.96), (0.0, 1.0));
    }

    #[test]
    #[should_panic]
    fn passes_cannot_exceed_samples() {
        let _ = YieldEstimate::new(5, 3);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let e = YieldEstimate::new(95, 100);
        let (lo, hi) = e.wilson_interval(1.96);
        assert!(lo < e.value() && e.value() < hi);
        assert!(lo > 0.85 && hi <= 1.0);
        // Perfect observed yield: the Wilson upper bound stays just below 1,
        // reflecting the residual uncertainty of a finite sample.
        let p = YieldEstimate::new(100, 100);
        let (lo2, hi2) = p.wilson_interval(1.96);
        assert!(lo2 < 1.0 && hi2 > 0.99 && hi2 <= 1.0);
    }

    #[test]
    fn merge_accumulates_counts() {
        let a = YieldEstimate::new(10, 20);
        let b = YieldEstimate::new(30, 40);
        let m = a.merge(&b);
        assert_eq!(m.sum, 40.0);
        assert_eq!(m.samples, 60);
    }

    #[test]
    fn from_sum_clamps_into_the_probability_range() {
        // Importance-sampling sums can stray slightly outside [0, n]; the
        // constructor clamps so value() stays a probability.
        let high = YieldEstimate::from_sum(10.4, 10);
        assert_eq!(high.value(), 1.0);
        let low = YieldEstimate::from_sum(-0.3, 10);
        assert_eq!(low.value(), 0.0);
        let mid = YieldEstimate::from_sum(7.5, 10);
        assert!((mid.value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_is_clamped_for_degenerate_estimates() {
        // All-fail: the lower bound clamps to exactly 0 and the upper bound
        // stays strictly positive (residual uncertainty).
        let all_fail = YieldEstimate::new(0, 50);
        let (lo, hi) = all_fail.wilson_interval(1.96);
        assert!(lo.abs() < 1e-12, "lower {lo}");
        assert!(hi > 0.0 && hi < 0.2, "upper {hi}");
        // All-pass: mirror image at 1.
        let all_pass = YieldEstimate::new(50, 50);
        let (lo2, hi2) = all_pass.wilson_interval(1.96);
        assert!(hi2 > 1.0 - 1e-12 && hi2 <= 1.0, "upper {hi2}");
        assert!(lo2 > 0.8 && lo2 < 1.0, "lower {lo2}");
        // Zero samples: the interval is the whole unit range.
        assert_eq!(YieldEstimate::default().wilson_interval(1.96), (0.0, 1.0));
    }

    #[test]
    fn estimate_yield_matches_known_probability() {
        // Indicator passes when the first coordinate is below 0.7.
        let mut rng = StdRng::seed_from_u64(11);
        let e = estimate_yield(
            &mut rng,
            SamplingPlan::PrimitiveMonteCarlo,
            20_000,
            3,
            |u| u[0] < 0.7,
        );
        assert!((e.value() - 0.7).abs() < 0.02, "estimate {}", e.value());
    }

    #[test]
    fn lhs_estimate_is_less_noisy_than_pmc() {
        let runs = 100;
        let n = 64;
        let spread = |plan: SamplingPlan| {
            let mut vals = Vec::new();
            for seed in 0..runs {
                let mut rng = StdRng::seed_from_u64(seed);
                let e = estimate_yield(&mut rng, plan, n, 2, |u| u[0] + u[1] < 1.0);
                vals.push(e.value());
            }
            let m = vals.iter().sum::<f64>() / runs as f64;
            vals.iter().map(|v| (v - m).powi(2)).sum::<f64>() / runs as f64
        };
        let v_lhs = spread(SamplingPlan::LatinHypercube);
        let v_pmc = spread(SamplingPlan::PrimitiveMonteCarlo);
        assert!(v_lhs < v_pmc, "lhs {v_lhs} pmc {v_pmc}");
    }

    #[test]
    fn zero_samples_requested_returns_default() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = estimate_yield(&mut rng, SamplingPlan::LatinHypercube, 0, 4, |_| true);
        assert_eq!(e.samples, 0);
    }

    #[test]
    fn deviation_is_in_percentage_points() {
        assert!((deviation_pp(0.98, 0.9927) - 1.27).abs() < 1e-9);
        assert_eq!(deviation_pp(0.5, 0.5), 0.0);
    }
}
