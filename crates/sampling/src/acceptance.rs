//! Acceptance sampling (AS).
//!
//! The original acceptance-sampling method (Elias 1994) avoids spending
//! Monte-Carlo simulations on candidates (or regions of the statistical
//! space) that are far from the acceptance boundary: designs whose nominal
//! performances fail a specification outright are rejected without MC, and
//! designs whose nominal performances clear every specification by a margin
//! much larger than the observed performance spread are accepted with only a
//! small confirmation budget. Only candidates *near the border* of the
//! acceptance region receive the full Monte-Carlo treatment. The MOHECO
//! paper integrates AS (together with LHS) into every compared method.
//!
//! The implementation here works on *normalised specification margins*: for
//! each specification the circuit evaluator reports
//! `margin = (performance - bound) / scale` with the sign arranged so that
//! positive means pass. The classifier then compares the worst margin
//! against configurable thresholds.

/// Decision of the acceptance-sampling screen for one candidate design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsDecision {
    /// The nominal design violates at least one specification: yield is
    /// reported as 0 without any Monte-Carlo sampling.
    RejectWithoutSampling,
    /// The nominal design clears every specification by a wide margin:
    /// a reduced confirmation budget is sufficient.
    AcceptWithReducedSampling,
    /// The nominal design is near the acceptance boundary: full Monte-Carlo
    /// sampling is required.
    FullSampling,
}

/// Configuration of the acceptance-sampling screen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptanceSampler {
    /// Margin (in normalised units) above which a candidate is treated as
    /// deep inside the acceptance region.
    pub accept_margin: f64,
    /// Fraction of the full budget spent on candidates accepted with reduced
    /// sampling (confirmation samples), in `(0, 1]`.
    pub reduced_fraction: f64,
}

impl Default for AcceptanceSampler {
    fn default() -> Self {
        Self {
            accept_margin: 6.0,
            reduced_fraction: 0.2,
        }
    }
}

impl AcceptanceSampler {
    /// Creates a sampler with the given deep-acceptance margin and reduced
    /// budget fraction.
    ///
    /// # Panics
    ///
    /// Panics if `accept_margin <= 0` or `reduced_fraction` is outside `(0, 1]`.
    pub fn new(accept_margin: f64, reduced_fraction: f64) -> Self {
        assert!(accept_margin > 0.0, "accept margin must be positive");
        assert!(
            reduced_fraction > 0.0 && reduced_fraction <= 1.0,
            "reduced fraction must be in (0, 1]"
        );
        Self {
            accept_margin,
            reduced_fraction,
        }
    }

    /// Classifies one candidate from its normalised nominal specification
    /// margins (positive = pass).
    ///
    /// An empty margin slice is classified as [`AsDecision::FullSampling`],
    /// since nothing is known about the candidate.
    pub fn screen(&self, nominal_margins: &[f64]) -> AsDecision {
        if nominal_margins.is_empty() {
            return AsDecision::FullSampling;
        }
        if nominal_margins.iter().any(|m| m.is_nan()) {
            return AsDecision::RejectWithoutSampling;
        }
        let worst = nominal_margins
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        if worst < 0.0 {
            AsDecision::RejectWithoutSampling
        } else if worst > self.accept_margin {
            AsDecision::AcceptWithReducedSampling
        } else {
            AsDecision::FullSampling
        }
    }

    /// Number of Monte-Carlo samples to spend on a candidate given the screen
    /// decision and the full per-candidate budget.
    pub fn budget_for(&self, decision: AsDecision, full_budget: usize) -> usize {
        match decision {
            AsDecision::RejectWithoutSampling => 0,
            AsDecision::AcceptWithReducedSampling => {
                ((full_budget as f64) * self.reduced_fraction).ceil() as usize
            }
            AsDecision::FullSampling => full_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_reasonable() {
        let a = AcceptanceSampler::default();
        assert!(a.accept_margin > 0.0);
        assert!(a.reduced_fraction > 0.0 && a.reduced_fraction <= 1.0);
    }

    #[test]
    #[should_panic]
    fn invalid_margin_panics() {
        let _ = AcceptanceSampler::new(0.0, 0.5);
    }

    #[test]
    #[should_panic]
    fn invalid_fraction_panics() {
        let _ = AcceptanceSampler::new(3.0, 1.5);
    }

    #[test]
    fn failing_nominal_design_is_rejected() {
        let a = AcceptanceSampler::default();
        assert_eq!(
            a.screen(&[2.0, -0.5, 4.0]),
            AsDecision::RejectWithoutSampling
        );
        assert_eq!(a.budget_for(AsDecision::RejectWithoutSampling, 500), 0);
    }

    #[test]
    fn nan_margin_is_rejected() {
        let a = AcceptanceSampler::default();
        assert_eq!(
            a.screen(&[f64::NAN, 2.0]),
            AsDecision::RejectWithoutSampling
        );
    }

    #[test]
    fn deeply_feasible_design_gets_reduced_budget() {
        let a = AcceptanceSampler::new(6.0, 0.2);
        assert_eq!(
            a.screen(&[8.0, 10.0, 7.5]),
            AsDecision::AcceptWithReducedSampling
        );
        assert_eq!(
            a.budget_for(AsDecision::AcceptWithReducedSampling, 500),
            100
        );
    }

    #[test]
    fn border_design_gets_full_budget() {
        let a = AcceptanceSampler::new(6.0, 0.2);
        assert_eq!(a.screen(&[1.2, 8.0]), AsDecision::FullSampling);
        assert_eq!(a.budget_for(AsDecision::FullSampling, 500), 500);
    }

    #[test]
    fn empty_margins_require_full_sampling() {
        let a = AcceptanceSampler::default();
        assert_eq!(a.screen(&[]), AsDecision::FullSampling);
    }

    #[test]
    fn reduced_budget_rounds_up() {
        let a = AcceptanceSampler::new(6.0, 0.33);
        assert_eq!(a.budget_for(AsDecision::AcceptWithReducedSampling, 10), 4);
    }

    #[test]
    fn zero_full_budget_yields_zero_samples_for_every_decision() {
        let a = AcceptanceSampler::default();
        for decision in [
            AsDecision::RejectWithoutSampling,
            AsDecision::AcceptWithReducedSampling,
            AsDecision::FullSampling,
        ] {
            assert_eq!(a.budget_for(decision, 0), 0, "{decision:?}");
        }
    }

    #[test]
    fn boundary_margins_require_full_sampling() {
        // A margin of exactly zero is not a nominal failure (the spec is
        // met with equality), and a margin of exactly accept_margin is not
        // deep acceptance: both sit on the border and get the full budget.
        let a = AcceptanceSampler::new(6.0, 0.2);
        assert_eq!(a.screen(&[0.0, 8.0]), AsDecision::FullSampling);
        assert_eq!(a.screen(&[6.0, 9.0]), AsDecision::FullSampling);
        // Strictly past the border on each side, the decision flips.
        assert_eq!(a.screen(&[-1e-9, 8.0]), AsDecision::RejectWithoutSampling);
        assert_eq!(
            a.screen(&[6.0 + 1e-9, 9.0]),
            AsDecision::AcceptWithReducedSampling
        );
    }

    #[test]
    fn all_fail_and_all_pass_margins_are_decided_by_the_worst() {
        let a = AcceptanceSampler::default();
        // Every spec failing and exactly one spec failing are the same
        // decision: rejection is driven by the worst margin alone.
        assert_eq!(
            a.screen(&[-3.0, -1.0, -0.2]),
            AsDecision::RejectWithoutSampling
        );
        // All specs deeply passing → reduced budget; the reduced budget of
        // a unit-fraction sampler is the full budget (upper clamp).
        let full = AcceptanceSampler::new(6.0, 1.0);
        assert_eq!(
            full.screen(&[10.0, 20.0, 30.0]),
            AsDecision::AcceptWithReducedSampling
        );
        assert_eq!(
            full.budget_for(AsDecision::AcceptWithReducedSampling, 500),
            500
        );
    }
}
