//! Latin Hypercube Sampling (LHS).
//!
//! The MOHECO paper replaces primitive Monte-Carlo sampling with LHS (a
//! design-of-experiments technique, Stein 1987) to reduce the variance of the
//! yield estimate for a given number of circuit simulations. The generator
//! here produces points in the unit hypercube `[0, 1)^d`; the
//! `moheco-process` crate maps them to physical process-parameter samples via
//! the normal inverse CDF.

use rand::Rng;

/// Generates `n` Latin-Hypercube points in `[0, 1)^dim`.
///
/// Every dimension is partitioned into `n` equal strata; each stratum
/// receives exactly one point, and the strata are paired across dimensions by
/// independent random permutations. The returned matrix has one row per
/// sample.
///
/// # Panics
///
/// Panics if `n == 0` or `dim == 0`.
pub fn latin_hypercube<R: Rng + ?Sized>(rng: &mut R, n: usize, dim: usize) -> Vec<Vec<f64>> {
    assert!(n > 0, "sample count must be positive");
    assert!(dim > 0, "dimension must be positive");
    let mut points = vec![vec![0.0; dim]; n];
    let mut perm: Vec<usize> = (0..n).collect();
    for d in 0..dim {
        // Fisher–Yates shuffle of the stratum indices for this dimension.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for (i, point) in points.iter_mut().enumerate() {
            let stratum = perm[i] as f64;
            let jitter: f64 = rng.gen();
            point[d] = (stratum + jitter) / n as f64;
        }
    }
    points
}

/// Generates `n` primitive Monte-Carlo (uniform i.i.d.) points in `[0, 1)^dim`.
///
/// # Panics
///
/// Panics if `dim == 0`.
pub fn primitive_monte_carlo<R: Rng + ?Sized>(rng: &mut R, n: usize, dim: usize) -> Vec<Vec<f64>> {
    assert!(dim > 0, "dimension must be positive");
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

/// Sampling plans available to the Monte-Carlo yield estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingPlan {
    /// Primitive (i.i.d.) Monte Carlo.
    PrimitiveMonteCarlo,
    /// Latin Hypercube Sampling (the workspace default, as in the paper).
    #[default]
    LatinHypercube,
}

impl SamplingPlan {
    /// Generates `n` unit-hypercube points of dimension `dim` according to the plan.
    pub fn generate<R: Rng + ?Sized>(self, rng: &mut R, n: usize, dim: usize) -> Vec<Vec<f64>> {
        match self {
            SamplingPlan::PrimitiveMonteCarlo => primitive_monte_carlo(rng, n, dim),
            SamplingPlan::LatinHypercube => latin_hypercube(rng, n, dim),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lhs_points_are_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = latin_hypercube(&mut rng, 50, 7);
        assert_eq!(pts.len(), 50);
        for p in &pts {
            assert_eq!(p.len(), 7);
            for &x in p {
                assert!((0.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn lhs_stratification_one_point_per_stratum() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20;
        let pts = latin_hypercube(&mut rng, n, 3);
        for d in 0..3 {
            let mut counts = vec![0usize; n];
            for p in &pts {
                let stratum = (p[d] * n as f64).floor() as usize;
                counts[stratum.min(n - 1)] += 1;
            }
            assert!(
                counts.iter().all(|&c| c == 1),
                "dimension {d} strata counts {counts:?}"
            );
        }
    }

    #[test]
    fn lhs_mean_estimate_has_lower_variance_than_pmc() {
        // Estimate E[x] for x uniform; LHS should have (much) lower variance.
        let runs = 200;
        let n = 16;
        let mut lhs_means = Vec::new();
        let mut pmc_means = Vec::new();
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(seed);
            let l = latin_hypercube(&mut rng, n, 1);
            lhs_means.push(l.iter().map(|p| p[0]).sum::<f64>() / n as f64);
            let p = primitive_monte_carlo(&mut rng, n, 1);
            pmc_means.push(p.iter().map(|q| q[0]).sum::<f64>() / n as f64);
        }
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
        };
        assert!(
            var(&lhs_means) < var(&pmc_means) / 5.0,
            "lhs {} pmc {}",
            var(&lhs_means),
            var(&pmc_means)
        );
    }

    #[test]
    fn pmc_points_are_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = primitive_monte_carlo(&mut rng, 100, 5);
        assert_eq!(pts.len(), 100);
        for p in &pts {
            for &x in p {
                assert!((0.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn plan_dispatch() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = SamplingPlan::LatinHypercube.generate(&mut rng, 8, 2);
        let b = SamplingPlan::PrimitiveMonteCarlo.generate(&mut rng, 8, 2);
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 8);
    }

    #[test]
    #[should_panic]
    fn zero_samples_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = latin_hypercube(&mut rng, 0, 3);
    }

    #[test]
    #[should_panic]
    fn zero_dimension_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = primitive_monte_carlo(&mut rng, 3, 0);
    }
}
