//! `moheco-sampling` — Monte-Carlo yield-estimation substrate.
//!
//! The paper keeps Monte-Carlo simulation as the yield estimator (for its
//! generality and accuracy) and accelerates it with two standard techniques
//! that this crate provides, alongside the estimator itself:
//!
//! * [`lhs`] — Latin Hypercube Sampling and primitive Monte-Carlo generation
//!   of unit-hypercube points ([`lhs::SamplingPlan`]).
//! * [`acceptance`] — the acceptance-sampling screen that skips Monte-Carlo
//!   sampling for candidates far from the acceptance-region border.
//! * [`yield_est`] — the Bernoulli yield estimator, standard errors and
//!   Wilson confidence intervals.
//! * [`estimator`] — the pluggable variance-reduction estimator layer
//!   ([`estimator::YieldEstimator`]): plain Monte-Carlo, stratified LHS,
//!   antithetic pairs and mean-shifted importance sampling, each with its
//!   own correct variance formula.
//! * [`oracle`] — closed-form yield oracles for analytic benchmarks (and the
//!   canonical standard-normal CDF / quantile approximations).
//! * [`stream`] — reproducible RNG streams and the shared simulation counter
//!   used to fill Tables 2 and 4.
//!
//! # Example
//!
//! ```
//! use moheco_sampling::{estimate_yield, SamplingPlan};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // A toy "circuit" passes when the sum of two uniform variates is below 1.5.
//! let est = estimate_yield(&mut rng, SamplingPlan::LatinHypercube, 2000, 2, |u| {
//!     u[0] + u[1] < 1.5
//! });
//! assert!((est.value() - 0.875).abs() < 0.03);
//! ```

#![warn(missing_docs)]

pub mod acceptance;
pub mod estimator;
pub mod lhs;
pub mod oracle;
pub mod stream;
pub mod yield_est;

pub use acceptance::{AcceptanceSampler, AsDecision};
pub use estimator::{
    estimate_with, weighted_outcome, AntitheticEstimator, BlockPoints, EstimatedYield,
    EstimatorKind, ImportanceSamplingEstimator, MonteCarloEstimator, StratifiedLhsEstimator,
    YieldEstimator, Z_95,
};
pub use lhs::{latin_hypercube, primitive_monte_carlo, SamplingPlan};
pub use oracle::{
    gaussian_margin_yield, independent_margins_yield, standard_normal_cdf, standard_normal_quantile,
};
pub use stream::{splitmix64, RngStreams, SimulationCounter};
pub use yield_est::{deviation_pp, estimate_yield, YieldEstimate};
