//! Variance-reduction estimators versus the closed-form oracle scenarios.
//!
//! The estimator layer's hot-path claim is quantified here, against ground
//! truth rather than against another Monte-Carlo run:
//!
//! * every estimator is **unbiased** — its mean estimate over independent
//!   engine seeds tracks the oracle yield;
//! * the stratified-LHS and antithetic estimators reach plain Monte-Carlo's
//!   95 % CI half-width with **at least 25 % fewer `simulate()` calls**
//!   (verified through the engine's executed-simulation counter, so cache
//!   hits cannot fake the saving);
//! * importance sampling is at least as tight as plain Monte-Carlo at the
//!   same budget on every scenario.
//!
//! The estimates are probed at a *moderate-yield design* (true yield ≈ 0.8)
//! found by bisecting from the reference design toward a bounds corner.
//! That is the regime the two-stage flow actually ranks candidates in:
//! near-certain designs (yield ≈ 1) are promoted or screened cheaply either
//! way, while borderline designs are where CI width drives the budget.

use moheco::{Benchmark, YieldProblem};
use moheco_runtime::{EngineConfig, EvalEngine, ParallelEngine, SerialEngine};
use moheco_sampling::{EstimatorKind, Z_95};
use moheco_scenarios::{all_scenarios, Scenario};
use std::sync::Arc;

/// A fresh serial engine with the given master seed and estimator.
fn serial(seed: u64, kind: EstimatorKind) -> Arc<dyn EvalEngine> {
    Arc::new(SerialEngine::new(
        EngineConfig::default().with_seed(seed).with_estimator(kind),
    ))
}

/// Plain-MC reference budget.
const BUDGET: usize = 400;
/// Budget for the variance-reduced estimators: 25 % fewer simulations.
const REDUCED: usize = 300;
/// Independent engine seeds averaged per measurement.
const SEEDS: u64 = 16;
/// Target true yield of the probe design: the borderline regime where CI
/// width actually drives the sampling budget, and where both stratification
/// and antithetic pairing have measurable room (the pair correlation of a
/// pass/fail indicator weakens as the yield approaches 1). Deliberately
/// chosen so `Φ⁻¹(TARGET)` does not align a one-dimensional failure
/// threshold with an LHS stratum edge (a round 0.70 or 0.80 would make the
/// stratified variance degenerately zero).
const TARGET: f64 = 0.69;

fn oracle_scenarios() -> Vec<Arc<dyn Scenario>> {
    let scenarios: Vec<Arc<dyn Scenario>> = all_scenarios()
        .into_iter()
        .filter(|s| s.has_true_yield())
        .collect();
    assert_eq!(scenarios.len(), 5, "expected the five oracle scenarios");
    scenarios
}

/// Finds a design with true yield ≈ [`TARGET`] by bisecting along the
/// segment from the reference design to a bounds corner whose yield falls
/// below the target.
fn probe_design(bench: &dyn Benchmark) -> Vec<f64> {
    let x0 = bench.reference_design();
    let bounds = bench.bounds();
    let corners: [Vec<f64>; 2] = [
        bounds.iter().map(|b| b.1).collect(),
        bounds.iter().map(|b| b.0).collect(),
    ];
    let truth_at = |corner: &[f64], t: f64| -> (f64, Vec<f64>) {
        let x: Vec<f64> = x0
            .iter()
            .zip(corner)
            .map(|(&a, &c)| a + t * (c - a))
            .collect();
        let y = bench.true_yield(&x).expect("oracle scenario");
        (y, x)
    };
    let reference_truth = bench.true_yield(&x0).expect("oracle scenario");
    if reference_truth <= TARGET {
        // Already in the moderate-yield regime (margin_wall).
        assert!(reference_truth > 0.5, "reference yield too low");
        return x0;
    }
    for corner in &corners {
        if truth_at(corner, 1.0).0 >= TARGET {
            continue;
        }
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if truth_at(corner, mid).0 > TARGET {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (truth, x) = truth_at(corner, 0.5 * (lo + hi));
        assert!(
            (truth - TARGET).abs() < 0.01,
            "bisection failed: truth {truth}"
        );
        return x;
    }
    panic!("no bounds corner drops the yield below {TARGET}");
}

/// Mean estimate and mean reported 95 % half-width of `kind` at `n` samples
/// over [`SEEDS`] independent engines, asserting that exactly `n`
/// simulations were executed per engine (the cost is real, not cached).
fn measure(scenario: &dyn Scenario, x: &[f64], kind: EstimatorKind, n: usize) -> (f64, f64) {
    let mut value_sum = 0.0;
    let mut hw_sum = 0.0;
    for seed in 0..SEEDS {
        let problem: YieldProblem<dyn Benchmark> = scenario.build(serial(0xE57 + seed, kind));
        let report = problem.report_first(x, n);
        assert_eq!(report.samples, n);
        assert_eq!(
            problem.simulations(),
            n as u64,
            "{}/{:?}: simulate() calls must equal the requested budget",
            scenario.name(),
            kind
        );
        value_sum += report.value;
        hw_sum += report.half_width(Z_95);
    }
    (value_sum / SEEDS as f64, hw_sum / SEEDS as f64)
}

#[test]
fn every_estimator_is_unbiased_on_every_oracle_scenario() {
    for scenario in oracle_scenarios() {
        let bench = scenario.bench();
        let x = probe_design(bench.as_ref());
        let truth = bench.true_yield(&x).unwrap();
        for kind in EstimatorKind::ALL {
            let (mean, _) = measure(scenario.as_ref(), &x, kind, BUDGET);
            assert!(
                (mean - truth).abs() < 0.025,
                "{}/{:?}: mean {mean:.4} vs truth {truth:.4}",
                scenario.name(),
                kind
            );
        }
    }
}

#[test]
fn lhs_and_antithetic_reach_mc_half_width_with_25_percent_fewer_simulations() {
    for scenario in oracle_scenarios() {
        let bench = scenario.bench();
        let x = probe_design(bench.as_ref());
        let (_, mc_hw) = measure(scenario.as_ref(), &x, EstimatorKind::MonteCarlo, BUDGET);
        for kind in [EstimatorKind::StratifiedLhs, EstimatorKind::Antithetic] {
            let (_, hw) = measure(scenario.as_ref(), &x, kind, REDUCED);
            println!(
                "{}: {} half-width {hw:.4} at {REDUCED} sims vs mc {mc_hw:.4} at {BUDGET}",
                scenario.name(),
                kind.label()
            );
            assert!(
                hw <= mc_hw,
                "{}/{:?}: {hw:.4} at {REDUCED} sims wider than MC's {mc_hw:.4} at {BUDGET}",
                scenario.name(),
                kind
            );
        }
    }
}

#[test]
fn importance_sampling_is_tighter_than_mc_in_the_high_yield_regime() {
    // Mean-shift importance sampling targets the rare-failure regime (the
    // reference designs, yield ≈ 0.87–0.997): concentrating samples on the
    // dominant failure mode shrinks the interval of the failure-probability
    // estimate exactly when failures are rare. It must also stay unbiased
    // there.
    for scenario in oracle_scenarios() {
        let bench = scenario.bench();
        let x = bench.reference_design();
        let truth = bench.true_yield(&x).unwrap();
        let (_, mc_hw) = measure(scenario.as_ref(), &x, EstimatorKind::MonteCarlo, BUDGET);
        let (is_mean, is_hw) = measure(
            scenario.as_ref(),
            &x,
            EstimatorKind::ImportanceSampling,
            BUDGET,
        );
        assert!(
            (is_mean - truth).abs() < 0.02,
            "{}: IS mean {is_mean:.4} vs truth {truth:.4}",
            scenario.name()
        );
        assert!(
            is_hw < mc_hw,
            "{}: IS {is_hw:.4} not tighter than MC {mc_hw:.4}",
            scenario.name()
        );
    }
}

#[test]
fn estimator_choice_preserves_parallel_equals_serial_on_a_scenario() {
    // End-to-end determinism: the same scenario estimated through serial and
    // parallel engines under every estimator returns identical outcome
    // streams and counts.
    let scenario = moheco_scenarios::find_scenario("quadratic_feasibility").unwrap();
    let x = scenario.bench().reference_design();
    for kind in EstimatorKind::ALL {
        let serial_problem = scenario.build(serial(42, kind));
        let parallel_problem = scenario.build(Arc::new(ParallelEngine::new(
            EngineConfig::default()
                .with_seed(42)
                .with_estimator(kind)
                .with_workers(3),
        )));
        let a = serial_problem.outcomes(&x, 0, 230);
        let b = parallel_problem.outcomes(&x, 0, 230);
        assert_eq!(a, b, "{kind:?} diverged between engines");
        assert_eq!(serial_problem.simulations(), parallel_problem.simulations());
        let ra = serial_problem.report_first(&x, 230);
        let rb = parallel_problem.report_first(&x, 230);
        assert_eq!(ra, rb);
    }
}
