//! Monte-Carlo estimates of the synthetic scenarios must converge to their
//! closed-form ground truth, for the serial and the parallel engine alike.
//!
//! These are the assertions the ISSUE calls "estimator accuracy asserted,
//! not eyeballed": every analytic scenario's yield oracle is checked against
//! a seeded Monte-Carlo estimate at several design points, and the parallel
//! engine must reproduce the serial engine's outcomes bit-identically.

use moheco_runtime::{EngineConfig, EvalEngine, ParallelEngine, SerialEngine};
use moheco_sampling::SamplingPlan;
use moheco_scenarios::{all_scenarios, Scenario};
use std::sync::Arc;

const SAMPLES: usize = 4000;
/// Binomial standard error at p = 0.5 and n = 4000 is ~0.008; LHS
/// stratification tightens it further. 0.025 is > 3 sigma.
const TOLERANCE: f64 = 0.025;

fn engine(seed: u64, parallel: bool) -> Arc<dyn EvalEngine> {
    let config = EngineConfig {
        plan: SamplingPlan::LatinHypercube,
        seed,
        ..EngineConfig::default()
    };
    if parallel {
        Arc::new(ParallelEngine::new(config.with_workers(3)))
    } else {
        Arc::new(SerialEngine::new(config))
    }
}

/// Design points to check: the reference design plus two deterministic
/// perturbations towards the bounds (lower-yield regions).
fn probe_points(scenario: &dyn Scenario) -> Vec<Vec<f64>> {
    let bench = scenario.bench();
    let reference = bench.reference_design();
    let bounds = bench.bounds();
    let towards = |frac: f64| -> Vec<f64> {
        reference
            .iter()
            .zip(&bounds)
            .enumerate()
            .map(|(i, (&r, &(lo, hi)))| {
                let target = if i % 2 == 0 { hi } else { lo };
                r + frac * (target - r)
            })
            .collect()
    };
    let points = vec![towards(0.0), towards(0.15), towards(0.3)];
    points
}

fn check_convergence(parallel: bool) {
    for scenario in all_scenarios() {
        if !scenario.has_true_yield() {
            continue; // circuits have no closed form; covered by table tests
        }
        let problem = scenario.build(engine(0xC0FFEE, parallel));
        for (k, x) in probe_points(scenario.as_ref()).iter().enumerate() {
            let truth = problem
                .true_yield(x)
                .expect("analytic scenario has a closed form");
            let outcomes = problem.outcomes(x, 0, SAMPLES);
            let est = outcomes.iter().filter(|&&o| o > 0.5).count() as f64 / SAMPLES as f64;
            assert!(
                (est - truth).abs() <= TOLERANCE,
                "{} point {k}: estimate {est:.4} vs truth {truth:.4} ({} engine)",
                scenario.name(),
                if parallel { "parallel" } else { "serial" },
            );
        }
    }
}

#[test]
fn serial_estimates_converge_to_closed_form_truth() {
    check_convergence(false);
}

#[test]
fn parallel_estimates_converge_to_closed_form_truth() {
    check_convergence(true);
}

#[test]
fn parallel_outcomes_are_bit_identical_to_serial() {
    for scenario in all_scenarios() {
        if !scenario.has_true_yield() {
            continue;
        }
        let serial = scenario.build(engine(7, false));
        let parallel = scenario.build(engine(7, true));
        let x = scenario.bench().reference_design();
        assert_eq!(
            serial.outcomes(&x, 0, 600),
            parallel.outcomes(&x, 0, 600),
            "{}",
            scenario.name()
        );
        assert_eq!(serial.simulations(), parallel.simulations());
    }
}

#[test]
fn estimates_converge_from_independent_seeds() {
    // The tolerance must hold across engine seeds, not for one lucky stream.
    let scenario = moheco_scenarios::find_scenario("margin_wall").unwrap();
    let x = scenario.bench().reference_design();
    for seed in [1u64, 2, 3] {
        let problem = scenario.build(engine(seed, false));
        let truth = problem.true_yield(&x).unwrap();
        let outcomes = problem.outcomes(&x, 0, SAMPLES);
        let est = outcomes.iter().filter(|&&o| o > 0.5).count() as f64 / SAMPLES as f64;
        assert!(
            (est - truth).abs() <= TOLERANCE,
            "seed {seed}: estimate {est:.4} vs truth {truth:.4}"
        );
    }
}
