//! Every registered scenario upholds the budget-attribution invariant: under
//! a root span, the sum of per-phase self simulations equals the engine's
//! executed-simulation counter exactly — no code path spends budget outside
//! the span taxonomy.

use moheco::{MohecoConfig, YieldOptimizer, YieldStrategy};
use moheco_obs::{Span, Tracer};
use moheco_runtime::{attach_engine_probe, EngineConfig, EvalEngine, SerialEngine};
use moheco_sampling::SamplingPlan;
use moheco_scenarios::all_scenarios;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn every_scenario_attributes_its_full_budget_to_phases() {
    for scenario in all_scenarios() {
        let engine: Arc<dyn EvalEngine> = Arc::new(SerialEngine::new(EngineConfig {
            plan: SamplingPlan::LatinHypercube,
            seed: 7,
            ..EngineConfig::default()
        }));
        let tracer = Tracer::aggregating();
        attach_engine_probe(&tracer, &engine);
        let root = Span::enter(&tracer, "run");
        let problem = scenario.build(engine.clone()).with_tracer(tracer.clone());
        let optimizer = YieldOptimizer::new(MohecoConfig {
            memetic_enabled: true,
            strategy: YieldStrategy::TwoStageOo,
            // A short run: the invariant is boundary accounting, which five
            // generations exercise as thoroughly as twenty-five.
            max_generations: 5,
            ..MohecoConfig::fast()
        });
        let mut rng = StdRng::seed_from_u64(7);
        let result = optimizer.run_from(&problem, &scenario.warm_start(), &mut rng);
        drop(root);

        let breakdown = tracer.breakdown();
        assert_eq!(
            breakdown.total_simulations(),
            engine.simulations(),
            "{}: unattributed simulations",
            scenario.name()
        );
        assert_eq!(
            breakdown.total_cache_hits(),
            problem.engine_stats().cache_hits,
            "{}: unattributed cache hits",
            scenario.name()
        );
        assert!(
            breakdown.get("run/optimize/screening").is_some(),
            "{}: screening phase missing",
            scenario.name()
        );
        // The result's own breakdown (captured inside the optimizer, while
        // the root span was still open) carries the same nested paths.
        assert!(result.phase_breakdown.get("run/optimize").is_some());
    }
}
