//! Synthetic analytic yield benchmarks with closed-form ground truth.
//!
//! Each benchmark is a set of specifications of the form
//! `margin_j(x) + w_j · z ≥ 0`, where `margin_j` is an analytic function of
//! the design point, `z` is a vector of independent standard normals (mapped
//! from the engine's unit-hypercube points through the normal quantile) and
//! every specification owns a *disjoint* block of the statistical variables.
//! The joint yield is then exactly
//!
//! ```text
//! Y(x) = Π_j Φ( margin_j(x) / ‖w_j‖ )
//! ```
//!
//! (see [`moheco_sampling::oracle`]), so Monte-Carlo estimator accuracy can
//! be asserted against truth instead of against a bigger Monte-Carlo run.
//! Nominal margins are reported in units of each spec's noise deviation
//! (z-scores), which makes the acceptance-sampling screen behave exactly as
//! it does for circuits.

use moheco::Benchmark;
use moheco_runtime::SimulationModel;
use moheco_sampling::oracle::{independent_margins_yield, standard_normal_quantile};

/// Analytic form of one specification margin `margin(x)`.
#[derive(Debug, Clone, PartialEq)]
pub enum MarginForm {
    /// `threshold - Σ_i weights[i] * (x[i] - center[i])²`.
    Quadratic {
        /// Centre of the feasibility basin.
        center: Vec<f64>,
        /// Per-dimension curvature weights (non-negative).
        weights: Vec<f64>,
        /// Feasibility threshold (margin at the centre).
        threshold: f64,
    },
    /// `threshold - (x-center)ᵀ A (x-center)` with a full (row-major,
    /// symmetric positive-definite) matrix `A` — a rotated ellipsoid.
    Ellipsoid {
        /// Centre of the ellipsoid.
        center: Vec<f64>,
        /// Row-major `d × d` quadratic-form matrix.
        matrix: Vec<f64>,
        /// Feasibility threshold.
        threshold: f64,
    },
    /// `threshold - min(q₁(x), q₂(x))` with two weighted-quadratic basins —
    /// a multi-modal acceptance region.
    TwoBasin {
        /// Centres of the two basins.
        centers: [Vec<f64>; 2],
        /// Curvature weights of the two basins.
        weights: [Vec<f64>; 2],
        /// Feasibility threshold.
        threshold: f64,
    },
    /// `offset + weights · x` — a flat acceptance boundary.
    Linear {
        /// Linear coefficients.
        weights: Vec<f64>,
        /// Margin at the origin.
        offset: f64,
    },
}

impl MarginForm {
    /// The analytic margin of design `x`.
    pub fn margin(&self, x: &[f64]) -> f64 {
        fn quad(x: &[f64], center: &[f64], weights: &[f64]) -> f64 {
            x.iter()
                .zip(center)
                .zip(weights)
                .map(|((&xi, &ci), &wi)| wi * (xi - ci) * (xi - ci))
                .sum()
        }
        match self {
            MarginForm::Quadratic {
                center,
                weights,
                threshold,
            } => threshold - quad(x, center, weights),
            MarginForm::Ellipsoid {
                center,
                matrix,
                threshold,
            } => {
                let d = center.len();
                let dx: Vec<f64> = x.iter().zip(center).map(|(&xi, &ci)| xi - ci).collect();
                let mut q = 0.0;
                for (i, &dxi) in dx.iter().enumerate() {
                    for (j, &dxj) in dx.iter().enumerate() {
                        q += dxi * matrix[i * d + j] * dxj;
                    }
                }
                threshold - q
            }
            MarginForm::TwoBasin {
                centers,
                weights,
                threshold,
            } => {
                let q1 = quad(x, &centers[0], &weights[0]);
                let q2 = quad(x, &centers[1], &weights[1]);
                threshold - q1.min(q2)
            }
            MarginForm::Linear { weights, offset } => {
                offset + x.iter().zip(weights).map(|(&xi, &wi)| wi * xi).sum::<f64>()
            }
        }
    }
}

/// One specification of a synthetic benchmark: an analytic margin plus a
/// block of Gaussian noise variables.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Human-readable name (e.g. `"sphere"`).
    pub name: String,
    /// The analytic nominal margin.
    pub form: MarginForm,
    /// Index of the spec's first statistical variable.
    pub noise_offset: usize,
    /// Noise weights `w`; the spec's margin noise is `w · z` over its block,
    /// i.e. Gaussian with standard deviation `‖w‖`.
    pub noise_weights: Vec<f64>,
}

impl SyntheticSpec {
    /// Standard deviation of the spec's margin noise (`‖w‖₂`).
    pub fn sigma(&self) -> f64 {
        self.noise_weights.iter().map(|w| w * w).sum::<f64>().sqrt()
    }
}

/// A synthetic analytic yield benchmark (see the module documentation).
#[derive(Debug, Clone)]
pub struct SyntheticBench {
    name: String,
    bounds: Vec<(f64, f64)>,
    reference: Vec<f64>,
    specs: Vec<SyntheticSpec>,
    stat_dim: usize,
}

impl SyntheticBench {
    /// Creates a synthetic benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the reference design is outside the bounds, any spec has an
    /// empty or zero noise block, or the noise blocks of two specs overlap
    /// (overlap would break the independence the closed-form yield relies
    /// on).
    pub fn new(
        name: impl Into<String>,
        bounds: Vec<(f64, f64)>,
        reference: Vec<f64>,
        specs: Vec<SyntheticSpec>,
    ) -> Self {
        assert!(!bounds.is_empty(), "need at least one design variable");
        assert_eq!(reference.len(), bounds.len(), "reference/bounds mismatch");
        for (v, (lo, hi)) in reference.iter().zip(&bounds) {
            assert!(lo <= v && v <= hi, "reference design out of bounds");
        }
        assert!(!specs.is_empty(), "need at least one specification");
        let mut blocks: Vec<(usize, usize)> = specs
            .iter()
            .map(|s| {
                assert!(!s.noise_weights.is_empty(), "empty noise block");
                assert!(s.sigma() > 0.0, "zero noise deviation");
                (s.noise_offset, s.noise_offset + s.noise_weights.len())
            })
            .collect();
        blocks.sort_unstable();
        for pair in blocks.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0,
                "noise blocks overlap: independence (and the closed-form yield) would break"
            );
        }
        let stat_dim = blocks.last().expect("non-empty").1;
        Self {
            name: name.into(),
            bounds,
            reference,
            specs,
            stat_dim,
        }
    }

    /// The specifications.
    pub fn specs(&self) -> &[SyntheticSpec] {
        &self.specs
    }

    /// The exact yield of design `x` (always available for synthetic
    /// benchmarks).
    pub fn exact_yield(&self, x: &[f64]) -> f64 {
        let terms: Vec<(f64, f64)> = self
            .specs
            .iter()
            .map(|s| (s.form.margin(x), s.sigma()))
            .collect();
        independent_margins_yield(&terms)
    }
}

impl SimulationModel for SyntheticBench {
    fn unit_dimension(&self) -> usize {
        self.stat_dim
    }

    fn simulate_point(&self, x: &[f64], u: &[f64]) -> f64 {
        for spec in &self.specs {
            let noise: f64 = spec
                .noise_weights
                .iter()
                .enumerate()
                .map(|(k, &w)| w * standard_normal_quantile(u[spec.noise_offset + k]))
                .sum();
            if spec.form.margin(x) + noise < 0.0 {
                return 0.0;
            }
        }
        1.0
    }

    fn nominal(&self, x: &[f64]) -> Vec<f64> {
        // Margins as z-scores, so the acceptance-sampling screen's thresholds
        // mean the same thing they mean for circuits.
        self.specs
            .iter()
            .map(|s| s.form.margin(x) / s.sigma())
            .collect()
    }

    fn importance_shift(&self, x: &[f64]) -> Option<Vec<f64>> {
        // Dominant failure spec: the one whose boundary sits fewest sigmas
        // away from the nominal margin. Shift the mean of that spec's noise
        // block to the boundary (classic mean-shift importance sampling for
        // a linear limit state), capped at 3σ so likelihood weights stay
        // bounded. The shift is a pure function of `x`, as the engine's
        // determinism contract requires.
        let (spec, z_dist) = self
            .specs
            .iter()
            .map(|s| (s, s.form.margin(x) / s.sigma()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite margins"))?;
        if z_dist <= 0.0 {
            // Nominally failing design: the acceptance screen rejects it
            // before any Monte-Carlo sampling, so no shift is useful.
            return None;
        }
        let scale = z_dist.min(3.0) / spec.sigma();
        let mut shift = vec![0.0; self.stat_dim];
        for (k, &w) in spec.noise_weights.iter().enumerate() {
            // Failure direction of `margin + w · z ≥ 0` is −w; normalise by
            // σ = ‖w‖ so the shifted mean lands on (or 3σ toward) the
            // boundary.
            shift[spec.noise_offset + k] = -scale * w;
        }
        Some(shift)
    }
}

impl Benchmark for SyntheticBench {
    fn name(&self) -> &str {
        &self.name
    }

    fn dimension(&self) -> usize {
        self.bounds.len()
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.bounds.clone()
    }

    fn reference_design(&self) -> Vec<f64> {
        self.reference.clone()
    }

    fn true_yield(&self, x: &[f64]) -> Option<f64> {
        Some(self.exact_yield(x))
    }

    fn as_model(&self) -> &dyn SimulationModel {
        self
    }
}

/// Builds a deterministic rotated SPD matrix `Rᵀ D R` for the ellipsoid
/// benchmark: `D` is log-spaced between `cond_lo` and `cond_hi` and `R` is a
/// product of Givens rotations with fixed angles.
pub fn rotated_spd_matrix(d: usize, cond_lo: f64, cond_hi: f64) -> Vec<f64> {
    assert!(d >= 2 && cond_lo > 0.0 && cond_hi >= cond_lo);
    // Start from the diagonal.
    let mut a = vec![0.0; d * d];
    for i in 0..d {
        let t = i as f64 / (d - 1) as f64;
        a[i * d + i] = cond_lo * (cond_hi / cond_lo).powf(t);
    }
    // Apply Givens rotations G(i, i+1, θ_i) on both sides: A <- Gᵀ A G.
    for i in 0..d - 1 {
        let theta = 0.4 + 0.3 * i as f64;
        let (s, c) = theta.sin_cos();
        // Columns i and i+1: A <- A G.
        for r in 0..d {
            let (ai, aj) = (a[r * d + i], a[r * d + i + 1]);
            a[r * d + i] = c * ai - s * aj;
            a[r * d + i + 1] = s * ai + c * aj;
        }
        // Rows i and i+1: A <- Gᵀ A.
        for col in 0..d {
            let (ai, aj) = (a[i * d + col], a[(i + 1) * d + col]);
            a[i * d + col] = c * ai - s * aj;
            a[(i + 1) * d + col] = s * ai + c * aj;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_bench() -> SyntheticBench {
        SyntheticBench::new(
            "unit_sphere",
            vec![(-2.0, 2.0); 3],
            vec![0.0; 3],
            vec![SyntheticSpec {
                name: "sphere".into(),
                form: MarginForm::Quadratic {
                    center: vec![0.0; 3],
                    weights: vec![1.0; 3],
                    threshold: 2.0,
                },
                noise_offset: 0,
                noise_weights: vec![1.0],
            }],
        )
    }

    #[test]
    fn margins_and_truth_are_consistent() {
        let b = simple_bench();
        let x = vec![0.0; 3];
        assert_eq!(b.nominal(&x), vec![2.0]);
        let truth = b.exact_yield(&x);
        assert!(
            (truth - moheco_sampling::standard_normal_cdf(2.0)).abs() < 1e-12,
            "truth {truth}"
        );
        assert_eq!(Benchmark::true_yield(&b, &x), Some(truth));
    }

    #[test]
    fn simulate_point_matches_the_margin_sign() {
        let b = simple_bench();
        let x = vec![0.0; 3];
        // u = Φ(-margin) puts the noise exactly on the boundary; nudge both
        // ways.
        let boundary = moheco_sampling::standard_normal_cdf(-2.0);
        assert_eq!(b.simulate_point(&x, &[boundary * 1.5]), 1.0);
        assert_eq!(b.simulate_point(&x, &[boundary * 0.5]), 0.0);
    }

    #[test]
    fn ellipsoid_margin_is_rotation_invariant_at_center() {
        let m = rotated_spd_matrix(4, 0.5, 3.0);
        let form = MarginForm::Ellipsoid {
            center: vec![1.0; 4],
            matrix: m.clone(),
            threshold: 2.5,
        };
        assert!((form.margin(&[1.0; 4]) - 2.5).abs() < 1e-12);
        // The matrix is symmetric and positive definite: any off-centre
        // point has a smaller margin.
        for i in 0..4 {
            for j in 0..4 {
                assert!((m[i * 4 + j] - m[j * 4 + i]).abs() < 1e-9, "asymmetry");
            }
        }
        let mut x = vec![1.0; 4];
        x[2] = 2.0;
        assert!(form.margin(&x) < 2.5);
    }

    #[test]
    fn two_basin_is_multi_modal() {
        let form = MarginForm::TwoBasin {
            centers: [vec![-1.5, 0.0], vec![1.5, 0.0]],
            weights: [vec![1.0, 1.0], vec![0.5, 0.5]],
            threshold: 1.0,
        };
        let at_c1 = form.margin(&[-1.5, 0.0]);
        let at_c2 = form.margin(&[1.5, 0.0]);
        let between = form.margin(&[0.0, 0.0]);
        assert_eq!(at_c1, 1.0);
        assert_eq!(at_c2, 1.0);
        assert!(between < at_c1 && between < at_c2, "between {between}");
    }

    #[test]
    fn importance_shift_targets_the_dominant_spec_boundary() {
        let b = simple_bench();
        let x = vec![0.0; 3];
        // Single spec with margin 2 and sigma 1: the shift moves the mean of
        // the spec's (only) noise variable 2σ toward failure.
        let shift = b.importance_shift(&x).expect("feasible design shifts");
        assert_eq!(shift.len(), 1);
        assert!((shift[0] + 2.0).abs() < 1e-12, "shift {shift:?}");
        // The shifted noise mean sits exactly on the failure boundary:
        // margin + w · μ = 0.
        assert!((b.nominal(&x)[0] + shift[0]).abs() < 1e-12);
        // A distant margin is capped at 3σ.
        let far = SyntheticBench::new(
            "far",
            vec![(-2.0, 2.0)],
            vec![0.0],
            vec![SyntheticSpec {
                name: "wall".into(),
                form: MarginForm::Linear {
                    weights: vec![0.0],
                    offset: 10.0,
                },
                noise_offset: 0,
                noise_weights: vec![2.0],
            }],
        );
        let capped = far.importance_shift(&[0.0]).unwrap();
        let norm = capped.iter().map(|m| m * m).sum::<f64>().sqrt();
        assert!((norm - 3.0).abs() < 1e-12, "norm {norm}");
        // Nominally infeasible designs get no shift.
        let infeasible = b.importance_shift(&[2.0, 0.0, 0.0]);
        assert!(infeasible.is_none());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_noise_blocks_panic() {
        let spec = |offset| SyntheticSpec {
            name: "s".into(),
            form: MarginForm::Linear {
                weights: vec![0.0],
                offset: 1.0,
            },
            noise_offset: offset,
            noise_weights: vec![1.0, 1.0],
        };
        let _ = SyntheticBench::new("bad", vec![(-1.0, 1.0)], vec![0.0], vec![spec(0), spec(1)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_reference_panics() {
        let _ = SyntheticBench::new(
            "bad",
            vec![(-1.0, 1.0)],
            vec![2.0],
            vec![SyntheticSpec {
                name: "s".into(),
                form: MarginForm::Linear {
                    weights: vec![1.0],
                    offset: 1.0,
                },
                noise_offset: 0,
                noise_weights: vec![1.0],
            }],
        );
    }
}
