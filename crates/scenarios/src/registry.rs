//! The built-in scenario registry.
//!
//! Nine scenarios ship by default: the paper's two amplifiers at graded
//! process-corner severities (via `Testbench::with_corner`) plus five
//! synthetic analytic benchmarks whose true yield is known in closed form.
//! `moheco-run --scenario all` iterates exactly this list; CI gates each
//! entry against a committed baseline.

use crate::synthetic::{rotated_spd_matrix, MarginForm, SyntheticBench, SyntheticSpec};
use crate::Scenario;
use moheco::{Benchmark, CircuitBench};
use moheco_analog::{FoldedCascode, TelescopicTwoStage, Testbench};
use std::sync::Arc;

/// A registry entry: a prebuilt benchmark plus its registry metadata.
pub struct RegisteredScenario {
    name: &'static str,
    description: &'static str,
    spec_names: Vec<String>,
    bench: Arc<dyn Benchmark>,
    warm_start: bool,
}

impl Scenario for RegisteredScenario {
    fn name(&self) -> &str {
        self.name
    }

    fn description(&self) -> &str {
        self.description
    }

    fn spec_names(&self) -> Vec<String> {
        self.spec_names.clone()
    }

    fn bench(&self) -> Arc<dyn Benchmark> {
        Arc::clone(&self.bench)
    }

    fn warm_start(&self) -> Vec<Vec<f64>> {
        if self.warm_start {
            vec![self.bench.reference_design()]
        } else {
            Vec::new()
        }
    }
}

fn circuit<T: Testbench + 'static>(
    name: &'static str,
    description: &'static str,
    testbench: T,
) -> Arc<dyn Scenario> {
    let mut spec_names: Vec<String> = testbench
        .specs()
        .specs
        .iter()
        .map(|s| s.name.clone())
        .collect();
    if testbench.specs().require_saturation {
        spec_names.push("saturation".into());
    }
    Arc::new(RegisteredScenario {
        name,
        description,
        spec_names,
        bench: Arc::new(CircuitBench::new(testbench)),
        warm_start: true,
    })
}

fn synthetic(
    name: &'static str,
    description: &'static str,
    bench: SyntheticBench,
) -> Arc<dyn Scenario> {
    let spec_names = bench.specs().iter().map(|s| s.name.clone()).collect();
    Arc::new(RegisteredScenario {
        name,
        description,
        spec_names,
        bench: Arc::new(bench),
        warm_start: false,
    })
}

fn quadratic_feasibility() -> SyntheticBench {
    let d = 6;
    SyntheticBench::new(
        "quadratic_feasibility",
        vec![(-1.5, 1.5); d],
        vec![0.0; d],
        vec![
            SyntheticSpec {
                name: "sphere".into(),
                form: MarginForm::Quadratic {
                    center: vec![0.0; d],
                    weights: vec![1.0; d],
                    threshold: 3.0,
                },
                noise_offset: 0,
                noise_weights: vec![0.8, 0.6],
            },
            SyntheticSpec {
                name: "tilt".into(),
                form: MarginForm::Linear {
                    weights: vec![0.25, -0.25, 0.25, 0.0, 0.0, 0.0],
                    offset: 1.0,
                },
                noise_offset: 2,
                noise_weights: vec![0.5, 0.5, 0.5],
            },
        ],
    )
}

fn rotated_ellipsoid() -> SyntheticBench {
    let d = 8;
    SyntheticBench::new(
        "rotated_ellipsoid",
        vec![(-2.0, 2.0); d],
        vec![0.25; d],
        vec![SyntheticSpec {
            name: "ellipsoid".into(),
            form: MarginForm::Ellipsoid {
                center: vec![0.0; d],
                matrix: rotated_spd_matrix(d, 0.3, 3.0),
                threshold: 3.5,
            },
            noise_offset: 0,
            noise_weights: vec![0.9, 0.45],
        }],
    )
}

fn two_basin() -> SyntheticBench {
    let d = 5;
    SyntheticBench::new(
        "two_basin",
        vec![(-3.0, 3.0); d],
        vec![1.5, 1.5, 0.0, 0.0, 0.0],
        vec![SyntheticSpec {
            name: "basins".into(),
            form: MarginForm::TwoBasin {
                // Basin 1 is narrow, basin 2 (the global optimum) is wide:
                // a local-search trap for population optimizers.
                centers: [
                    vec![-1.5, -1.5, 0.0, 0.0, 0.0],
                    vec![1.5, 1.5, 0.0, 0.0, 0.0],
                ],
                weights: [vec![1.0; 5], vec![0.45; 5]],
                threshold: 2.5,
            },
            noise_offset: 0,
            noise_weights: vec![1.0],
        }],
    )
}

fn margin_wall() -> SyntheticBench {
    let d = 4;
    SyntheticBench::new(
        "margin_wall",
        vec![(-2.0, 2.0); d],
        vec![0.0; d],
        vec![SyntheticSpec {
            name: "wall".into(),
            form: MarginForm::Linear {
                weights: vec![0.4, -0.3, 0.2, -0.1],
                offset: 0.8,
            },
            noise_offset: 0,
            noise_weights: vec![1.2],
        }],
    )
}

fn stress_24d() -> SyntheticBench {
    let d = 24;
    let weights: Vec<f64> = (0..d).map(|i| 0.15 + 0.01 * i as f64).collect();
    SyntheticBench::new(
        "stress_24d",
        vec![(-1.0, 1.0); d],
        vec![0.0; d],
        vec![
            SyntheticSpec {
                name: "bowl".into(),
                form: MarginForm::Quadratic {
                    center: vec![0.0; d],
                    weights,
                    threshold: 3.0,
                },
                noise_offset: 0,
                noise_weights: vec![0.3; 6],
            },
            SyntheticSpec {
                name: "drift".into(),
                form: MarginForm::Linear {
                    weights: (0..d)
                        .map(|i| if i % 3 == 0 { 0.1 } else { -0.05 })
                        .collect(),
                    offset: 1.2,
                },
                noise_offset: 6,
                noise_weights: vec![0.35; 4],
            },
        ],
    )
}

/// All built-in scenarios, in registry order.
pub fn all_scenarios() -> Vec<Arc<dyn Scenario>> {
    vec![
        circuit(
            "folded_cascode",
            "Paper example 1: folded-cascode OTA, 0.35um, nominal corner",
            FoldedCascode::new(),
        ),
        circuit(
            "folded_cascode_harsh",
            "Example 1 at a harsh corner: all statistical spreads x1.5",
            FoldedCascode::with_corner(1.5),
        ),
        circuit(
            "telescopic",
            "Paper example 2: two-stage telescopic cascode, 90nm, nominal corner",
            TelescopicTwoStage::new(),
        ),
        circuit(
            "telescopic_mild",
            "Example 2 at a mild corner: all statistical spreads x0.7",
            TelescopicTwoStage::with_corner(0.7),
        ),
        synthetic(
            "quadratic_feasibility",
            "6-d sphere + tilted plane, 2 independent Gaussian specs, closed-form yield",
            quadratic_feasibility(),
        ),
        synthetic(
            "rotated_ellipsoid",
            "8-d rotated ill-conditioned ellipsoid, 1 Gaussian spec, closed-form yield",
            rotated_ellipsoid(),
        ),
        synthetic(
            "two_basin",
            "5-d bimodal acceptance region (narrow trap + wide optimum), closed-form yield",
            two_basin(),
        ),
        synthetic(
            "margin_wall",
            "4-d flat acceptance boundary in the moderate-yield regime, closed-form yield",
            margin_wall(),
        ),
        synthetic(
            "stress_24d",
            "24-d high-dimensional stress case, 2 independent Gaussian specs, closed-form yield",
            stress_24d(),
        ),
    ]
}

/// Looks a scenario up by its registry name.
pub fn find_scenario(name: &str) -> Option<Arc<dyn Scenario>> {
    all_scenarios().into_iter().find(|s| s.name() == name)
}

/// The names of all registered scenarios, in registry order.
pub fn scenario_names() -> Vec<String> {
    all_scenarios()
        .iter()
        .map(|s| s.name().to_string())
        .collect()
}
