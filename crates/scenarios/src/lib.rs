//! `moheco-scenarios` — the scenario registry and unified benchmark surface
//! of the MOHECO reproduction.
//!
//! The paper validates its method on two opamp testbenches. This crate turns
//! the repository into a *benchmarkable system*: a [`Scenario`] bundles a
//! [`Benchmark`] (circuit or synthetic) with registry metadata, and
//! [`all_scenarios`] exposes a fixed, ordered registry that the `moheco-run`
//! experiment harness and the CI baseline gate iterate over:
//!
//! * the two paper circuits at multiple process-corner severities
//!   ([`moheco_analog::FoldedCascode::with_corner`] /
//!   [`moheco_analog::TelescopicTwoStage::with_corner`]), and
//! * synthetic analytic yield problems ([`synthetic::SyntheticBench`]) —
//!   quadratic feasibility, a rotated ill-conditioned ellipsoid, a
//!   multi-modal two-basin region, a moderate-yield linear wall and a 24-d
//!   stress case — whose true yield is computable in closed form
//!   ([`moheco_sampling::oracle`]), so estimator accuracy is *asserted*, not
//!   eyeballed.
//!
//! # Example
//!
//! ```
//! use moheco_scenarios::{find_scenario, Scenario};
//! use moheco_runtime::{EngineConfig, SerialEngine};
//! use std::sync::Arc;
//!
//! let scenario = find_scenario("quadratic_feasibility").unwrap();
//! let problem = scenario.build(Arc::new(SerialEngine::new(EngineConfig::default())));
//! let x = problem.bench().reference_design();
//! let truth = problem.true_yield(&x).unwrap();
//! let outcomes = problem.outcomes(&x, 0, 2000);
//! let est = outcomes.iter().filter(|&&o| o > 0.5).count() as f64 / 2000.0;
//! assert!((est - truth).abs() < 0.05);
//! ```

#![warn(missing_docs)]

pub mod registry;
pub mod synthetic;

pub use registry::{all_scenarios, find_scenario, scenario_names, RegisteredScenario};
pub use synthetic::{MarginForm, SyntheticBench, SyntheticSpec};

use moheco::{Benchmark, YieldProblem};
use moheco_runtime::EvalEngine;
use std::sync::Arc;

/// One registered benchmark scenario: a name, its specifications, an
/// optional closed-form ground truth and a builder returning a
/// [`YieldProblem`] wired to an evaluation engine.
pub trait Scenario: Send + Sync {
    /// Registry name (unique, stable; used by `moheco-run --scenario`).
    fn name(&self) -> &str;

    /// One-line human-readable description.
    fn description(&self) -> &str;

    /// Names of the specifications the yield is defined over.
    fn spec_names(&self) -> Vec<String>;

    /// The benchmark itself (shared; cheap to clone the `Arc`).
    fn bench(&self) -> Arc<dyn Benchmark>;

    /// Number of design variables.
    fn dimension(&self) -> usize {
        self.bench().dimension()
    }

    /// Number of statistical (process-variation / noise) variables.
    fn statistical_dimension(&self) -> usize {
        self.bench().unit_dimension()
    }

    /// Whether [`Benchmark::true_yield`] returns a closed-form ground truth.
    fn has_true_yield(&self) -> bool {
        let bench = self.bench();
        let x = bench.reference_design();
        bench.true_yield(&x).is_some()
    }

    /// Warm-start designs for the optimizer's initial population.
    ///
    /// Circuit scenarios return their reference sizing — mirroring the
    /// paper's flow, where yield optimization starts from a nominally sized
    /// design — so that short CI-budget runs reach the yield-estimation
    /// phase even on circuits whose feasible region random sampling would
    /// take hundreds of generations to find (example 2). Synthetic scenarios
    /// return nothing: their feasible regions are reachable from scratch.
    fn warm_start(&self) -> Vec<Vec<f64>> {
        Vec::new()
    }

    /// Builds the yield problem for this scenario over the given engine.
    fn build(&self, engine: Arc<dyn EvalEngine>) -> YieldProblem<dyn Benchmark> {
        YieldProblem::from_bench(self.bench(), engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_runtime::{EngineConfig, SerialEngine};

    fn serial() -> Arc<dyn EvalEngine> {
        Arc::new(SerialEngine::new(EngineConfig::default()))
    }

    #[test]
    fn registry_has_at_least_eight_scenarios_with_unique_names() {
        let all = all_scenarios();
        assert!(all.len() >= 8, "only {} scenarios registered", all.len());
        let mut names = scenario_names();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate scenario names");
    }

    #[test]
    fn every_scenario_is_well_formed() {
        for s in all_scenarios() {
            let bench = s.bench();
            let x = bench.reference_design();
            assert_eq!(x.len(), s.dimension(), "{}", s.name());
            assert_eq!(bench.bounds().len(), s.dimension(), "{}", s.name());
            for (v, (lo, hi)) in x.iter().zip(bench.bounds()) {
                assert!(lo <= *v && *v <= hi, "{} reference out of bounds", s.name());
            }
            assert!(s.statistical_dimension() > 0, "{}", s.name());
            assert!(!s.spec_names().is_empty(), "{}", s.name());
            assert!(!s.description().is_empty(), "{}", s.name());
            // The reference design must be nominally feasible.
            let margins = bench.as_model().nominal(&x);
            assert!(
                margins.iter().all(|&m| m >= 0.0),
                "{} reference design infeasible: {margins:?}",
                s.name()
            );
            if let Some(truth) = bench.true_yield(&x) {
                assert!((0.0..=1.0).contains(&truth), "{} truth {truth}", s.name());
                assert!(truth > 0.5, "{} reference truth too low: {truth}", s.name());
            }
        }
    }

    #[test]
    fn both_scenario_families_are_present() {
        let all = all_scenarios();
        let with_truth = all.iter().filter(|s| s.has_true_yield()).count();
        let without = all.len() - with_truth;
        assert!(with_truth >= 4, "need >= 4 analytic scenarios");
        assert!(without >= 4, "need >= 4 circuit scenarios");
    }

    #[test]
    fn corner_scenarios_share_structure_with_their_nominal_circuit() {
        let nominal = find_scenario("folded_cascode").unwrap();
        let harsh = find_scenario("folded_cascode_harsh").unwrap();
        assert_eq!(nominal.dimension(), harsh.dimension());
        assert_eq!(
            nominal.statistical_dimension(),
            harsh.statistical_dimension()
        );
        assert_eq!(nominal.spec_names(), harsh.spec_names());
        // But the benchmarks carry distinct names (distinct cache identities).
        assert_ne!(nominal.bench().name(), harsh.bench().name());
    }

    #[test]
    fn find_scenario_roundtrips_every_name() {
        for name in scenario_names() {
            let s = find_scenario(&name).expect("registered name must resolve");
            assert_eq!(s.name(), name);
        }
        assert!(find_scenario("no_such_scenario").is_none());
    }

    #[test]
    fn build_wires_the_problem_to_the_engine() {
        let s = find_scenario("margin_wall").unwrap();
        let problem = s.build(serial());
        let x = problem.bench().reference_design();
        let rep = problem.feasibility(&x);
        assert!(rep.is_feasible());
        assert_eq!(problem.simulations(), 1);
        assert_eq!(problem.dimension(), 4);
    }
}
