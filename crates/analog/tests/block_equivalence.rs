//! Differential suite: `Testbench::evaluate_block` must be bit-identical to
//! the scalar `evaluate` loop for both benchmark circuits — including failure
//! samples — because the engine cache, the estimators and the committed yield
//! baselines all assume the two paths are interchangeable.

use moheco_analog::{AmplifierPerformance, FoldedCascode, TelescopicTwoStage, Testbench};
use moheco_process::ProcessSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_bit_equal(a: &AmplifierPerformance, b: &AmplifierPerformance, ctx: &str) {
    let pairs = [
        ("a0_db", a.a0_db, b.a0_db),
        ("gbw_hz", a.gbw_hz, b.gbw_hz),
        ("pm_deg", a.pm_deg, b.pm_deg),
        ("output_swing_v", a.output_swing_v, b.output_swing_v),
        ("power_w", a.power_w, b.power_w),
        ("area_um2", a.area_um2, b.area_um2),
        ("offset_v", a.offset_v, b.offset_v),
    ];
    for (name, va, vb) in pairs {
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "{ctx}: field {name} diverged: {va} vs {vb}"
        );
    }
    assert_eq!(a.all_saturated, b.all_saturated, "{ctx}: all_saturated");
}

fn check_testbench(tb: &dyn Testbench, designs: &[Vec<f64>], seed: u64, block: usize) {
    let sampler = ProcessSampler::new(tb.technology().clone(), tb.num_devices());
    let mut rng = StdRng::seed_from_u64(seed);
    for (di, x) in designs.iter().enumerate() {
        let xis: Vec<_> = (0..block).map(|_| sampler.sample(&mut rng)).collect();
        let batched = tb.evaluate_block(x, &xis);
        assert_eq!(batched.len(), xis.len());
        for (i, (xi, got)) in xis.iter().zip(&batched).enumerate() {
            let want = tb.evaluate(x, xi);
            assert_bit_equal(got, &want, &format!("{} design {di} sample {i}", tb.name()));
        }
    }
}

#[test]
fn folded_cascode_block_matches_scalar_loop() {
    let tb = FoldedCascode::new();
    let reference = tb.reference_design();
    // A starved design exercises bias-solution failures inside the block.
    let mut starved = reference.clone();
    starved[8] = 50.0;
    let mut hot = reference.clone();
    hot[8] = 500.0;
    check_testbench(&tb, &[reference, starved, hot], 2024, 40);
}

#[test]
fn telescopic_block_matches_scalar_loop() {
    let tb = TelescopicTwoStage::new();
    let reference = tb.reference_design();
    let mins: Vec<f64> = tb.design_variables().iter().map(|v| v.lo).collect();
    let mut small_cc = reference.clone();
    small_cc[11] = 0.2;
    check_testbench(&tb, &[reference, mins, small_cc], 7, 40);
}

#[test]
fn harsh_corner_block_matches_scalar_loop() {
    // Corner technologies scale the statistical spreads, producing more
    // failure samples; the block path must track every one of them.
    let tb = FoldedCascode::with_corner(2.5);
    let x = tb.reference_design();
    check_testbench(&tb, &[x], 99, 60);
}
