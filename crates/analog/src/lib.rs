//! `moheco-analog` — the benchmark analog circuits of the MOHECO paper.
//!
//! The paper evaluates MOHECO on two fully differential amplifiers sized under
//! process variation:
//!
//! * [`folded_cascode::FoldedCascode`] — example 1: a folded-cascode OTA in a
//!   0.35 µm / 3.3 V technology (15 transistors, 80 statistical variables,
//!   specs on gain, GBW, phase margin, output swing and power).
//! * [`telescopic::TelescopicTwoStage`] — example 2: a two-stage
//!   telescopic-cascode amplifier in a 90 nm / 1.2 V technology
//!   (19 transistors, 123 statistical variables, additionally constrained on
//!   area and input offset).
//!
//! Both circuits implement the [`testbench::Testbench`] trait: the yield
//! optimizer only sees the map `(design x, process sample ξ) → performances`,
//! exactly the role HSPICE plays in the paper. The evaluation combines the
//! square-law compact model and the MNA AC engine of the `spicelite` crate
//! with the statistical process models of `moheco-process`.
//!
//! # Example
//!
//! ```
//! use moheco_analog::{FoldedCascode, Testbench};
//!
//! let tb = FoldedCascode::new();
//! let perf = tb.evaluate_nominal(&tb.reference_design());
//! assert!(tb.specs().all_met(&perf));
//! ```

#![warn(missing_docs)]

pub(crate) mod batch_eval;
pub mod folded_cascode;
pub mod specs;
pub mod telescopic;
pub mod testbench;
pub mod variation_map;

pub use folded_cascode::FoldedCascode;
pub use specs::{AmplifierPerformance, SpecKind, SpecSet, SpecTarget, Specification};
pub use telescopic::TelescopicTwoStage;
pub use testbench::{DesignVariable, Testbench};
pub use variation_map::{
    bias_current_factor, bias_current_factor_from_shifts, inter_die_shifts, mismatch_deltas,
    perturbed_model, perturbed_model_with_shifts, MismatchDeltas, PolarityShift,
};
