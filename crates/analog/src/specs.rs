//! Performance specifications and evaluated amplifier performances.
//!
//! Both benchmark circuits are specified on the same set of figures of merit
//! (DC gain, GBW, phase margin, output swing, power, and for example 2 also
//! area and input offset), plus the blanket requirement that every transistor
//! operates in saturation.

/// The figures of merit produced by one circuit evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmplifierPerformance {
    /// Low-frequency differential gain (dB).
    pub a0_db: f64,
    /// Gain–bandwidth product / unity-gain frequency (Hz).
    pub gbw_hz: f64,
    /// Phase margin (degrees).
    pub pm_deg: f64,
    /// Differential peak-to-peak output swing (V).
    pub output_swing_v: f64,
    /// Total power consumption (W).
    pub power_w: f64,
    /// Active (gate) area (µm²).
    pub area_um2: f64,
    /// Input-referred offset magnitude (V).
    pub offset_v: f64,
    /// `true` when every transistor is in saturation with adequate headroom.
    pub all_saturated: bool,
}

impl AmplifierPerformance {
    /// A performance record representing a completely failed evaluation
    /// (used when the bias solver cannot find a valid operating point).
    pub fn failed() -> Self {
        Self {
            a0_db: 0.0,
            gbw_hz: 0.0,
            pm_deg: 0.0,
            output_swing_v: 0.0,
            power_w: f64::INFINITY,
            area_um2: f64::INFINITY,
            offset_v: f64::INFINITY,
            all_saturated: false,
        }
    }
}

/// Direction of a specification bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// The performance must be at least the bound (e.g. gain, GBW).
    AtLeast,
    /// The performance must be at most the bound (e.g. power, area, offset).
    AtMost,
}

/// Which performance a specification applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecTarget {
    /// DC gain in dB.
    GainDb,
    /// Gain–bandwidth product in Hz.
    GbwHz,
    /// Phase margin in degrees.
    PhaseMarginDeg,
    /// Differential output swing in volts.
    OutputSwingV,
    /// Power in watts.
    PowerW,
    /// Active area in µm².
    AreaUm2,
    /// Input offset in volts.
    OffsetV,
}

/// One performance specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Specification {
    /// Human-readable name (e.g. `"A0"`).
    pub name: String,
    /// The performance the spec constrains.
    pub target: SpecTarget,
    /// Bound direction.
    pub kind: SpecKind,
    /// The bound value, in the units of the target.
    pub bound: f64,
    /// Normalisation scale used when computing margins (same units).
    pub scale: f64,
}

impl Specification {
    /// Creates a specification.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn new(
        name: impl Into<String>,
        target: SpecTarget,
        kind: SpecKind,
        bound: f64,
        scale: f64,
    ) -> Self {
        assert!(scale > 0.0, "specification scale must be positive");
        Self {
            name: name.into(),
            target,
            kind,
            bound,
            scale,
        }
    }

    /// Extracts the constrained performance value.
    pub fn value_of(&self, perf: &AmplifierPerformance) -> f64 {
        match self.target {
            SpecTarget::GainDb => perf.a0_db,
            SpecTarget::GbwHz => perf.gbw_hz,
            SpecTarget::PhaseMarginDeg => perf.pm_deg,
            SpecTarget::OutputSwingV => perf.output_swing_v,
            SpecTarget::PowerW => perf.power_w,
            SpecTarget::AreaUm2 => perf.area_um2,
            SpecTarget::OffsetV => perf.offset_v,
        }
    }

    /// Normalised margin: positive when the spec is met, negative otherwise.
    pub fn margin(&self, perf: &AmplifierPerformance) -> f64 {
        let v = self.value_of(perf);
        let raw = match self.kind {
            SpecKind::AtLeast => v - self.bound,
            SpecKind::AtMost => self.bound - v,
        };
        if raw.is_nan() {
            f64::NEG_INFINITY
        } else {
            raw / self.scale
        }
    }

    /// Returns `true` when the spec is met.
    pub fn is_met(&self, perf: &AmplifierPerformance) -> bool {
        self.margin(perf) >= 0.0
    }
}

/// A complete set of specifications for one circuit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecSet {
    /// The specifications.
    pub specs: Vec<Specification>,
    /// Whether the "all transistors saturated" requirement applies.
    pub require_saturation: bool,
}

impl SpecSet {
    /// Creates a spec set from a list of specifications with the saturation
    /// requirement enabled.
    pub fn new(specs: Vec<Specification>) -> Self {
        Self {
            specs,
            require_saturation: true,
        }
    }

    /// Number of specifications (excluding the saturation requirement).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` when the set contains no specifications.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Normalised margins of every specification; the saturation requirement,
    /// if enabled, contributes a final entry of ±1.
    pub fn margins(&self, perf: &AmplifierPerformance) -> Vec<f64> {
        let mut m: Vec<f64> = self.specs.iter().map(|s| s.margin(perf)).collect();
        if self.require_saturation {
            m.push(if perf.all_saturated { 1.0 } else { -1.0 });
        }
        m
    }

    /// Returns `true` when every specification (and saturation, if required)
    /// is met.
    pub fn all_met(&self, perf: &AmplifierPerformance) -> bool {
        self.margins(perf).iter().all(|&m| m >= 0.0)
    }

    /// Aggregate constraint violation: the sum of negative margins, negated
    /// (0 when all specs are met). This is the scalar fed to the
    /// selection-based constraint handler.
    pub fn violation(&self, perf: &AmplifierPerformance) -> f64 {
        self.margins(perf)
            .iter()
            .filter(|&&m| m < 0.0)
            .map(|&m| -m)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_perf() -> AmplifierPerformance {
        AmplifierPerformance {
            a0_db: 75.0,
            gbw_hz: 50e6,
            pm_deg: 65.0,
            output_swing_v: 4.8,
            power_w: 0.9e-3,
            area_um2: 150.0,
            offset_v: 0.4e-3,
            all_saturated: true,
        }
    }

    fn gain_spec() -> Specification {
        Specification::new("A0", SpecTarget::GainDb, SpecKind::AtLeast, 70.0, 5.0)
    }

    fn power_spec() -> Specification {
        Specification::new(
            "power",
            SpecTarget::PowerW,
            SpecKind::AtMost,
            1.07e-3,
            0.1e-3,
        )
    }

    #[test]
    fn margins_have_expected_sign() {
        let p = sample_perf();
        assert!(gain_spec().margin(&p) > 0.0);
        assert!(power_spec().margin(&p) > 0.0);
        let mut bad = p;
        bad.a0_db = 65.0;
        assert!(gain_spec().margin(&bad) < 0.0);
        assert!(!gain_spec().is_met(&bad));
        let mut hot = p;
        hot.power_w = 2e-3;
        assert!(power_spec().margin(&hot) < 0.0);
    }

    #[test]
    fn margin_is_normalised_by_scale() {
        let p = sample_perf();
        let s = gain_spec();
        assert!((s.margin(&p) - 1.0).abs() < 1e-12); // (75 - 70) / 5
    }

    #[test]
    fn nan_performance_gives_negative_margin() {
        let mut p = sample_perf();
        p.gbw_hz = f64::NAN;
        let s = Specification::new("GBW", SpecTarget::GbwHz, SpecKind::AtLeast, 40e6, 10e6);
        assert!(s.margin(&p) < 0.0);
    }

    #[test]
    fn spec_set_margins_and_violation() {
        let set = SpecSet::new(vec![gain_spec(), power_spec()]);
        let p = sample_perf();
        assert!(set.all_met(&p));
        assert_eq!(set.violation(&p), 0.0);
        assert_eq!(set.margins(&p).len(), 3); // 2 specs + saturation
        let mut bad = p;
        bad.a0_db = 60.0;
        bad.all_saturated = false;
        assert!(!set.all_met(&bad));
        assert!(set.violation(&bad) > 0.0);
    }

    #[test]
    fn failed_performance_fails_everything() {
        let set = SpecSet::new(vec![gain_spec(), power_spec()]);
        let p = AmplifierPerformance::failed();
        assert!(!set.all_met(&p));
        assert!(set.violation(&p) > 0.0);
    }

    #[test]
    fn every_target_is_extractable() {
        let p = sample_perf();
        let targets = [
            (SpecTarget::GainDb, 75.0),
            (SpecTarget::GbwHz, 50e6),
            (SpecTarget::PhaseMarginDeg, 65.0),
            (SpecTarget::OutputSwingV, 4.8),
            (SpecTarget::PowerW, 0.9e-3),
            (SpecTarget::AreaUm2, 150.0),
            (SpecTarget::OffsetV, 0.4e-3),
        ];
        for (t, expected) in targets {
            let s = Specification::new("x", t, SpecKind::AtLeast, 0.0, 1.0);
            assert_eq!(s.value_of(&p), expected);
        }
    }

    #[test]
    #[should_panic]
    fn zero_scale_panics() {
        let _ = Specification::new("bad", SpecTarget::GainDb, SpecKind::AtLeast, 1.0, 0.0);
    }
}
