//! Mapping of statistical process samples onto device model cards.
//!
//! A [`moheco_process::ProcessSample`] contains inter-die parameter deviations
//! and per-device mismatch z-scores. This module translates them into
//! perturbed [`MosModel`] cards: inter-die effects shift every device of the
//! matching polarity; mismatch z-scores are scaled by the Pelgrom model of the
//! technology (using the actual device gate area) and added on top.

use moheco_process::{InterDieEffect, MismatchModel, ProcessSample, Technology};
use spicelite::mosfet::{MosGeometry, MosModel, MosType};

/// Accumulated inter-die deviations for one device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PolarityShift {
    /// Absolute oxide-thickness deviation (m).
    pub d_tox: f64,
    /// Absolute threshold-voltage deviation (V).
    pub d_vth0: f64,
    /// Absolute lateral-diffusion deviation (m).
    pub d_ld: f64,
    /// Absolute width-reduction deviation (m).
    pub d_wd: f64,
    /// Relative mobility deviation.
    pub u0_rel: f64,
    /// Relative junction-capacitance deviation.
    pub cj_rel: f64,
    /// Relative sidewall junction-capacitance deviation.
    pub cjsw_rel: f64,
    /// Relative diffusion-resistance deviation (used for bias-current spread).
    pub rdiff_rel: f64,
}

/// Extracts the per-polarity inter-die shifts from a process sample.
///
/// # Panics
///
/// Panics if the sample's inter-die vector does not match the technology.
pub fn inter_die_shifts(
    tech: &Technology,
    sample: &ProcessSample,
) -> (PolarityShift, PolarityShift) {
    assert_eq!(
        sample.inter.len(),
        tech.num_inter_die(),
        "sample does not match technology"
    );
    let mut n = PolarityShift::default();
    let mut p = PolarityShift::default();
    for (param, &dv) in tech.inter_die.iter().zip(&sample.inter) {
        match param.effect {
            InterDieEffect::ToxN => n.d_tox += dv,
            InterDieEffect::ToxP => p.d_tox += dv,
            InterDieEffect::Vth0N => n.d_vth0 += dv,
            InterDieEffect::Vth0P => p.d_vth0 += dv,
            InterDieEffect::MobilityN => n.u0_rel += dv,
            InterDieEffect::MobilityP => p.u0_rel += dv,
            InterDieEffect::LdN => n.d_ld += dv,
            InterDieEffect::LdP => p.d_ld += dv,
            InterDieEffect::WdN => n.d_wd += dv,
            InterDieEffect::WdP => p.d_wd += dv,
            InterDieEffect::DeltaL => {
                n.d_ld += 0.5 * dv;
                p.d_ld += 0.5 * dv;
            }
            InterDieEffect::DeltaW => {
                n.d_wd += 0.5 * dv;
                p.d_wd += 0.5 * dv;
            }
            InterDieEffect::CjN => n.cj_rel += dv,
            InterDieEffect::CjP => p.cj_rel += dv,
            InterDieEffect::CjswN => n.cjsw_rel += dv,
            InterDieEffect::CjswP => p.cjsw_rel += dv,
            // Doping variations shift the threshold by a fraction of the
            // relative doping change (first-order sensitivity ~ 0.1 V).
            InterDieEffect::DopingN => n.d_vth0 += 0.1 * dv,
            InterDieEffect::DopingP => p.d_vth0 += 0.1 * dv,
            InterDieEffect::RdiffN => n.rdiff_rel += dv,
            InterDieEffect::RdiffP => p.rdiff_rel += dv,
        }
    }
    (n, p)
}

/// Per-device mismatch deltas in physical units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MismatchDeltas {
    /// Absolute oxide-thickness mismatch (m).
    pub d_tox: f64,
    /// Absolute threshold-voltage mismatch (V).
    pub d_vth0: f64,
    /// Absolute lateral-diffusion mismatch (m).
    pub d_ld: f64,
    /// Absolute width-reduction mismatch (m).
    pub d_wd: f64,
}

/// Converts the mismatch z-scores of device `index` into physical deltas
/// using the Pelgrom coefficients and the device gate area.
///
/// Returns all-zero deltas when the sample has no entry for the device
/// (e.g. the nominal sample of a smaller circuit).
pub fn mismatch_deltas(
    mismatch: &MismatchModel,
    sample: &ProcessSample,
    index: usize,
    geometry: MosGeometry,
    nominal_tox: f64,
) -> MismatchDeltas {
    let Some(z) = sample.intra.get(index) else {
        return MismatchDeltas::default();
    };
    let area_um2 = geometry.gate_area() * 1e12;
    MismatchDeltas {
        d_tox: z[0] * mismatch.sigma_tox_rel(area_um2) * nominal_tox,
        d_vth0: z[1] * mismatch.sigma_vth(area_um2),
        d_ld: z[2] * mismatch.sigma_ld(area_um2),
        d_wd: z[3] * mismatch.sigma_wd(area_um2),
    }
}

/// Builds the perturbed model card of device `index` with polarity `base`.
pub fn perturbed_model(
    base: MosModel,
    tech: &Technology,
    sample: &ProcessSample,
    index: usize,
    geometry: MosGeometry,
) -> MosModel {
    let shifts = inter_die_shifts(tech, sample);
    perturbed_model_with_shifts(base, &shifts, tech, sample, index, geometry)
}

/// Like [`perturbed_model`], but takes the inter-die shifts precomputed by
/// [`inter_die_shifts`]. The shifts depend only on `(tech, sample)`, so a
/// testbench evaluating many devices against one sample can hoist the
/// accumulation out of its per-device loop; the resulting model card is
/// bit-identical to the [`perturbed_model`] one.
pub fn perturbed_model_with_shifts(
    base: MosModel,
    shifts: &(PolarityShift, PolarityShift),
    tech: &Technology,
    sample: &ProcessSample,
    index: usize,
    geometry: MosGeometry,
) -> MosModel {
    let shift = match base.mos_type {
        MosType::Nmos => shifts.0,
        MosType::Pmos => shifts.1,
    };
    let mm = mismatch_deltas(&tech.mismatch, sample, index, geometry, base.tox);
    base.perturbed(
        shift.d_tox + mm.d_tox,
        shift.d_vth0 + mm.d_vth0,
        shift.d_ld + mm.d_ld,
        shift.d_wd + mm.d_wd,
        shift.u0_rel,
        shift.cj_rel,
        shift.cjsw_rel,
    )
}

/// Multiplicative spread of a resistor-defined bias current caused by the
/// diffusion-resistance inter-die parameters (both polarities contribute).
pub fn bias_current_factor(tech: &Technology, sample: &ProcessSample) -> f64 {
    bias_current_factor_from_shifts(&inter_die_shifts(tech, sample))
}

/// Like [`bias_current_factor`], but from precomputed inter-die shifts.
pub fn bias_current_factor_from_shifts(shifts: &(PolarityShift, PolarityShift)) -> f64 {
    // A resistor-defined reference current varies inversely with the sheet
    // resistance; average the two polarities' diffusion-resistance spread.
    let rel = 0.5 * (shifts.0.rdiff_rel + shifts.1.rdiff_rel);
    (1.0 / (1.0 + rel)).clamp(0.5, 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_process::{tech_035um, ProcessSample, ProcessSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spicelite::mosfet::{model_035um, MosGeometry, MosType};

    #[test]
    fn nominal_sample_produces_no_shift() {
        let tech = tech_035um();
        let sample = ProcessSample::nominal(tech.num_inter_die(), 15);
        let (n, p) = inter_die_shifts(&tech, &sample);
        assert_eq!(n, PolarityShift::default());
        assert_eq!(p, PolarityShift::default());
        assert!((bias_current_factor(&tech, &sample) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nominal_sample_leaves_model_unchanged() {
        let tech = tech_035um();
        let sample = ProcessSample::nominal(tech.num_inter_die(), 15);
        let base = model_035um(MosType::Nmos);
        let g = MosGeometry::new(20e-6, 1e-6, 1.0).unwrap();
        let m = perturbed_model(base, &tech, &sample, 0, g);
        assert!((m.vth0 - base.vth0).abs() < 1e-12);
        assert!((m.tox - base.tox).abs() < 1e-15);
        assert!((m.u0 - base.u0).abs() < 1e-12);
    }

    #[test]
    fn vth_inter_die_shift_reaches_the_right_polarity() {
        let tech = tech_035um();
        let mut sample = ProcessSample::nominal(tech.num_inter_die(), 15);
        // Index 1 is VTH0Rn in the 0.35um list.
        sample.inter[1] = 0.05;
        let (n, p) = inter_die_shifts(&tech, &sample);
        assert!((n.d_vth0 - 0.05).abs() < 1e-12);
        assert_eq!(p.d_vth0, 0.0);
        let g = MosGeometry::new(20e-6, 1e-6, 1.0).unwrap();
        let nmod = perturbed_model(model_035um(MosType::Nmos), &tech, &sample, 0, g);
        let pmod = perturbed_model(model_035um(MosType::Pmos), &tech, &sample, 0, g);
        assert!(nmod.vth0 > model_035um(MosType::Nmos).vth0 + 0.04);
        assert!((pmod.vth0 - model_035um(MosType::Pmos).vth0).abs() < 1e-9);
    }

    #[test]
    fn mismatch_scales_with_device_area() {
        let tech = tech_035um();
        let mut sample = ProcessSample::nominal(tech.num_inter_die(), 2);
        sample.intra[0] = [0.0, 2.0, 0.0, 0.0]; // +2 sigma vth mismatch
        sample.intra[1] = [0.0, 2.0, 0.0, 0.0];
        let small = MosGeometry::new(2e-6, 0.5e-6, 1.0).unwrap(); // 1 um^2
        let large = MosGeometry::new(20e-6, 5e-6, 1.0).unwrap(); // 100 um^2
        let d_small = mismatch_deltas(&tech.mismatch, &sample, 0, small, 7.6e-9);
        let d_large = mismatch_deltas(&tech.mismatch, &sample, 1, large, 7.6e-9);
        assert!(d_small.d_vth0 > 5.0 * d_large.d_vth0);
    }

    #[test]
    fn missing_device_index_gives_zero_mismatch() {
        let tech = tech_035um();
        let sample = ProcessSample::nominal(tech.num_inter_die(), 1);
        let g = MosGeometry::new(2e-6, 0.5e-6, 1.0).unwrap();
        let d = mismatch_deltas(&tech.mismatch, &sample, 5, g, 7.6e-9);
        assert_eq!(d, MismatchDeltas::default());
    }

    #[test]
    fn random_samples_produce_moderate_spread() {
        let tech = tech_035um();
        let sampler = ProcessSampler::new(tech.clone(), 15);
        let mut rng = StdRng::seed_from_u64(77);
        let g = MosGeometry::new(50e-6, 1e-6, 1.0).unwrap();
        let base = model_035um(MosType::Nmos);
        let mut max_rel_vth: f64 = 0.0;
        for _ in 0..200 {
            let s = sampler.sample(&mut rng);
            let m = perturbed_model(base, &tech, &s, 0, g);
            max_rel_vth = max_rel_vth.max(((m.vth0 - base.vth0) / base.vth0).abs());
        }
        // Shifts should be noticeable but nowhere near 100%.
        assert!(max_rel_vth > 0.01, "max relative vth shift {max_rel_vth}");
        assert!(max_rel_vth < 0.5, "max relative vth shift {max_rel_vth}");
    }

    #[test]
    fn hoisted_shift_variants_are_bit_identical() {
        let tech = tech_035um();
        let sampler = ProcessSampler::new(tech.clone(), 15);
        let mut rng = StdRng::seed_from_u64(123);
        let g = MosGeometry::new(35e-6, 0.7e-6, 1.0).unwrap();
        for _ in 0..50 {
            let s = sampler.sample(&mut rng);
            let shifts = inter_die_shifts(&tech, &s);
            for ty in [MosType::Nmos, MosType::Pmos] {
                let base = model_035um(ty);
                let a = perturbed_model(base, &tech, &s, 3, g);
                let b = perturbed_model_with_shifts(base, &shifts, &tech, &s, 3, g);
                assert_eq!(a.vth0.to_bits(), b.vth0.to_bits());
                assert_eq!(a.tox.to_bits(), b.tox.to_bits());
                assert_eq!(a.u0.to_bits(), b.u0.to_bits());
                assert_eq!(a.ld.to_bits(), b.ld.to_bits());
                assert_eq!(a.wd.to_bits(), b.wd.to_bits());
                assert_eq!(a.cj.to_bits(), b.cj.to_bits());
                assert_eq!(a.cjsw.to_bits(), b.cjsw.to_bits());
            }
            assert_eq!(
                bias_current_factor(&tech, &s).to_bits(),
                bias_current_factor_from_shifts(&shifts).to_bits()
            );
        }
    }

    #[test]
    fn bias_factor_responds_to_rdiff() {
        let tech = tech_035um();
        let mut sample = ProcessSample::nominal(tech.num_inter_die(), 15);
        // Index 5 is DELRDIFFN; +10% sheet resistance lowers the current.
        sample.inter[5] = 0.10;
        let f = bias_current_factor(&tech, &sample);
        assert!(f < 1.0 && f > 0.9);
    }
}
