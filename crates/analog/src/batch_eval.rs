//! Shared batched-evaluation plumbing for the benchmark testbenches.
//!
//! Both benchmark circuits split their evaluation into a *prepare* step
//! (netlist assembly plus all analytic figures — swing, power, area, offset,
//! saturation flags) and an AC sweep that extracts `A0`, `GBW` and `PM`. The
//! scalar [`Testbench::evaluate`](crate::Testbench::evaluate) path runs the
//! reference [`spicelite::ac::sweep`] per sample; the batched path here reuses
//! one [`FactorizedCircuit`] across all samples of a block, which skips the
//! per-sample symbolic/structural analysis and solves the sweep over
//! contiguous SIMD lanes. `FactorizedCircuit::sweep` is bit-identical to the
//! scalar sweep by construction (see `spicelite::batch`), so the two paths
//! produce bitwise-equal performances — the `batch_equivalence` integration
//! suite pins this.

use crate::specs::AmplifierPerformance;
use moheco_process::ProcessSample;
use spicelite::ac::log_space;
use spicelite::batch::FactorizedCircuit;
use spicelite::netlist::{LinearCircuit, NodeId};
use std::sync::OnceLock;

/// The AC analysis grid shared by both benchmark circuits: 50 log-spaced
/// points from 1 kHz to 30 GHz. The scalar path recomputes it per sample (the
/// historical behaviour); the batched path reuses this cached copy —
/// `log_space` is pure, so the values are identical.
pub(crate) fn sweep_freqs() -> &'static [f64] {
    static FREQS: OnceLock<Vec<f64>> = OnceLock::new();
    FREQS.get_or_init(|| log_space(1e3, 3e10, 50))
}

/// Everything a testbench knows about one sample before the AC sweep.
pub(crate) struct PreparedSample {
    /// Assembled small-signal half circuit.
    pub ckt: LinearCircuit,
    /// Output node to probe.
    pub out: NodeId,
    /// Analytic output swing (V).
    pub output_swing_v: f64,
    /// Analytic power (W).
    pub power_w: f64,
    /// Analytic area (µm²).
    pub area_um2: f64,
    /// Analytic input-referred offset (V).
    pub offset_v: f64,
    /// Saturation / headroom verdict.
    pub all_saturated: bool,
}

impl PreparedSample {
    /// Combines the analytic figures with the AC figures of merit.
    pub fn into_performance(self, a0_db: f64, gbw_hz: f64, pm_deg: f64) -> AmplifierPerformance {
        AmplifierPerformance {
            a0_db,
            gbw_hz,
            pm_deg,
            output_swing_v: self.output_swing_v,
            power_w: self.power_w,
            area_um2: self.area_um2,
            offset_v: self.offset_v,
            all_saturated: self.all_saturated,
        }
    }
}

/// Runs a block of process samples through `prepare` and a shared factorized
/// AC sweep. Samples whose preparation fails (bad geometry, no bias solution)
/// or whose sweep hits a singular matrix map to
/// [`AmplifierPerformance::failed`], exactly as on the scalar path.
pub(crate) fn evaluate_block_batched<F>(
    xis: &[ProcessSample],
    prepare: F,
) -> Vec<AmplifierPerformance>
where
    F: Fn(&ProcessSample) -> Option<PreparedSample>,
{
    let freqs = sweep_freqs();
    let mut fac: Option<FactorizedCircuit> = None;
    xis.iter()
        .map(|xi| {
            let Some(p) = prepare(xi) else {
                return AmplifierPerformance::failed();
            };
            // All samples of a block share the design point, so the netlist
            // structure is fixed; the guard only rebuilds if that ever stops
            // holding (e.g. a future conditional topology).
            if fac.as_ref().is_none_or(|f| !f.matches(&p.ckt)) {
                fac = Some(FactorizedCircuit::new(&p.ckt));
            }
            let fac = fac.as_mut().expect("factorized template just installed");
            match fac.sweep(&p.ckt, p.out, freqs) {
                Ok(resp) => {
                    let foms = resp.foms();
                    let (gbw_hz, pm_deg) = match (foms.unity_gain_freq, foms.phase_margin_deg) {
                        (Ok(f), Ok(pm)) => (f, pm),
                        _ => (0.0, 0.0),
                    };
                    p.into_performance(foms.dc_gain_db, gbw_hz, pm_deg)
                }
                Err(_) => AmplifierPerformance::failed(),
            }
        })
        .collect()
}
