//! The circuit-testbench abstraction used by the yield optimizer.
//!
//! A testbench owns everything the optimizer needs to know about a benchmark
//! circuit: the design-variable space, the technology (statistical model),
//! the specification set, and the mapping
//! `(design x, process sample ξ) → performances`.

use crate::specs::{AmplifierPerformance, SpecSet};
use moheco_process::{ProcessSample, Technology};

/// One design variable (a transistor dimension, a bias current, …).
#[derive(Debug, Clone, PartialEq)]
pub struct DesignVariable {
    /// Human-readable name (e.g. `"w_in"`).
    pub name: String,
    /// Lower bound in `unit`.
    pub lo: f64,
    /// Upper bound in `unit`.
    pub hi: f64,
    /// Unit string for reports (e.g. `"um"`, `"uA"`, `"pF"`).
    pub unit: &'static str,
}

impl DesignVariable {
    /// Creates a design variable.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo`.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64, unit: &'static str) -> Self {
        assert!(hi > lo, "design variable bounds must satisfy hi > lo");
        Self {
            name: name.into(),
            lo,
            hi,
            unit,
        }
    }

    /// The midpoint of the allowed range.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// A benchmark circuit with its evaluation map.
///
/// `Send + Sync` is a supertrait: testbenches play the role HSPICE plays in
/// the paper, and the evaluation engine (`moheco-runtime`) dispatches them
/// from worker threads. Implementations are plain data + pure functions, so
/// this costs nothing.
pub trait Testbench: Send + Sync {
    /// Short identifier of the circuit (e.g. `"folded_cascode_035"`).
    fn name(&self) -> &str;

    /// The technology / statistical process model the circuit is designed in.
    fn technology(&self) -> &Technology;

    /// Number of transistors (defines the intra-die mismatch dimension).
    fn num_devices(&self) -> usize;

    /// The design variables and their ranges.
    fn design_variables(&self) -> &[DesignVariable];

    /// The specification set.
    fn specs(&self) -> &SpecSet;

    /// A hand-crafted reference sizing known to meet the specifications at
    /// the nominal process point; used by examples, tests and as a sanity
    /// anchor for the optimizer.
    fn reference_design(&self) -> Vec<f64>;

    /// Evaluates the circuit performances for sizing `x` at process sample `xi`.
    fn evaluate(&self, x: &[f64], xi: &ProcessSample) -> AmplifierPerformance;

    /// Evaluates one sizing against a whole block of process samples.
    ///
    /// The default implementation loops [`Self::evaluate`]; circuits whose
    /// evaluation is dominated by a repeated linear solve override it with a
    /// batched fast path (shared symbolic factorization, SIMD lanes). Any
    /// override MUST be *bit-identical* to the default loop — sample `i` of
    /// the returned vector must equal `self.evaluate(x, &xis[i])` exactly,
    /// including every failure case. The `batch_equivalence` integration
    /// suite enforces this for the shipped benchmarks.
    fn evaluate_block(&self, x: &[f64], xis: &[ProcessSample]) -> Vec<AmplifierPerformance> {
        xis.iter().map(|xi| self.evaluate(x, xi)).collect()
    }

    /// Box bounds of the design space, in design-variable order.
    fn bounds(&self) -> Vec<(f64, f64)> {
        self.design_variables()
            .iter()
            .map(|v| (v.lo, v.hi))
            .collect()
    }

    /// Number of design variables.
    fn dimension(&self) -> usize {
        self.design_variables().len()
    }

    /// Evaluates the circuit at the nominal (variation-free) process point.
    fn evaluate_nominal(&self, x: &[f64]) -> AmplifierPerformance {
        let xi = ProcessSample::nominal(self.technology().num_inter_die(), self.num_devices());
        self.evaluate(x, &xi)
    }

    /// Normalised nominal specification margins of sizing `x` (used by the
    /// acceptance-sampling screen).
    fn nominal_margins(&self, x: &[f64]) -> Vec<f64> {
        let perf = self.evaluate_nominal(x);
        self.specs().margins(&perf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_variable_construction() {
        let v = DesignVariable::new("w_in", 10.0, 100.0, "um");
        assert_eq!(v.midpoint(), 55.0);
        assert_eq!(v.unit, "um");
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let _ = DesignVariable::new("bad", 5.0, 1.0, "um");
    }
}
