//! Example 1: fully differential folded-cascode amplifier in 0.35 µm CMOS.
//!
//! This is the first benchmark circuit of the MOHECO paper (Fig. 5): a
//! fully differential folded-cascode OTA in a 0.35 µm, 3.3 V process with 15
//! transistors, specified as `A0 ≥ 70 dB`, `GBW ≥ 40 MHz`, `PM ≥ 60°`,
//! `output swing ≥ 4.6 V`, `power ≤ 1.07 mW`, and all transistors saturated.
//!
//! The evaluation flow is:
//! 1. derive the branch currents from the programmed tail current (with a
//!    resistor-defined bias spread and current-mirror mismatch),
//! 2. solve each transistor's gate bias for its branch current using the
//!    square-law compact model (with the process sample applied to the model
//!    card), yielding gm / gds / capacitances,
//! 3. assemble the differential half-circuit small-signal netlist and run an
//!    MNA AC sweep to extract `A0`, `GBW` and `PM`,
//! 4. compute output swing, power, area and input offset analytically from
//!    the operating points.

use crate::batch_eval::{evaluate_block_batched, PreparedSample};
use crate::specs::{AmplifierPerformance, SpecKind, SpecSet, SpecTarget, Specification};
use crate::testbench::{DesignVariable, Testbench};
use crate::variation_map::{
    bias_current_factor_from_shifts, inter_die_shifts, mismatch_deltas, perturbed_model_with_shifts,
};
use moheco_process::{tech_035um, ProcessSample, Technology};
use spicelite::ac::{log_space, sweep};
use spicelite::mosfet::{model_035um, MosGeometry, MosType, Mosfet};
use spicelite::netlist::LinearCircuit;

/// Index of each transistor in the mismatch vector (15 devices).
mod dev {
    pub const M1_IN_P: usize = 0;
    pub const M2_IN_N: usize = 1;
    pub const M3_TAIL: usize = 2;
    pub const M4_PSRC_P: usize = 3;
    pub const M5_PSRC_N: usize = 4;
    pub const M6_PCAS_P: usize = 5;
    #[allow(dead_code)]
    pub const M7_PCAS_N: usize = 6;
    pub const M8_NCAS_P: usize = 7;
    #[allow(dead_code)]
    pub const M9_NCAS_N: usize = 8;
    pub const M10_NMIR_P: usize = 9;
    pub const M11_NMIR_N: usize = 10;
    pub const M12_BIAS0: usize = 11;
    pub const COUNT: usize = 15;
}

/// The folded-cascode benchmark (example 1 of the paper).
#[derive(Debug, Clone)]
pub struct FoldedCascode {
    name: String,
    tech: Technology,
    specs: SpecSet,
    variables: Vec<DesignVariable>,
    /// Differential load capacitance per output (F).
    pub load_capacitance: f64,
}

impl Default for FoldedCascode {
    fn default() -> Self {
        Self::new()
    }
}

impl FoldedCascode {
    /// Creates the benchmark with the paper's specification values.
    pub fn new() -> Self {
        let specs = SpecSet::new(vec![
            Specification::new("A0", SpecTarget::GainDb, SpecKind::AtLeast, 70.0, 5.0),
            Specification::new("GBW", SpecTarget::GbwHz, SpecKind::AtLeast, 40e6, 10e6),
            Specification::new(
                "PM",
                SpecTarget::PhaseMarginDeg,
                SpecKind::AtLeast,
                60.0,
                5.0,
            ),
            Specification::new("OS", SpecTarget::OutputSwingV, SpecKind::AtLeast, 4.6, 0.3),
            Specification::new(
                "power",
                SpecTarget::PowerW,
                SpecKind::AtMost,
                1.07e-3,
                0.1e-3,
            ),
        ]);
        let variables = vec![
            DesignVariable::new("w_in", 50.0, 600.0, "um"),
            DesignVariable::new("l_in", 0.35, 2.0, "um"),
            DesignVariable::new("w_psrc", 50.0, 800.0, "um"),
            DesignVariable::new("l_p", 0.5, 2.0, "um"),
            DesignVariable::new("w_pcas", 50.0, 800.0, "um"),
            DesignVariable::new("w_ncas", 20.0, 400.0, "um"),
            DesignVariable::new("w_nmir", 20.0, 400.0, "um"),
            DesignVariable::new("l_n", 0.5, 2.0, "um"),
            DesignVariable::new("i_tail", 50.0, 500.0, "uA"),
            DesignVariable::new("l_cas", 0.35, 1.5, "um"),
        ];
        Self {
            name: "folded_cascode_035".into(),
            tech: tech_035um(),
            specs,
            variables,
            load_capacitance: 2e-12,
        }
    }

    /// Creates the benchmark at a process corner whose statistical spreads
    /// (inter-die sigmas and mismatch coefficients) are the nominal ones
    /// multiplied by `severity`: `> 1` models a harsher corner with lower
    /// yields, `< 1` a milder one. `severity = 1` is exactly [`Self::new`].
    ///
    /// The testbench name gains a `@x<severity>` suffix so scenario results
    /// from different corners can never be confused. Note that the engine
    /// simulation cache is keyed by the design point alone, not by the
    /// benchmark name — different corners of the same circuit must each get
    /// their own engine (as `Scenario::build` and `RunSpec::execute` do),
    /// never share one.
    pub fn with_corner(severity: f64) -> Self {
        let mut tb = Self::new();
        if severity != 1.0 {
            tb.tech = tb.tech.with_sigma_scale(severity);
            tb.name = format!("folded_cascode_035@x{severity:.2}");
        }
        tb
    }
}

/// Fraction of the half tail current that flows through each folded branch.
const FOLD_RATIO: f64 = 0.75;
/// Bias-network current as a fraction of the tail current.
const BIAS_NETWORK_RATIO: f64 = 0.15;
/// Saturation headroom margin on each output stack (V).
const SWING_MARGIN: f64 = 0.1;

impl Testbench for FoldedCascode {
    fn name(&self) -> &str {
        &self.name
    }

    fn technology(&self) -> &Technology {
        &self.tech
    }

    fn num_devices(&self) -> usize {
        dev::COUNT
    }

    fn design_variables(&self) -> &[DesignVariable] {
        &self.variables
    }

    fn specs(&self) -> &SpecSet {
        &self.specs
    }

    fn reference_design(&self) -> Vec<f64> {
        // w_in, l_in, w_psrc, l_p, w_pcas, w_ncas, w_nmir, l_n, i_tail, l_cas
        vec![120.0, 1.0, 300.0, 1.0, 120.0, 100.0, 120.0, 1.0, 160.0, 0.7]
    }

    fn evaluate(&self, x: &[f64], xi: &ProcessSample) -> AmplifierPerformance {
        let Some(p) = self.prepare(x, xi) else {
            return AmplifierPerformance::failed();
        };
        let freqs = log_space(1e3, 3e10, 50);
        let Ok(resp) = sweep(&p.ckt, p.out, &freqs) else {
            return AmplifierPerformance::failed();
        };
        let a0_db = resp.dc_gain_db();
        let (gbw_hz, pm_deg) = match (resp.unity_gain_freq(), resp.phase_margin_deg()) {
            (Ok(f), Ok(pm)) => (f, pm),
            _ => (0.0, 0.0),
        };
        p.into_performance(a0_db, gbw_hz, pm_deg)
    }

    fn evaluate_block(&self, x: &[f64], xis: &[ProcessSample]) -> Vec<AmplifierPerformance> {
        evaluate_block_batched(xis, |xi| self.prepare(x, xi))
    }
}

impl FoldedCascode {
    /// Everything before the AC sweep: parses the sizing, applies the process
    /// sample, solves the bias points, assembles the half circuit and computes
    /// the analytic figures (swing, power, area, offset, saturation).
    /// `None` means the sample is an evaluation failure
    /// ([`AmplifierPerformance::failed`]).
    fn prepare(&self, x: &[f64], xi: &ProcessSample) -> Option<PreparedSample> {
        assert_eq!(x.len(), self.dimension(), "wrong design-vector length");
        let um = 1e-6;
        let ua = 1e-6;
        let vdd = self.tech.vdd;

        let (w_in, l_in) = (x[0] * um, x[1] * um);
        let (w_psrc, l_p) = (x[2] * um, x[3] * um);
        let w_pcas = x[4] * um;
        let w_ncas = x[5] * um;
        let (w_nmir, l_n) = (x[6] * um, x[7] * um);
        let i_tail_prog = x[8] * ua;
        let l_cas = x[9] * um;

        // Geometries (the bias network uses fixed moderate devices).
        let geom = |w: f64, l: f64| MosGeometry::new(w, l, 1.0);
        let g_in = geom(w_in, l_in).ok()?;
        let g_tail = geom((2.0 * w_nmir).max(1e-6), l_n).ok()?;
        let g_psrc = geom(w_psrc, l_p).ok()?;
        let g_pcas = geom(w_pcas, l_cas).ok()?;
        let g_ncas = geom(w_ncas, l_cas).ok()?;
        let g_nmir = geom(w_nmir, l_n).ok()?;
        let g_bias = MosGeometry::new(10e-6, 1e-6, 1.0).expect("fixed bias geometry");

        // Branch currents. The programmed tail current spreads with the
        // resistor-defined bias reference; the folded-branch current picks up
        // a small mirror error from the bottom-mirror threshold mismatch.
        // The inter-die shifts depend only on the sample, so they are
        // accumulated once here instead of once per device model.
        let shifts = inter_die_shifts(&self.tech, xi);
        let bias_factor = bias_current_factor_from_shifts(&shifts);
        let i_tail = i_tail_prog * bias_factor;
        let id_in = 0.5 * i_tail;
        let mm_mir_p = mismatch_deltas(&self.tech.mismatch, xi, dev::M10_NMIR_P, g_nmir, 7.6e-9);
        let mm_mir_n = mismatch_deltas(&self.tech.mismatch, xi, dev::M11_NMIR_N, g_nmir, 7.6e-9);
        let mirror_err = -5.0 * 0.5 * (mm_mir_p.d_vth0 + mm_mir_n.d_vth0);
        let i_fold = (FOLD_RATIO * id_in * (1.0 + mirror_err)).max(1e-9);
        let i_psrc = id_in + i_fold;
        let i_bias_net = BIAS_NETWORK_RATIO * i_tail;

        // Per-device perturbed models.
        let nmodel = |idx: usize, g: MosGeometry| {
            perturbed_model_with_shifts(model_035um(MosType::Nmos), &shifts, &self.tech, xi, idx, g)
        };
        let pmodel = |idx: usize, g: MosGeometry| {
            perturbed_model_with_shifts(model_035um(MosType::Pmos), &shifts, &self.tech, xi, idx, g)
        };

        let m_in = Mosfet::new(nmodel(dev::M1_IN_P, g_in), g_in);
        let m_tail = Mosfet::new(nmodel(dev::M3_TAIL, g_tail), g_tail);
        let m_psrc = Mosfet::new(pmodel(dev::M4_PSRC_P, g_psrc), g_psrc);
        let m_pcas = Mosfet::new(pmodel(dev::M6_PCAS_P, g_pcas), g_pcas);
        let m_ncas = Mosfet::new(nmodel(dev::M8_NCAS_P, g_ncas), g_ncas);
        let m_nmir = Mosfet::new(nmodel(dev::M10_NMIR_P, g_nmir), g_nmir);

        // Solve gate biases for the branch currents at representative Vds.
        let op = |m: &Mosfet, id: f64, vds: f64| -> Option<spicelite::mosfet::MosOperatingPoint> {
            let vgs = m.vgs_for_current(id, vds, 0.0).ok()?;
            Some(m.operating_point(vgs, vds, 0.0))
        };
        let op_in = op(&m_in, id_in, 1.0)?;
        let op_tail = op(&m_tail, i_tail, 0.4)?;
        let op_psrc = op(&m_psrc, i_psrc, 0.5)?;
        let op_pcas = op(&m_pcas, i_fold, vdd / 2.0)?;
        let op_ncas = op(&m_ncas, i_fold, 0.7)?;
        let op_nmir = op(&m_nmir, i_fold, 0.5)?;

        // Saturation / headroom checks.
        let overdrives = [
            op_in.vov,
            op_tail.vov,
            op_psrc.vov,
            op_pcas.vov,
            op_ncas.vov,
            op_nmir.vov,
        ];
        let vov_ok = overdrives.iter().all(|&v| (0.04..=0.7).contains(&v));
        let stack_drop = op_psrc.vov + op_pcas.vov + op_ncas.vov + op_nmir.vov + 2.0 * SWING_MARGIN;
        let swing = 2.0 * (vdd - stack_drop).max(0.0);
        let input_headroom = op_in.vgs_headroom(vdd, op_tail.vov);
        let all_saturated = vov_ok && swing > 0.2 && input_headroom;

        // Small-signal half circuit.
        let mut ckt = LinearCircuit::new();
        let vin = ckt.node();
        let fold = ckt.node();
        let out = ckt.node();
        let casn = ckt.node();
        ckt.add_vsource(vin, 0, 1.0);
        // Input device: drain at the folding node, source at (AC ground) tail.
        ckt.add_mos_small_signal(
            fold, vin, 0, 0, op_in.gm, op_in.gds, 0.0, op_in.cgs, op_in.cgd, op_in.cdb, op_in.csb,
        );
        // Top PMOS current source: drain at the folding node.
        ckt.add_conductance(fold, 0, op_psrc.gds);
        ckt.add_capacitance(fold, 0, op_psrc.cdb + op_psrc.cgd);
        // PMOS cascode: common-gate from the folding node to the output.
        ckt.add_mos_small_signal(
            out,
            0,
            fold,
            0,
            op_pcas.gm,
            op_pcas.gds,
            op_pcas.gmb,
            op_pcas.cgs,
            op_pcas.cgd,
            op_pcas.cdb,
            op_pcas.csb,
        );
        // NMOS cascode: common-gate from the mirror node to the output.
        ckt.add_mos_small_signal(
            out,
            0,
            casn,
            0,
            op_ncas.gm,
            op_ncas.gds,
            op_ncas.gmb,
            op_ncas.cgs,
            op_ncas.cgd,
            op_ncas.cdb,
            op_ncas.csb,
        );
        // Bottom NMOS mirror: drain at the mirror node.
        ckt.add_conductance(casn, 0, op_nmir.gds);
        ckt.add_capacitance(casn, 0, op_nmir.cdb + op_nmir.cgd);
        // Load capacitance at the output.
        ckt.add_capacitance(out, 0, self.load_capacitance);

        // Power, area, offset.
        let power_w = vdd * (2.0 * i_psrc + i_bias_net);
        let area_um2 = (2.0 * g_in.gate_area()
            + g_tail.gate_area()
            + 2.0 * g_psrc.gate_area()
            + 2.0 * g_pcas.gate_area()
            + 2.0 * g_ncas.gate_area()
            + 2.0 * g_nmir.gate_area()
            + 4.0 * g_bias.gate_area())
            * 1e12;

        let mm = |idx: usize, g: MosGeometry| {
            mismatch_deltas(&self.tech.mismatch, xi, idx, g, 7.6e-9).d_vth0
        };
        let d_in = mm(dev::M1_IN_P, g_in) - mm(dev::M2_IN_N, g_in);
        let d_psrc = mm(dev::M4_PSRC_P, g_psrc) - mm(dev::M5_PSRC_N, g_psrc);
        let d_nmir = mm(dev::M10_NMIR_P, g_nmir) - mm(dev::M11_NMIR_N, g_nmir);
        let _ = mm(dev::M12_BIAS0, g_bias);
        let offset_v =
            (d_in + d_psrc * op_psrc.gm / op_in.gm + d_nmir * op_nmir.gm / op_in.gm).abs();

        Some(PreparedSample {
            ckt,
            out,
            output_swing_v: swing,
            power_w,
            area_um2,
            offset_v,
            all_saturated,
        })
    }
}

/// Helper extension: checks the input device's gate bias leaves headroom for
/// the tail current source.
trait HeadroomCheck {
    fn vgs_headroom(&self, vdd: f64, tail_vov: f64) -> bool;
}

impl HeadroomCheck for spicelite::mosfet::MosOperatingPoint {
    fn vgs_headroom(&self, vdd: f64, tail_vov: f64) -> bool {
        // Gate at mid-supply: source sits at vdd/2 - vgs; the tail needs at
        // least its overdrive plus a small margin below that.
        let source_voltage = vdd / 2.0 - (self.vth + self.vov);
        source_voltage > tail_vov + 0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_process::ProcessSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dimensions_match_paper() {
        let tb = FoldedCascode::new();
        assert_eq!(tb.num_devices(), 15);
        assert_eq!(tb.technology().num_variables(tb.num_devices()), 80);
        assert_eq!(tb.dimension(), 10);
        assert_eq!(tb.specs().len(), 5);
    }

    #[test]
    fn corner_builder_scales_spreads_and_renames() {
        let nominal = FoldedCascode::new();
        let harsh = FoldedCascode::with_corner(1.5);
        assert_eq!(FoldedCascode::with_corner(1.0).name(), nominal.name());
        assert_ne!(harsh.name(), nominal.name());
        for (n, h) in nominal
            .technology()
            .inter_die
            .iter()
            .zip(&harsh.technology().inter_die)
        {
            assert!((h.sigma - 1.5 * n.sigma).abs() <= 1e-12 * n.sigma.max(1.0));
        }
        // Nominal behaviour is untouched: same specs, same nominal margins.
        let x = nominal.reference_design();
        assert_eq!(nominal.nominal_margins(&x), harsh.nominal_margins(&x));
    }

    #[test]
    fn reference_design_meets_all_specs_nominally() {
        let tb = FoldedCascode::new();
        let x = tb.reference_design();
        let perf = tb.evaluate_nominal(&x);
        let margins = tb.specs().margins(&perf);
        assert!(
            tb.specs().all_met(&perf),
            "reference design must be feasible: {perf:?}, margins {margins:?}"
        );
        // Sanity on the magnitudes.
        assert!(perf.a0_db > 70.0 && perf.a0_db < 110.0, "A0 {}", perf.a0_db);
        assert!(
            perf.gbw_hz > 40e6 && perf.gbw_hz < 1e9,
            "GBW {}",
            perf.gbw_hz
        );
        assert!(
            perf.pm_deg > 60.0 && perf.pm_deg < 95.0,
            "PM {}",
            perf.pm_deg
        );
        assert!(perf.power_w < 1.07e-3, "power {}", perf.power_w);
        assert!(perf.output_swing_v >= 4.6, "swing {}", perf.output_swing_v);
        assert!(perf.all_saturated);
    }

    #[test]
    fn more_tail_current_means_more_power_and_gbw() {
        let tb = FoldedCascode::new();
        let mut lo = tb.reference_design();
        let mut hi = tb.reference_design();
        lo[8] = 100.0;
        hi[8] = 300.0;
        let p_lo = tb.evaluate_nominal(&lo);
        let p_hi = tb.evaluate_nominal(&hi);
        assert!(p_hi.power_w > p_lo.power_w);
        assert!(p_hi.gbw_hz > p_lo.gbw_hz);
    }

    #[test]
    fn excessive_current_violates_the_power_spec() {
        let tb = FoldedCascode::new();
        let mut x = tb.reference_design();
        x[8] = 450.0;
        let perf = tb.evaluate_nominal(&x);
        assert!(perf.power_w > 1.07e-3);
        assert!(!tb.specs().all_met(&perf));
    }

    #[test]
    fn longer_channels_increase_gain() {
        let tb = FoldedCascode::new();
        let mut short = tb.reference_design();
        let mut long = tb.reference_design();
        short[9] = 0.5;
        long[9] = 1.2;
        let p_short = tb.evaluate_nominal(&short);
        let p_long = tb.evaluate_nominal(&long);
        assert!(p_long.a0_db > p_short.a0_db);
    }

    #[test]
    fn process_variation_spreads_the_performances() {
        let tb = FoldedCascode::new();
        let x = tb.reference_design();
        let sampler = ProcessSampler::new(tb.technology().clone(), tb.num_devices());
        let mut rng = StdRng::seed_from_u64(42);
        let mut powers = Vec::new();
        let mut gains = Vec::new();
        let mut offsets = Vec::new();
        for _ in 0..120 {
            let xi = sampler.sample(&mut rng);
            let p = tb.evaluate(&x, &xi);
            powers.push(p.power_w);
            gains.push(p.a0_db);
            offsets.push(p.offset_v);
        }
        let spread = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt() / m.abs()
        };
        assert!(
            spread(&powers) > 0.002,
            "power must vary: {}",
            spread(&powers)
        );
        assert!(spread(&powers) < 0.2);
        assert!(
            spread(&gains) > 0.0005,
            "gain must vary: {}",
            spread(&gains)
        );
        // Offsets are mismatch-driven and therefore non-zero in general.
        assert!(offsets.iter().any(|&o| o > 1e-5));
    }

    #[test]
    fn reference_design_yield_is_high_but_not_trivially_zero() {
        let tb = FoldedCascode::new();
        let x = tb.reference_design();
        let sampler = ProcessSampler::new(tb.technology().clone(), tb.num_devices());
        let mut rng = StdRng::seed_from_u64(7);
        let n = 300;
        let mut passes = 0;
        for _ in 0..n {
            let xi = sampler.sample(&mut rng);
            if tb.specs().all_met(&tb.evaluate(&x, &xi)) {
                passes += 1;
            }
        }
        let y = passes as f64 / n as f64;
        assert!(y > 0.5, "reference yield too low: {y}");
    }

    #[test]
    fn nominal_margins_reflect_feasibility() {
        let tb = FoldedCascode::new();
        let good = tb.nominal_margins(&tb.reference_design());
        assert!(good.iter().all(|&m| m >= 0.0), "margins {good:?}");
        let mut bad_x = tb.reference_design();
        bad_x[8] = 60.0; // starves the amplifier
        let bad = tb.nominal_margins(&bad_x);
        assert!(bad.iter().any(|&m| m < 0.0), "margins {bad:?}");
    }

    #[test]
    #[should_panic]
    fn wrong_design_vector_length_panics() {
        let tb = FoldedCascode::new();
        let xi = ProcessSample::nominal(20, 15);
        let _ = tb.evaluate(&[1.0, 2.0], &xi);
    }
}
