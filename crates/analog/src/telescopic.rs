//! Example 2: fully differential two-stage telescopic-cascode amplifier in
//! 90 nm CMOS.
//!
//! This is the second benchmark circuit of the MOHECO paper (Fig. 7): a
//! two-stage amplifier (telescopic-cascode first stage, common-source second
//! stage with Miller compensation) in a 90 nm, 1.2 V process with 19
//! transistors and deliberately severe specifications:
//! `A0 ≥ 60 dB`, `GBW ≥ 300 MHz`, `PM ≥ 60°`, `output swing ≥ 1.8 V`,
//! `power ≤ 10 mW`, `area ≤ 180 µm²`, plus an input-offset bound and the
//! saturation requirement.
//!
//! Substitution note: the paper bounds the offset at 0.05 mV. With a generic
//! Pelgrom mismatch model and the 180 µm² area budget that bound is not
//! physically reachable, so this reproduction uses 3 mV — the value keeps the
//! offset spec *active* (it still forces large input devices and trades off
//! against the area bound), which is the behaviour that matters for the
//! optimizer comparison. See DESIGN.md.

use crate::batch_eval::{evaluate_block_batched, PreparedSample};
use crate::specs::{AmplifierPerformance, SpecKind, SpecSet, SpecTarget, Specification};
use crate::testbench::{DesignVariable, Testbench};
use crate::variation_map::{
    bias_current_factor_from_shifts, inter_die_shifts, mismatch_deltas, perturbed_model_with_shifts,
};
use moheco_process::{tech_90nm, ProcessSample, Technology};
use spicelite::ac::{log_space, sweep};
use spicelite::mosfet::{model_90nm, MosGeometry, MosType, Mosfet};
use spicelite::netlist::LinearCircuit;

/// Index of each transistor in the mismatch vector (19 devices).
mod dev {
    pub const M1_IN_P: usize = 0;
    pub const M2_IN_N: usize = 1;
    pub const M0_TAIL: usize = 2;
    pub const M3_NCAS_P: usize = 3;
    #[allow(dead_code)]
    pub const M4_NCAS_N: usize = 4;
    pub const M5_PCAS_P: usize = 5;
    #[allow(dead_code)]
    pub const M6_PCAS_N: usize = 6;
    pub const M7_PLOAD_P: usize = 7;
    pub const M8_PLOAD_N: usize = 8;
    pub const M9_DRV_P: usize = 9;
    pub const M10_DRV_N: usize = 10;
    pub const M11_SRC_P: usize = 11;
    pub const M12_SRC_N: usize = 12;
    pub const COUNT: usize = 19;
}

/// The two-stage telescopic-cascode benchmark (example 2 of the paper).
#[derive(Debug, Clone)]
pub struct TelescopicTwoStage {
    name: String,
    tech: Technology,
    specs: SpecSet,
    variables: Vec<DesignVariable>,
    /// Single-ended load capacitance at each second-stage output (F).
    pub load_capacitance: f64,
}

impl Default for TelescopicTwoStage {
    fn default() -> Self {
        Self::new()
    }
}

/// Bias-network current as a fraction of the tail current.
const BIAS_NETWORK_RATIO: f64 = 0.15;
/// Saturation headroom margin at the output stage (V).
const SWING_MARGIN: f64 = 0.05;

impl TelescopicTwoStage {
    /// Creates the benchmark with the paper's specification values
    /// (offset bound substituted, see the module documentation).
    pub fn new() -> Self {
        let specs = SpecSet::new(vec![
            Specification::new("A0", SpecTarget::GainDb, SpecKind::AtLeast, 60.0, 5.0),
            Specification::new("GBW", SpecTarget::GbwHz, SpecKind::AtLeast, 300e6, 50e6),
            Specification::new(
                "PM",
                SpecTarget::PhaseMarginDeg,
                SpecKind::AtLeast,
                60.0,
                5.0,
            ),
            Specification::new("OS", SpecTarget::OutputSwingV, SpecKind::AtLeast, 1.8, 0.1),
            Specification::new("power", SpecTarget::PowerW, SpecKind::AtMost, 10e-3, 1e-3),
            Specification::new("area", SpecTarget::AreaUm2, SpecKind::AtMost, 180.0, 10.0),
            Specification::new(
                "offset",
                SpecTarget::OffsetV,
                SpecKind::AtMost,
                3e-3,
                0.5e-3,
            ),
        ]);
        let variables = vec![
            DesignVariable::new("w_in", 20.0, 300.0, "um"),
            DesignVariable::new("l_in", 0.1, 0.5, "um"),
            DesignVariable::new("w_ncas", 10.0, 200.0, "um"),
            DesignVariable::new("w_pcas", 10.0, 200.0, "um"),
            DesignVariable::new("w_pload", 10.0, 300.0, "um"),
            DesignVariable::new("l_1", 0.1, 0.6, "um"),
            DesignVariable::new("w_p2", 50.0, 800.0, "um"),
            DesignVariable::new("l_2", 0.1, 0.5, "um"),
            DesignVariable::new("w_n2", 20.0, 400.0, "um"),
            DesignVariable::new("i_tail", 100.0, 1000.0, "uA"),
            DesignVariable::new("i_2", 200.0, 3000.0, "uA"),
            DesignVariable::new("cc", 0.2, 3.0, "pF"),
        ];
        Self {
            name: "telescopic_two_stage_90nm".into(),
            tech: tech_90nm(),
            specs,
            variables,
            load_capacitance: 1e-12,
        }
    }

    /// Creates the benchmark at a process corner whose statistical spreads
    /// are the nominal ones multiplied by `severity` (see
    /// [`FoldedCascode::with_corner`](crate::FoldedCascode::with_corner)).
    pub fn with_corner(severity: f64) -> Self {
        let mut tb = Self::new();
        if severity != 1.0 {
            tb.tech = tb.tech.with_sigma_scale(severity);
            tb.name = format!("telescopic_two_stage_90nm@x{severity:.2}");
        }
        tb
    }
}

impl Testbench for TelescopicTwoStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn technology(&self) -> &Technology {
        &self.tech
    }

    fn num_devices(&self) -> usize {
        dev::COUNT
    }

    fn design_variables(&self) -> &[DesignVariable] {
        &self.variables
    }

    fn specs(&self) -> &SpecSet {
        &self.specs
    }

    fn reference_design(&self) -> Vec<f64> {
        // w_in, l_in, w_ncas, w_pcas, w_pload, l_1, w_p2, l_2, w_n2, i_tail, i_2, cc
        vec![
            100.0, 0.25, 40.0, 40.0, 40.0, 0.2, 150.0, 0.1, 80.0, 400.0, 1200.0, 2.0,
        ]
    }

    fn evaluate(&self, x: &[f64], xi: &ProcessSample) -> AmplifierPerformance {
        let Some(p) = self.prepare(x, xi) else {
            return AmplifierPerformance::failed();
        };
        let freqs = log_space(1e3, 3e10, 50);
        let Ok(resp) = sweep(&p.ckt, p.out, &freqs) else {
            return AmplifierPerformance::failed();
        };
        let a0_db = resp.dc_gain_db();
        let (gbw_hz, pm_deg) = match (resp.unity_gain_freq(), resp.phase_margin_deg()) {
            (Ok(f), Ok(pm)) => (f, pm),
            _ => (0.0, 0.0),
        };
        p.into_performance(a0_db, gbw_hz, pm_deg)
    }

    fn evaluate_block(&self, x: &[f64], xis: &[ProcessSample]) -> Vec<AmplifierPerformance> {
        evaluate_block_batched(xis, |xi| self.prepare(x, xi))
    }
}

impl TelescopicTwoStage {
    /// Everything before the AC sweep (see
    /// [`FoldedCascode::prepare`](crate::FoldedCascode)): sizing parse,
    /// process-sample application, bias solution, half-circuit assembly and
    /// the analytic figures. `None` means the sample fails evaluation.
    fn prepare(&self, x: &[f64], xi: &ProcessSample) -> Option<PreparedSample> {
        assert_eq!(x.len(), self.dimension(), "wrong design-vector length");
        let um = 1e-6;
        let ua = 1e-6;
        let vdd = self.tech.vdd;
        let tox = 2.1e-9;

        let (w_in, l_in) = (x[0] * um, x[1] * um);
        let w_ncas = x[2] * um;
        let w_pcas = x[3] * um;
        let w_pload = x[4] * um;
        let l_1 = x[5] * um;
        let (w_p2, l_2) = (x[6] * um, x[7] * um);
        let w_n2 = x[8] * um;
        let i_tail_prog = x[9] * ua;
        let i_2_prog = x[10] * ua;
        let cc = x[11] * 1e-12;

        let geom = |w: f64, l: f64| MosGeometry::new(w, l, 1.0);
        let g_in = geom(w_in, l_in).ok()?;
        let g_ncas = geom(w_ncas, l_1).ok()?;
        let g_pcas = geom(w_pcas, l_1).ok()?;
        let g_pload = geom(w_pload, l_1).ok()?;
        let g_p2 = geom(w_p2, l_2).ok()?;
        let g_n2 = geom(w_n2, l_2).ok()?;
        let g_tail = geom((0.6 * w_in).max(1e-6), 0.3e-6).ok()?;
        let g_bias = MosGeometry::new(4e-6, 0.5e-6, 1.0).expect("fixed bias geometry");

        // Branch currents. Inter-die shifts are accumulated once per sample
        // and shared by every device model below.
        let shifts = inter_die_shifts(&self.tech, xi);
        let bias_factor = bias_current_factor_from_shifts(&shifts);
        let i_tail = i_tail_prog * bias_factor;
        let id1 = 0.5 * i_tail;
        // The second-stage current is mirrored from the same reference and
        // picks up a small mismatch error from its source devices.
        let mm_src_p = mismatch_deltas(&self.tech.mismatch, xi, dev::M11_SRC_P, g_n2, tox);
        let mm_src_n = mismatch_deltas(&self.tech.mismatch, xi, dev::M12_SRC_N, g_n2, tox);
        let mirror_err = -6.0 * 0.5 * (mm_src_p.d_vth0 + mm_src_n.d_vth0);
        let i_2 = (i_2_prog * bias_factor * (1.0 + mirror_err)).max(1e-9);
        let i_bias_net = BIAS_NETWORK_RATIO * i_tail;

        // Per-device perturbed models and operating points.
        let nmodel = |idx: usize, g: MosGeometry| {
            perturbed_model_with_shifts(model_90nm(MosType::Nmos), &shifts, &self.tech, xi, idx, g)
        };
        let pmodel = |idx: usize, g: MosGeometry| {
            perturbed_model_with_shifts(model_90nm(MosType::Pmos), &shifts, &self.tech, xi, idx, g)
        };
        let m_in = Mosfet::new(nmodel(dev::M1_IN_P, g_in), g_in);
        let m_tail = Mosfet::new(nmodel(dev::M0_TAIL, g_tail), g_tail);
        let m_ncas = Mosfet::new(nmodel(dev::M3_NCAS_P, g_ncas), g_ncas);
        let m_pcas = Mosfet::new(pmodel(dev::M5_PCAS_P, g_pcas), g_pcas);
        let m_pload = Mosfet::new(pmodel(dev::M7_PLOAD_P, g_pload), g_pload);
        let m_p2 = Mosfet::new(pmodel(dev::M9_DRV_P, g_p2), g_p2);
        let m_n2 = Mosfet::new(nmodel(dev::M11_SRC_P, g_n2), g_n2);

        let op = |m: &Mosfet, id: f64, vds: f64| -> Option<spicelite::mosfet::MosOperatingPoint> {
            let vgs = m.vgs_for_current(id, vds, 0.0).ok()?;
            Some(m.operating_point(vgs, vds, 0.0))
        };
        let op_in = op(&m_in, id1, 0.3)?;
        let op_tail = op(&m_tail, i_tail, 0.15)?;
        let op_ncas = op(&m_ncas, id1, 0.3)?;
        let op_pcas = op(&m_pcas, id1, 0.3)?;
        let op_pload = op(&m_pload, id1, 0.2)?;
        let op_p2 = op(&m_p2, i_2, vdd / 2.0)?;
        let op_n2 = op(&m_n2, i_2, vdd / 2.0)?;

        // Saturation / headroom checks.
        let overdrives = [
            op_in.vov,
            op_tail.vov,
            op_ncas.vov,
            op_pcas.vov,
            op_pload.vov,
            op_p2.vov,
            op_n2.vov,
        ];
        let vov_ok = overdrives.iter().all(|&v| (0.03..=0.5).contains(&v));
        // Telescopic first-stage stack must fit in the supply.
        let stack1 =
            op_tail.vov + op_in.vov + op_ncas.vov + op_pcas.vov + op_pload.vov + 4.0 * 0.05;
        let swing = 2.0 * (vdd - op_p2.vov - op_n2.vov - 2.0 * SWING_MARGIN).max(0.0);
        let all_saturated = vov_ok && stack1 < vdd && swing > 0.2;

        // Small-signal half circuit (two stages plus Miller compensation).
        let mut ckt = LinearCircuit::new();
        let vin = ckt.node();
        let s3 = ckt.node(); // source of the NMOS cascode / drain of the input device
        let o1 = ckt.node(); // first-stage output
        let sp = ckt.node(); // source of the PMOS cascode / drain of the PMOS load
        let out = ckt.node(); // second-stage output
        ckt.add_vsource(vin, 0, 1.0);
        // Input device.
        ckt.add_mos_small_signal(
            s3, vin, 0, 0, op_in.gm, op_in.gds, 0.0, op_in.cgs, op_in.cgd, op_in.cdb, op_in.csb,
        );
        // NMOS cascode (common gate s3 -> o1).
        ckt.add_mos_small_signal(
            o1,
            0,
            s3,
            0,
            op_ncas.gm,
            op_ncas.gds,
            op_ncas.gmb,
            op_ncas.cgs,
            op_ncas.cgd,
            op_ncas.cdb,
            op_ncas.csb,
        );
        // PMOS cascode (common gate sp -> o1).
        ckt.add_mos_small_signal(
            o1,
            0,
            sp,
            0,
            op_pcas.gm,
            op_pcas.gds,
            op_pcas.gmb,
            op_pcas.cgs,
            op_pcas.cgd,
            op_pcas.cdb,
            op_pcas.csb,
        );
        // PMOS load (current source into sp).
        ckt.add_conductance(sp, 0, op_pload.gds);
        ckt.add_capacitance(sp, 0, op_pload.cdb + op_pload.cgd);
        // Second stage: PMOS common-source driver plus NMOS current-source load.
        ckt.add_mos_small_signal(
            out, o1, 0, 0, op_p2.gm, op_p2.gds, 0.0, op_p2.cgs, op_p2.cgd, op_p2.cdb, op_p2.csb,
        );
        ckt.add_conductance(out, 0, op_n2.gds);
        ckt.add_capacitance(out, 0, op_n2.cdb + op_n2.cgd);
        // Miller compensation and load.
        ckt.add_capacitance(o1, out, cc);
        ckt.add_capacitance(out, 0, self.load_capacitance);

        // Power, area, offset.
        let power_w = vdd * (i_tail + 2.0 * i_2 + i_bias_net);
        let area_um2 = (2.0 * g_in.gate_area()
            + g_tail.gate_area()
            + 2.0 * g_ncas.gate_area()
            + 2.0 * g_pcas.gate_area()
            + 2.0 * g_pload.gate_area()
            + 2.0 * g_p2.gate_area()
            + 2.0 * g_n2.gate_area()
            + 6.0 * g_bias.gate_area())
            * 1e12;

        let mm = |idx: usize, g: MosGeometry| {
            mismatch_deltas(&self.tech.mismatch, xi, idx, g, tox).d_vth0
        };
        let d_in = mm(dev::M1_IN_P, g_in) - mm(dev::M2_IN_N, g_in);
        let d_load = mm(dev::M7_PLOAD_P, g_pload) - mm(dev::M8_PLOAD_N, g_pload);
        let d_drv = mm(dev::M9_DRV_P, g_p2) - mm(dev::M10_DRV_N, g_p2);
        // Second-stage offset is divided by the first-stage gain when referred
        // to the input.
        let a1 = op_in.gm
            / (op_in.gds * op_ncas.gds / op_ncas.gm + op_pload.gds * op_pcas.gds / op_pcas.gm)
                .max(1e-12);
        let offset_v = (d_in + d_load * op_pload.gm / op_in.gm + d_drv / a1.max(1.0)).abs();

        Some(PreparedSample {
            ckt,
            out,
            output_swing_v: swing,
            power_w,
            area_um2,
            offset_v,
            all_saturated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_process::ProcessSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dimensions_match_paper() {
        let tb = TelescopicTwoStage::new();
        assert_eq!(tb.num_devices(), 19);
        assert_eq!(tb.technology().num_variables(tb.num_devices()), 123);
        assert_eq!(tb.dimension(), 12);
        assert_eq!(tb.specs().len(), 7);
    }

    #[test]
    fn reference_design_meets_all_specs_nominally() {
        let tb = TelescopicTwoStage::new();
        let x = tb.reference_design();
        let perf = tb.evaluate_nominal(&x);
        let margins = tb.specs().margins(&perf);
        assert!(
            tb.specs().all_met(&perf),
            "reference design must be feasible: {perf:?}, margins {margins:?}"
        );
        assert!(perf.a0_db >= 60.0, "A0 {}", perf.a0_db);
        assert!(perf.gbw_hz >= 300e6, "GBW {}", perf.gbw_hz);
        assert!(perf.pm_deg >= 60.0, "PM {}", perf.pm_deg);
        assert!(perf.output_swing_v >= 1.8, "OS {}", perf.output_swing_v);
        assert!(perf.power_w <= 10e-3, "power {}", perf.power_w);
        assert!(perf.area_um2 <= 180.0, "area {}", perf.area_um2);
        assert!(perf.all_saturated);
    }

    #[test]
    fn smaller_compensation_cap_degrades_phase_margin() {
        let tb = TelescopicTwoStage::new();
        let mut small = tb.reference_design();
        let mut large = tb.reference_design();
        small[11] = 0.4;
        large[11] = 2.5;
        let p_small = tb.evaluate_nominal(&small);
        let p_large = tb.evaluate_nominal(&large);
        assert!(p_small.pm_deg < p_large.pm_deg);
        assert!(p_small.gbw_hz > p_large.gbw_hz);
    }

    #[test]
    fn area_scales_with_device_widths() {
        let tb = TelescopicTwoStage::new();
        let mut big = tb.reference_design();
        big[0] = 280.0;
        big[6] = 700.0;
        let p_ref = tb.evaluate_nominal(&tb.reference_design());
        let p_big = tb.evaluate_nominal(&big);
        assert!(p_big.area_um2 > p_ref.area_um2);
    }

    #[test]
    fn larger_input_devices_reduce_offset_spread() {
        let tb = TelescopicTwoStage::new();
        let sampler = ProcessSampler::new(tb.technology().clone(), tb.num_devices());
        let spread = |w_in: f64, seed: u64| {
            let mut x = tb.reference_design();
            x[0] = w_in;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut acc = 0.0;
            let n = 80;
            for _ in 0..n {
                let xi = sampler.sample(&mut rng);
                acc += tb.evaluate(&x, &xi).offset_v.powi(2);
            }
            (acc / n as f64).sqrt()
        };
        let small = spread(30.0, 9);
        let large = spread(250.0, 9);
        assert!(
            large < small,
            "offset rms: small-dev {small}, large-dev {large}"
        );
    }

    #[test]
    fn excess_second_stage_current_violates_power() {
        let tb = TelescopicTwoStage::new();
        let mut x = tb.reference_design();
        x[10] = 3000.0;
        x[9] = 1000.0;
        let soft = tb.evaluate_nominal(&x);
        // 1.2 V * (1 + 6 + 0.15) mA  = 8.6 mW is still within spec; push the
        // violation through the bias spread check instead by confirming the
        // monotonic trend.
        let p_ref = tb.evaluate_nominal(&tb.reference_design());
        assert!(soft.power_w > p_ref.power_w);
    }

    #[test]
    fn reference_design_yield_is_reasonable() {
        let tb = TelescopicTwoStage::new();
        let x = tb.reference_design();
        let sampler = ProcessSampler::new(tb.technology().clone(), tb.num_devices());
        let mut rng = StdRng::seed_from_u64(31);
        let n = 300;
        let mut passes = 0;
        for _ in 0..n {
            let xi = sampler.sample(&mut rng);
            if tb.specs().all_met(&tb.evaluate(&x, &xi)) {
                passes += 1;
            }
        }
        let y = passes as f64 / n as f64;
        assert!(y > 0.4, "reference yield too low: {y}");
    }

    #[test]
    fn random_corner_of_design_space_is_infeasible() {
        let tb = TelescopicTwoStage::new();
        // Minimum everything: starved amplifier cannot meet the specs.
        let x: Vec<f64> = tb.design_variables().iter().map(|v| v.lo).collect();
        let perf = tb.evaluate_nominal(&x);
        assert!(!tb.specs().all_met(&perf));
    }
}
