//! End-to-end service guarantees, exercised over real TCP connections:
//!
//! * Basic routes behave (`/healthz`, `/metrics`, 404s, 400s, 405s).
//! * Two tenants' jobs run concurrently and their streamed rows are
//!   byte-identical to an offline `run_campaign` of the same spec.
//! * A job killed mid-row (torn JSONL tail on disk) and resubmitted to a
//!   fresh server over the same data directory resumes and streams
//!   byte-identical output — the HTTP torture version of the campaign
//!   resume test.
//! * A full queue answers 429 and holds nothing of the rejected job; the
//!   resubmission after drain completes normally (no silent drop).
//! * Per-tenant cache quotas trim a cache-hungry tenant without starving a
//!   small one.

use moheco_bench::jobspec::{EngineReuse, JobSpec};
use moheco_bench::{run_campaign, Algo, BudgetClass, ScheduleKind};
use moheco_serve::client::request;
use moheco_serve::{job_path, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moheco-service-suite-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn server(name: &str, workers: usize, queue_depth: usize, quota: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth,
        data_dir: temp_dir(name),
        tenant_quota_blocks: quota,
    })
    .expect("server starts")
}

fn spec(seeds: Vec<u64>, reuse: EngineReuse) -> JobSpec {
    JobSpec {
        scenarios: vec!["margin_wall".to_string()],
        algos: vec![Algo::TwoStage],
        budget: BudgetClass::Tiny,
        seeds,
        reuse,
        ..JobSpec::default()
    }
}

fn submit(addr: SocketAddr, tenant: &str, spec: &JobSpec) -> (u16, String) {
    let response = request(
        addr,
        "POST",
        "/jobs",
        &[("X-Tenant", tenant)],
        spec.to_json().as_bytes(),
    )
    .expect("submit");
    let body = response.text();
    let id = body
        .split("\"job\": \"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or("")
        .to_string();
    (response.status, id)
}

fn stream(addr: SocketAddr, id: &str) -> Vec<u8> {
    let response = request(addr, "GET", &format!("/jobs/{id}/stream"), &[], b"").expect("stream");
    assert_eq!(response.status, 200, "stream status for {id}");
    response.body
}

fn wait_for_state(addr: SocketAddr, id: &str, state: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let response = request(addr, "GET", &format!("/jobs/{id}"), &[], b"").expect("status");
        let body = response.text();
        if body.contains(&format!("\"state\": \"{state}\"")) {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {state}: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn basic_routes_and_errors() {
    let server = server("routes", 1, 4, 0);
    let addr = server.addr();

    let health = request(addr, "GET", "/healthz", &[], b"").expect("healthz");
    assert_eq!((health.status, health.text().as_str()), (200, "ok\n"));

    let metrics = request(addr, "GET", "/metrics", &[], b"").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("moheco_serve_jobs_submitted_total"));
    assert!(text.contains("moheco_serve_queue_depth"));
    assert!(text.contains("moheco_pool_cache_blocks_total"));
    assert!(text.contains("moheco_tenant_cache_quota_blocks"));

    let missing = request(addr, "GET", "/jobs/no-such-job", &[], b"").expect("404");
    assert_eq!(missing.status, 404);
    let missing_stream = request(addr, "GET", "/jobs/no-such-job/stream", &[], b"").expect("404");
    assert_eq!(missing_stream.status, 404);

    let garbage = request(addr, "POST", "/jobs", &[], b"not json at all").expect("400");
    assert_eq!(garbage.status, 400);
    let empty_grid = request(addr, "POST", "/jobs", &[], b"{\"scenarios\": \"\"}").expect("400");
    assert_eq!(empty_grid.status, 400);
    let bad_tenant = request(
        addr,
        "POST",
        "/jobs",
        &[("X-Tenant", "no spaces allowed")],
        b"{}",
    )
    .expect("400");
    assert_eq!(bad_tenant.status, 400);

    let bad_method = request(addr, "DELETE", "/jobs/x", &[], b"").expect("405");
    assert_eq!(bad_method.status, 405);

    server.shutdown();
}

#[test]
fn concurrent_tenants_stream_campaign_identical_rows() {
    let server = server("concurrent", 2, 8, 0);
    let addr = server.addr();
    let spec = spec(vec![1, 2], EngineReuse::Reset);

    // Both jobs enter the queue before either stream is opened, so the two
    // workers execute them concurrently.
    let (status_a, id_a) = submit(addr, "acme", &spec);
    let (status_b, id_b) = submit(addr, "beta", &spec);
    assert_eq!((status_a, status_b), (202, 202));
    assert_ne!(id_a, id_b, "tenant is part of the job identity");

    // Stream both concurrently (each blocks until its job finishes).
    let handle = {
        let id_b = id_b.clone();
        std::thread::spawn(move || stream(addr, &id_b))
    };
    let rows_a = stream(addr, &id_a);
    let rows_b = handle.join().expect("stream thread");
    assert_eq!(rows_a, rows_b, "same spec, same rows, tenant-independent");

    // Reset-mode service rows are byte-identical to an offline campaign of
    // the same spec — the server adds transport, not drift.
    let reference_path = temp_dir("concurrent-ref").join("campaign.jsonl");
    run_campaign(&spec, &reference_path, |_| {}).expect("reference campaign");
    let reference = std::fs::read(&reference_path).expect("reference rows");
    assert_eq!(rows_a, reference);

    // Identical resubmission collapses onto the completed job.
    let (status_again, id_again) = submit(addr, "acme", &spec);
    assert_eq!((status_again, id_again), (200, id_a));

    server.shutdown();
}

#[test]
fn killed_job_resumes_byte_identically_over_http() {
    let spec = spec(vec![1, 2, 3], EngineReuse::Reset);

    // Reference pass: run the job to completion on server A.
    let server_a = server("torture-a", 1, 4, 0);
    let (status, id) = submit(server_a.addr(), "acme", &spec);
    assert_eq!(status, 202);
    let full_bytes = stream(server_a.addr(), &id);
    assert_eq!(spec.job_id("acme"), id, "job id is the spec fingerprint");
    let path_a = job_path(&temp_dir_existing("torture-a"), "acme", &id);
    server_a.shutdown();

    // "Kill the worker mid-row": server B's data dir gets the first two
    // complete rows plus a torn partial row, and the intact `.spec`
    // sidecar — exactly what a mid-write kill leaves behind.
    let dir_b = temp_dir("torture-b");
    let path_b = job_path(&dir_b, "acme", &id);
    std::fs::create_dir_all(path_b.parent().expect("tenant dir")).expect("mkdir");
    let text = String::from_utf8(full_bytes.clone()).expect("utf8 rows");
    let mut torn: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
    torn.push_str("{\"schema_version\": 5, \"scenario\": \"margin_w");
    std::fs::write(&path_b, &torn).expect("torn file");
    std::fs::copy(
        path_a.with_extension("jsonl.spec"),
        path_b.with_extension("jsonl.spec"),
    )
    .expect("sidecar survives the kill");

    // Resubmitting the identical spec to a fresh server resumes the job and
    // streams byte-identical output.
    let server_b = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 4,
        data_dir: dir_b,
        tenant_quota_blocks: 0,
    })
    .expect("server B");
    let (status, resumed_id) = submit(server_b.addr(), "acme", &spec);
    assert_eq!((status, resumed_id.as_str()), (202, id.as_str()));
    let resumed_bytes = stream(server_b.addr(), &id);
    assert_eq!(
        resumed_bytes, full_bytes,
        "resumed streamed JSONL differs from the uninterrupted run"
    );
    let final_status = wait_for_state(server_b.addr(), &id, "completed");
    assert!(
        final_status.contains("\"resumed\": 2"),
        "two complete rows should have been skipped: {final_status}"
    );
    server_b.shutdown();
}

/// [`temp_dir`] without the wipe — for re-opening a dir another server made.
fn temp_dir_existing(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moheco-service-suite-{name}"))
}

/// An adaptive spec whose schedule takes several rounds: two scenario
/// groups, six seeds each, gated by cross-seed CI.
fn ocba_spec() -> JobSpec {
    JobSpec {
        scenarios: vec![
            "margin_wall".to_string(),
            "quadratic_feasibility".to_string(),
        ],
        algos: vec![Algo::TwoStage],
        budget: BudgetClass::Tiny,
        seeds: (1..=6).collect(),
        schedule: ScheduleKind::Ocba,
        reuse: EngineReuse::Reset,
        ..JobSpec::default()
    }
}

#[test]
fn killed_ocba_job_resumes_byte_identically_over_http() {
    // An adaptive job's row log IS its scheduler's replay journal, so this
    // is the sharpest resume test the service can face: kill the job
    // mid-row, resubmit to a fresh server, and demand that the scheduler
    // re-derive the identical allocation sequence from the consumed rows.
    let spec = ocba_spec();

    // Reference pass: the full job on server A — and the acceptance bar
    // that a single-worker service run is byte-identical to the offline
    // campaign runner on the same spec.
    let server_a = server("ocba-torture-a", 1, 4, 0);
    let (status, id) = submit(server_a.addr(), "acme", &spec);
    assert_eq!(status, 202);
    let full_bytes = stream(server_a.addr(), &id);
    let status_a = wait_for_state(server_a.addr(), &id, "completed");
    assert!(
        status_a.contains("\"schedule\": \"ocba\""),
        "status must carry the scheduler kind: {status_a}"
    );
    let path_a = job_path(&temp_dir_existing("ocba-torture-a"), "acme", &id);
    server_a.shutdown();

    let reference_path = temp_dir("ocba-torture-ref").join("campaign.jsonl");
    let reference = run_campaign(&spec, &reference_path, |_| {}).expect("reference campaign");
    assert_eq!(
        full_bytes,
        std::fs::read(&reference_path).expect("reference rows"),
        "single-worker service rows differ from the offline campaign"
    );
    assert!(
        status_a.contains(&format!(
            "\"seeds_saved\": {}",
            reference.schedule.seeds_saved
        )),
        "status seeds_saved must match the offline schedule: {status_a}"
    );

    // Kill it mid-row: four complete rows plus a torn tail, plus the
    // intact `.spec` sidecar, in a fresh server's data dir.
    let full_rows = full_bytes.iter().filter(|&&b| b == b'\n').count();
    assert!(full_rows > 4, "need rows beyond the torn prefix");
    let dir_b = temp_dir("ocba-torture-b");
    let path_b = job_path(&dir_b, "acme", &id);
    std::fs::create_dir_all(path_b.parent().expect("tenant dir")).expect("mkdir");
    let text = String::from_utf8(full_bytes.clone()).expect("utf8 rows");
    let mut torn: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
    torn.push_str("{\"schema_version\": 5, \"scenario\": \"quadratic_fea");
    std::fs::write(&path_b, &torn).expect("torn file");
    std::fs::copy(
        path_a.with_extension("jsonl.spec"),
        path_b.with_extension("jsonl.spec"),
    )
    .expect("sidecar survives the kill");

    let server_b = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 4,
        data_dir: dir_b,
        tenant_quota_blocks: 0,
    })
    .expect("server B");
    let (status, resumed_id) = submit(server_b.addr(), "acme", &spec);
    assert_eq!((status, resumed_id.as_str()), (202, id.as_str()));
    let resumed_bytes = stream(server_b.addr(), &id);
    assert_eq!(
        resumed_bytes, full_bytes,
        "resumed adaptive job streamed different JSONL than the uninterrupted run"
    );
    let final_status = wait_for_state(server_b.addr(), &id, "completed");
    assert!(
        final_status.contains("\"resumed\": 4"),
        "four complete rows should have been skipped: {final_status}"
    );
    server_b.shutdown();
}

#[test]
fn multi_worker_ocba_job_streams_single_worker_bytes() {
    // Three workers over one adaptive job: one drives, the idle two pull
    // cells from the same allocation loop. Because the core commits
    // completions in schedule order and reset-mode cells are pure functions
    // of their identity, the extra workers must change nothing in the
    // stream — and the savings accounting must match the offline run.
    let spec = ocba_spec();
    let reference_path = temp_dir("multiworker-ref").join("campaign.jsonl");
    let reference = run_campaign(&spec, &reference_path, |_| {}).expect("reference campaign");
    let reference_bytes = std::fs::read(&reference_path).expect("reference rows");

    let server = server("multiworker", 3, 4, 0);
    let (status, id) = submit(server.addr(), "acme", &spec);
    assert_eq!(status, 202);
    let rows = stream(server.addr(), &id);
    assert_eq!(
        rows, reference_bytes,
        "multi-worker service rows differ from the single-worker bytes"
    );
    let final_status = wait_for_state(server.addr(), &id, "completed");
    assert!(
        final_status.contains(&format!(
            "\"seeds_saved\": {}",
            reference.schedule.seeds_saved
        )),
        "multi-worker seeds_saved must match the offline schedule: {final_status}"
    );
    server.shutdown();
}

#[test]
fn full_queue_answers_429_and_drops_nothing() {
    // No workers yet: submissions stay queued, deterministically.
    let mut server = server("backpressure", 0, 2, 0);
    let addr = server.addr();

    let (s1, id1) = submit(addr, "acme", &spec(vec![1], EngineReuse::Reset));
    let (s2, id2) = submit(addr, "acme", &spec(vec![2], EngineReuse::Reset));
    assert_eq!((s1, s2), (202, 202));

    let rejected_spec = spec(vec![3], EngineReuse::Reset);
    let (s3, _) = submit(addr, "acme", &rejected_spec);
    assert_eq!(s3, 429, "third job exceeds the queue depth");

    // The rejected job left no trace: its would-be id is unknown.
    let ghost = request(
        addr,
        "GET",
        &format!("/jobs/{}", rejected_spec.job_id("acme")),
        &[],
        b"",
    )
    .expect("status");
    assert_eq!(ghost.status, 404);
    let metrics = request(addr, "GET", "/metrics", &[], b"").expect("metrics");
    assert!(metrics
        .text()
        .contains("moheco_serve_jobs_rejected_total 1"));
    assert!(metrics.text().contains("moheco_serve_queue_depth 2"));

    // Drain the queue, then resubmit the rejected job: it runs to
    // completion — backpressure delayed it, nothing was lost.
    server.start_workers(1);
    wait_for_state(addr, &id1, "completed");
    wait_for_state(addr, &id2, "completed");
    let (s3_again, id3) = submit(addr, "acme", &rejected_spec);
    assert_eq!(s3_again, 202);
    wait_for_state(addr, &id3, "completed");
    assert!(!stream(addr, &id3).is_empty());

    server.shutdown();
}

#[test]
fn tenant_quota_trims_the_hog_without_starving_the_mouse() {
    // Reference: the hog's grid on an unlimited server.
    let hog_spec = JobSpec {
        scenarios: vec![
            "margin_wall".to_string(),
            "quadratic_feasibility".to_string(),
        ],
        algos: vec![Algo::TwoStage],
        budget: BudgetClass::Tiny,
        seeds: vec![1, 2, 3],
        reuse: EngineReuse::SharedCache,
        ..JobSpec::default()
    };
    let mouse_spec = spec(vec![1], EngineReuse::SharedCache);

    let unlimited = server("quota-ref", 1, 4, 0);
    let (_, ref_id) = submit(unlimited.addr(), "hog", &hog_spec);
    wait_for_state(unlimited.addr(), &ref_id, "completed");
    let unbounded_blocks: usize = unlimited
        .pool()
        .tenant_usage()
        .iter()
        .map(|(_, blocks, _)| *blocks)
        .sum();
    unlimited.shutdown();

    let quota = 2;
    assert!(
        unbounded_blocks > quota,
        "reference run must out-size the quota for this test to mean anything \
         (got {unbounded_blocks} blocks)"
    );

    let limited = server("quota", 2, 8, quota);
    let addr = limited.addr();
    let (_, hog_id) = submit(addr, "hog", &hog_spec);
    let (_, mouse_id) = submit(addr, "mouse", &mouse_spec);
    wait_for_state(addr, &hog_id, "completed");
    wait_for_state(addr, &mouse_id, "completed");

    let usage = limited.pool().tenant_usage();
    let blocks_of = |tenant: &str| {
        usage
            .iter()
            .find(|(t, _, _)| t == tenant)
            .map(|(_, blocks, _)| *blocks)
            .unwrap_or(0)
    };
    assert!(
        blocks_of("hog") <= quota,
        "hog holds {} blocks, quota is {quota}",
        blocks_of("hog")
    );
    assert!(
        blocks_of("mouse") > 0,
        "the mouse's warm cache must survive the hog's trimming"
    );

    // The quota shows up in the exposition too.
    let metrics = request(addr, "GET", "/metrics", &[], b"")
        .expect("metrics")
        .text();
    assert!(metrics.contains("moheco_tenant_cache_blocks{tenant=\"hog\"}"));
    assert!(metrics.contains("moheco_tenant_cache_blocks{tenant=\"mouse\"}"));
    assert!(metrics.contains(&format!("moheco_tenant_cache_quota_blocks {quota}")));

    limited.shutdown();
}
