//! The shared, bounded, tenant-partitioned engine pool behind the job
//! server.
//!
//! One engine lives per `(tenant, scenario, engine kind, estimator, cache
//! bound)` — the same "never share an engine across scenarios" rule the
//! campaign layer follows (cache keys could alias across simulation
//! models), extended by a tenant dimension so one tenant's jobs can never
//! read from or evict another tenant's warm cache. Engines persist across
//! jobs, which is the whole point of a long-lived service: a tenant
//! resubmitting a related spec hits its own warm blocks.
//!
//! Engines are stateful (active seed, cache, counters), so a slot is leased
//! to exactly one job cell at a time: [`EnginePool::checkout`] blocks until
//! the slot is free and returns an RAII [`EngineLease`] that prepares the
//! engine (reseed + reset per the reuse mode) and releases the slot on drop.
//! Under the shared execution core, several workers may execute cells of
//! the *same* job concurrently; cells of one `(job, scenario)` pair map to
//! the same slot and therefore serialize on its lease, while cells of
//! different scenarios proceed in parallel. That serialization is a
//! throughput cost only — result bytes are pinned by the core's in-order
//! commit, not by which worker held a lease when.
//!
//! Per-tenant cache quotas sit *on top of* each engine's own
//! `max_cached_blocks`: after a cell completes (and its lease is dropped),
//! the job runner calls [`EnginePool::enforce_tenant_quota`], which trims
//! the tenant's idle engines to an equal share of the quota. Busy engines
//! are skipped — never evict under a running batch — and get trimmed when
//! their own cell finishes, so enforcement is eventually consistent but
//! deadlock-free (no lease is ever held while waiting for another).

use moheco_bench::jobspec::{EngineReuse, JobSpec};
use moheco_runtime::{EngineCacheUsage, EngineConfig, EvalEngine};
use moheco_sampling::SamplingPlan;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// The slot identity: everything that shapes an engine's behaviour, plus the
/// tenant partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SlotKey {
    tenant: String,
    scenario: String,
    engine: &'static str,
    estimator: &'static str,
    max_cached_blocks: usize,
}

struct Slot {
    engine: Arc<dyn EvalEngine>,
    /// `true` while a lease is out. Guarded by the pool mutex; the pool
    /// condvar wakes waiters on release.
    busy: bool,
}

/// The tenant-partitioned engine pool. Cheap to share (`Arc<EnginePool>`).
pub struct EnginePool {
    quota_blocks: usize,
    inner: Mutex<HashMap<SlotKey, Slot>>,
    freed: Condvar,
}

impl EnginePool {
    /// Creates an empty pool. `quota_blocks` caps each tenant's *total*
    /// cached blocks across all its engines (0 = no tenant quota).
    pub fn new(quota_blocks: usize) -> Self {
        Self {
            quota_blocks,
            inner: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
        }
    }

    /// The configured per-tenant quota (blocks; 0 = unlimited).
    pub fn quota_blocks(&self) -> usize {
        self.quota_blocks
    }

    /// Leases the tenant's engine for one cell of `spec` on `scenario`,
    /// blocking while another cell holds it. The engine comes back prepared:
    /// reseeded to `seed` and reset according to the spec's reuse mode.
    pub fn checkout(
        &self,
        tenant: &str,
        scenario: &str,
        spec: &JobSpec,
        seed: u64,
    ) -> EngineLease<'_> {
        let key = SlotKey {
            tenant: tenant.to_string(),
            scenario: scenario.to_string(),
            engine: spec.engine.label(),
            estimator: spec.estimator.label(),
            max_cached_blocks: spec.max_cached_blocks,
        };
        let mut inner = self.inner.lock().expect("pool lock");
        loop {
            let slot = inner.entry(key.clone()).or_insert_with(|| Slot {
                engine: build_engine(spec),
                busy: false,
            });
            if !slot.busy {
                slot.busy = true;
                let engine = slot.engine.clone();
                engine.reseed(seed);
                match spec.reuse {
                    EngineReuse::Reset => engine.reset(),
                    EngineReuse::SharedCache => engine.reset_counters(),
                }
                return EngineLease {
                    pool: self,
                    key,
                    engine,
                };
            }
            inner = self.freed.wait(inner).expect("pool lock");
        }
    }

    /// Trims the tenant's engines so their combined cache stays within the
    /// quota: every engine holding blocks is cut to an equal share. Busy
    /// engines are skipped (their cell's own completion enforces the quota
    /// next); call this only after dropping your own lease. A no-op when no
    /// quota is configured or the tenant is within it.
    pub fn enforce_tenant_quota(&self, tenant: &str) {
        if self.quota_blocks == 0 {
            return;
        }
        // Snapshot the tenant's idle engines under the lock, trim outside it
        // (trimming can walk a large cache; holding the pool lock that long
        // would stall every checkout).
        let idle: Vec<Arc<dyn EvalEngine>> = {
            let inner = self.inner.lock().expect("pool lock");
            inner
                .iter()
                .filter(|(key, slot)| key.tenant == tenant && !slot.busy)
                .map(|(_, slot)| slot.engine.clone())
                .collect()
        };
        let total: usize = idle.iter().map(|e| e.cache_blocks()).sum();
        if total <= self.quota_blocks {
            return;
        }
        let holding = idle.iter().filter(|e| e.cache_blocks() > 0).count().max(1);
        let share = (self.quota_blocks / holding).max(1);
        for engine in &idle {
            if engine.cache_blocks() > share {
                engine.enforce_cache_limit(share);
            }
        }
    }

    /// Per-engine cache footprint of the whole pool, labelled
    /// `tenant/scenario/estimator` and sorted for deterministic exposition.
    pub fn usage(&self) -> Vec<EngineCacheUsage> {
        let inner = self.inner.lock().expect("pool lock");
        let mut usage: Vec<EngineCacheUsage> = inner
            .iter()
            .map(|(key, slot)| EngineCacheUsage {
                label: format!("{}/{}/{}", key.tenant, key.scenario, key.estimator),
                blocks: slot.engine.cache_blocks(),
                bytes: slot.engine.cache_bytes(),
            })
            .collect();
        usage.sort_by(|a, b| a.label.cmp(&b.label));
        usage
    }

    /// `(tenant, blocks, bytes)` cache totals per tenant, sorted by tenant.
    pub fn tenant_usage(&self) -> Vec<(String, usize, usize)> {
        let inner = self.inner.lock().expect("pool lock");
        let mut per_tenant: HashMap<&str, (usize, usize)> = HashMap::new();
        for (key, slot) in inner.iter() {
            let entry = per_tenant.entry(key.tenant.as_str()).or_default();
            entry.0 += slot.engine.cache_blocks();
            entry.1 += slot.engine.cache_bytes();
        }
        let mut rows: Vec<(String, usize, usize)> = per_tenant
            .into_iter()
            .map(|(t, (blocks, bytes))| (t.to_string(), blocks, bytes))
            .collect();
        rows.sort();
        rows
    }
}

fn build_engine(spec: &JobSpec) -> Arc<dyn EvalEngine> {
    spec.engine.build_with(EngineConfig {
        plan: SamplingPlan::LatinHypercube,
        seed: spec.seeds.first().copied().unwrap_or(1),
        estimator: spec.estimator,
        max_cached_blocks: spec.max_cached_blocks,
        ..EngineConfig::default()
    })
}

/// An exclusive lease on one pool slot; dropping it frees the slot and
/// wakes one waiting [`EnginePool::checkout`].
pub struct EngineLease<'a> {
    pool: &'a EnginePool,
    key: SlotKey,
    /// The leased engine, prepared for the cell.
    pub engine: Arc<dyn EvalEngine>,
}

impl Drop for EngineLease<'_> {
    fn drop(&mut self) {
        let mut inner = self.pool.inner.lock().expect("pool lock");
        if let Some(slot) = inner.get_mut(&self.key) {
            slot.busy = false;
        }
        self.pool.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_bench::{Algo, EngineKind};

    fn spec() -> JobSpec {
        JobSpec {
            scenarios: vec!["margin_wall".into()],
            algos: vec![Algo::TwoStage],
            seeds: vec![1],
            engine: EngineKind::Serial,
            ..JobSpec::default()
        }
    }

    #[test]
    fn checkout_prepares_and_serializes_a_slot() {
        let pool = Arc::new(EnginePool::new(0));
        let lease = pool.checkout("acme", "margin_wall", &spec(), 7);
        assert_eq!(lease.engine.active_seed(), 7);
        // A second checkout of the same slot must wait for the lease.
        let contender = {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let lease = pool.checkout("acme", "margin_wall", &spec(), 8);
                lease.engine.active_seed()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!contender.is_finished(), "contender must block on the slot");
        drop(lease);
        assert_eq!(contender.join().expect("contender"), 8);
    }

    #[test]
    fn tenants_get_distinct_engines() {
        let pool = EnginePool::new(0);
        let a = pool.checkout("acme", "margin_wall", &spec(), 1);
        // Does not block: different tenant, different slot.
        let b = pool.checkout("beta", "margin_wall", &spec(), 1);
        assert!(!Arc::ptr_eq(&a.engine, &b.engine));
        drop((a, b));
        assert_eq!(pool.usage().len(), 2);
        assert_eq!(pool.tenant_usage().len(), 2);
    }
}
