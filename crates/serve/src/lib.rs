#![warn(missing_docs)]
//! Yield-optimization-as-a-service: a std-only HTTP/1.1 job server over the
//! MOHECO campaign engine pool.
//!
//! The service accepts scenario×algo×seed job submissions as flat JSON
//! ([`moheco_bench::JobSpec`] — the same type `moheco-campaign` runs), queues
//! them FIFO behind a bounded queue (429 on overflow, never a silent drop),
//! executes them on a fixed pool of worker threads against a shared
//! tenant-partitioned [`pool::EnginePool`], and streams each job's JSONL
//! rows back live via chunked transfer. Jobs are identified by their spec
//! fingerprint, so a killed job resubmitted to a fresh server over the same
//! data directory resumes from the rows already on disk — byte-identically,
//! via the exact `.spec` sidecar protocol the campaign runner uses.
//!
//! Everything is `std`: `TcpListener`, hand-rolled HTTP parsing
//! ([`http`]), `Mutex`/`Condvar` queues. The build environment is offline,
//! so there is no tokio, hyper, or serde — and at this service's scale
//! (long-running simulation jobs, not microsecond request churn) blocking
//! threads are the simpler and entirely adequate model.

pub mod client;
pub mod http;
pub mod jobs;
pub mod pool;
pub mod server;

pub use client::{request, request_observed, Response};
pub use jobs::{
    job_path, ActiveJob, JobRecord, JobState, NextJob, Registry, ServiceCounters, Submit,
};
pub use pool::{EngineLease, EnginePool};
pub use server::{Server, ServerConfig};
