//! `moheco-load` — mixed-tenant load generator and service acceptance
//! check for `moheco-serve`.
//!
//! ```text
//! moheco-load --addr 127.0.0.1:7811 [--tenants 2] [--jobs-per-tenant 2]
//!             [--seeds 2] [--budget tiny] [--out BENCH_service.json]
//! ```
//!
//! One thread per tenant submits its jobs sequentially, streaming each
//! job's rows live and timing every row from submission to arrival. After a
//! job completes the generator re-streams it twice (any byte difference is
//! a determinism violation) and resubmits the identical spec (anything but
//! "already known, completed, same bytes" is a resume violation). 429
//! rejections are counted and retried — never silently dropped. Results
//! land in a flat `BENCH_service.json`; the exit status is nonzero if any
//! job failed or any violation was observed, which is what lets CI gate on
//! this binary directly.

use moheco_bench::jobspec::{EngineReuse, JobSpec, ScheduleKind};
use moheco_bench::{Algo, BudgetClass, CliArgs};
use moheco_serve::client::{request, request_observed};
use std::io::Write;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

#[derive(Default)]
struct TenantOutcome {
    rows: usize,
    row_latencies_ms: Vec<f64>,
    rejected_429: usize,
    resubmits: usize,
    determinism_violations: usize,
    resume_violations: usize,
    failures: usize,
}

fn main() {
    let args = CliArgs::parse();
    match run(&args) {
        Ok(0) => {}
        Ok(violations) => {
            eprintln!("error: {violations} violation(s) observed");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn job_spec(budget: BudgetClass, job_index: usize, seeds_per_job: usize) -> JobSpec {
    let first = (job_index * seeds_per_job) as u64 + 1;
    JobSpec {
        scenarios: vec!["margin_wall".to_string()],
        algos: vec![Algo::TwoStage],
        budget,
        seeds: (first..first + seeds_per_job as u64).collect(),
        reuse: EngineReuse::SharedCache,
        // Alternate the scheduler across jobs so every load pass exercises
        // both the fixed rectangle and the adaptive OCBA path over real
        // TCP — including their separate resume/determinism re-checks.
        schedule: if job_index.is_multiple_of(2) {
            ScheduleKind::Fixed
        } else {
            ScheduleKind::Ocba
        },
        ..JobSpec::default()
    }
}

/// Pulls `"key": "value"` out of a flat JSON body.
fn json_str_field(body: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = body.find(&marker)? + marker.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_string())
}

fn submit_with_retry(
    addr: SocketAddr,
    tenant: &str,
    body: &str,
    outcome: &mut TenantOutcome,
) -> Result<(u16, String), String> {
    loop {
        let response = request(
            addr,
            "POST",
            "/jobs",
            &[("X-Tenant", tenant), ("Content-Type", "application/json")],
            body.as_bytes(),
        )?;
        if response.status == 429 {
            outcome.rejected_429 += 1;
            std::thread::sleep(Duration::from_millis(50));
            continue;
        }
        if response.status != 202 && response.status != 200 {
            return Err(format!(
                "submit for {tenant} got {}: {}",
                response.status,
                response.text().trim()
            ));
        }
        let id = json_str_field(&response.text(), "job")
            .ok_or_else(|| format!("no job id in {:?}", response.text()))?;
        return Ok((response.status, id));
    }
}

fn run_tenant(
    addr: SocketAddr,
    tenant: String,
    jobs: usize,
    seeds_per_job: usize,
    budget: BudgetClass,
) -> Result<TenantOutcome, String> {
    let mut outcome = TenantOutcome::default();
    for job_index in 0..jobs {
        let spec = job_spec(budget, job_index, seeds_per_job);
        let body = spec.to_json();
        let submitted_at = Instant::now();
        let (_, id) = submit_with_retry(addr, &tenant, &body, &mut outcome)?;

        // Stream the rows live, timing each one against the submission.
        let mut latencies = Vec::new();
        let first = request_observed(
            addr,
            "GET",
            &format!("/jobs/{id}/stream"),
            &[],
            b"",
            |chunk| {
                let arrived = submitted_at.elapsed().as_secs_f64() * 1e3;
                for _ in chunk.iter().filter(|&&b| b == b'\n') {
                    latencies.push(arrived);
                }
            },
        )?;
        if first.status != 200 {
            return Err(format!("stream for {id} got {}", first.status));
        }
        outcome.rows += latencies.len();
        outcome.row_latencies_ms.append(&mut latencies);

        let status = request(addr, "GET", &format!("/jobs/{id}"), &[], b"")?;
        if json_str_field(&status.text(), "state").as_deref() != Some("completed") {
            outcome.failures += 1;
            eprintln!("job {id} did not complete: {}", status.text().trim());
            continue;
        }

        // Determinism: a finished job's stream is a pure file read — any
        // byte drift between re-streams is a bug.
        for _ in 0..2 {
            let again = request(addr, "GET", &format!("/jobs/{id}/stream"), &[], b"")?;
            if again.body != first.body {
                outcome.determinism_violations += 1;
            }
        }

        // Resume: the identical spec must collapse onto the same completed
        // job (200, not 202) and stream the same bytes.
        outcome.resubmits += 1;
        let (resubmit_status, resubmit_id) = submit_with_retry(addr, &tenant, &body, &mut outcome)?;
        let replay = request(
            addr,
            "GET",
            &format!("/jobs/{resubmit_id}/stream"),
            &[],
            b"",
        )?;
        if resubmit_status != 200 || resubmit_id != id || replay.body != first.body {
            outcome.resume_violations += 1;
        }
    }
    Ok(outcome)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// min/max of per-tenant cached blocks from `/metrics` (1.0 when every
/// tenant holds the same amount — including all-zero).
fn quota_fairness(metrics: &str) -> f64 {
    let blocks: Vec<f64> = metrics
        .lines()
        .filter(|l| l.starts_with("moheco_tenant_cache_blocks{"))
        .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
        .collect();
    let max = blocks.iter().cloned().fold(0.0, f64::max);
    if max == 0.0 {
        return 1.0;
    }
    let min = blocks.iter().cloned().fold(f64::INFINITY, f64::min);
    min / max
}

fn run(args: &CliArgs) -> Result<usize, String> {
    args.expect_only(
        &[],
        &[
            "--addr",
            "--tenants",
            "--jobs-per-tenant",
            "--seeds",
            "--budget",
            "--out",
        ],
    )?;
    let addr: SocketAddr = args
        .value_of("--addr")?
        .ok_or("--addr is required")?
        .parse()
        .map_err(|e| format!("bad --addr: {e}"))?;
    let tenants = args.u64_of("--tenants", 2)? as usize;
    let jobs_per_tenant = args.u64_of("--jobs-per-tenant", 2)? as usize;
    let seeds_per_job = args.u64_of("--seeds", 2)? as usize;
    let budget = match args.value_of("--budget")? {
        None => BudgetClass::Tiny,
        Some(v) => BudgetClass::parse(v).ok_or_else(|| format!("bad --budget {v:?}"))?,
    };
    let out_path = args
        .value_of("--out")?
        .unwrap_or("BENCH_service.json")
        .to_string();

    let started = Instant::now();
    let handles: Vec<_> = (0..tenants)
        .map(|i| {
            let tenant = format!("tenant-{i}");
            std::thread::spawn(move || {
                run_tenant(addr, tenant, jobs_per_tenant, seeds_per_job, budget)
            })
        })
        .collect();
    let mut total = TenantOutcome::default();
    for handle in handles {
        let outcome = handle.join().map_err(|_| "tenant thread panicked")??;
        total.rows += outcome.rows;
        total.row_latencies_ms.extend(outcome.row_latencies_ms);
        total.rejected_429 += outcome.rejected_429;
        total.resubmits += outcome.resubmits;
        total.determinism_violations += outcome.determinism_violations;
        total.resume_violations += outcome.resume_violations;
        total.failures += outcome.failures;
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let metrics = request(addr, "GET", "/metrics", &[], b"")?;
    let fairness = quota_fairness(&metrics.text());

    total
        .row_latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let jobs = tenants * jobs_per_tenant;
    let report = format!(
        "{{\n  \"schema_version\": 1,\n  \"jobs\": {jobs},\n  \"tenants\": {tenants},\n  \"rows\": {},\n  \"jobs_per_sec\": {:.3},\n  \"row_latency_p50_ms\": {:.3},\n  \"row_latency_p99_ms\": {:.3},\n  \"rejected_429\": {},\n  \"resubmits\": {},\n  \"failures\": {},\n  \"determinism_violations\": {},\n  \"resume_violations\": {},\n  \"quota_fairness\": {:.3},\n  \"wall_time_ms\": {:.1}\n}}\n",
        total.rows,
        jobs as f64 / (wall_ms / 1e3).max(1e-9),
        percentile(&total.row_latencies_ms, 50.0),
        percentile(&total.row_latencies_ms, 99.0),
        total.rejected_429,
        total.resubmits,
        total.failures,
        total.determinism_violations,
        total.resume_violations,
        fairness,
        wall_ms,
    );
    let mut file =
        std::fs::File::create(&out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    file.write_all(report.as_bytes())
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("{report}");
    Ok(total.failures + total.determinism_violations + total.resume_violations)
}
