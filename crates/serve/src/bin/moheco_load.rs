//! `moheco-load` — mixed-tenant load generator and service acceptance
//! check for `moheco-serve`.
//!
//! ```text
//! moheco-load --addr 127.0.0.1:7811 [--tenants 2] [--jobs-per-tenant 2]
//!             [--seeds 2] [--budget tiny] [--out BENCH_service.json]
//! ```
//!
//! One thread per tenant submits its jobs sequentially, streaming each
//! job's rows live and timing every row from submission to arrival. After a
//! job completes the generator re-streams it twice (any byte difference is
//! a determinism violation) and resubmits the identical spec (anything but
//! "already known, completed, same bytes" is a resume violation). 429
//! rejections are counted and retried — never silently dropped. Results
//! land in a flat `BENCH_service.json`; the exit status is nonzero if any
//! job failed or any violation was observed, which is what lets CI gate on
//! this binary directly.

use moheco_bench::jobspec::{EngineReuse, JobSpec, ScheduleKind};
use moheco_bench::{Algo, BudgetClass, CliArgs};
use moheco_serve::client::{request, request_observed};
use std::io::Write;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

#[derive(Default)]
struct TenantOutcome {
    rows: usize,
    row_latencies_ms: Vec<f64>,
    // Per-scheduler buckets: fixed and adaptive jobs have structurally
    // different row cadences (the rectangle streams steadily; OCBA rounds
    // burst), so pooling their latencies into one p50/p99 hides both.
    fixed_jobs: usize,
    fixed_row_latencies_ms: Vec<f64>,
    ocba_jobs: usize,
    ocba_row_latencies_ms: Vec<f64>,
    ocba_seeds_saved: usize,
    rejected_429: usize,
    resubmits: usize,
    determinism_violations: usize,
    resume_violations: usize,
    failures: usize,
}

fn main() {
    let args = CliArgs::parse();
    match run(&args) {
        Ok(0) => {}
        Ok(violations) => {
            eprintln!("error: {violations} violation(s) observed");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn job_spec(budget: BudgetClass, job_index: usize, seeds_per_job: usize) -> JobSpec {
    let first = (job_index * seeds_per_job) as u64 + 1;
    JobSpec {
        scenarios: vec!["margin_wall".to_string()],
        algos: vec![Algo::TwoStage],
        budget,
        seeds: (first..first + seeds_per_job as u64).collect(),
        reuse: EngineReuse::SharedCache,
        // Alternate the scheduler across jobs so every load pass exercises
        // both the fixed rectangle and the adaptive OCBA path over real
        // TCP — including their separate resume/determinism re-checks.
        schedule: if job_index.is_multiple_of(2) {
            ScheduleKind::Fixed
        } else {
            ScheduleKind::Ocba
        },
        ..JobSpec::default()
    }
}

/// Pulls `"key": "value"` out of a flat JSON body.
fn json_str_field(body: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = body.find(&marker)? + marker.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_string())
}

/// Pulls `"key": 123` (a bare number) out of a flat JSON body.
fn json_num_field(body: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\": ");
    let start = body.find(&marker)? + marker.len();
    let end = body[start..]
        .find([',', '}', '\n'])
        .map(|i| i + start)
        .unwrap_or(body.len());
    body[start..end].trim().parse().ok()
}

/// The 64-bit finalizer from splitmix64 — a cheap, deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The delay before retrying a 429'd submission: exponential backoff from
/// 25ms, doubling per attempt and capped at 2s, plus jitter of up to half
/// the base delay hashed from `(tenant, job_index, attempt)`. The jitter
/// desynchronizes tenants that got rejected in the same instant (so they
/// don't stampede the queue in lockstep forever) while staying fully
/// deterministic: a re-run of the same load shape backs off identically.
fn backoff_delay(tenant: &str, job_index: usize, attempt: u32) -> Duration {
    const BASE_MS: u64 = 25;
    const CAP_MS: u64 = 2_000;
    let base = BASE_MS.saturating_mul(1 << attempt.min(16)).min(CAP_MS);
    let mut hash = 0xcbf2_9ce4_8422_2325;
    for byte in tenant.bytes() {
        hash = splitmix64(hash ^ u64::from(byte));
    }
    hash = splitmix64(hash ^ job_index as u64);
    hash = splitmix64(hash ^ u64::from(attempt));
    Duration::from_millis(base + hash % (base / 2).max(1))
}

fn submit_with_retry(
    addr: SocketAddr,
    tenant: &str,
    job_index: usize,
    body: &str,
    outcome: &mut TenantOutcome,
) -> Result<(u16, String), String> {
    let mut attempt = 0u32;
    loop {
        let response = request(
            addr,
            "POST",
            "/jobs",
            &[("X-Tenant", tenant), ("Content-Type", "application/json")],
            body.as_bytes(),
        )?;
        if response.status == 429 {
            outcome.rejected_429 += 1;
            std::thread::sleep(backoff_delay(tenant, job_index, attempt));
            attempt += 1;
            continue;
        }
        if response.status != 202 && response.status != 200 {
            return Err(format!(
                "submit for {tenant} got {}: {}",
                response.status,
                response.text().trim()
            ));
        }
        let id = json_str_field(&response.text(), "job")
            .ok_or_else(|| format!("no job id in {:?}", response.text()))?;
        return Ok((response.status, id));
    }
}

fn run_tenant(
    addr: SocketAddr,
    tenant: String,
    jobs: usize,
    seeds_per_job: usize,
    budget: BudgetClass,
) -> Result<TenantOutcome, String> {
    let mut outcome = TenantOutcome::default();
    for job_index in 0..jobs {
        let spec = job_spec(budget, job_index, seeds_per_job);
        let adaptive = spec.schedule == ScheduleKind::Ocba;
        let body = spec.to_json();
        let submitted_at = Instant::now();
        let (_, id) = submit_with_retry(addr, &tenant, job_index, &body, &mut outcome)?;

        // Stream the rows live, timing each one against the submission.
        let mut latencies = Vec::new();
        let first = request_observed(
            addr,
            "GET",
            &format!("/jobs/{id}/stream"),
            &[],
            b"",
            |chunk| {
                let arrived = submitted_at.elapsed().as_secs_f64() * 1e3;
                for _ in chunk.iter().filter(|&&b| b == b'\n') {
                    latencies.push(arrived);
                }
            },
        )?;
        if first.status != 200 {
            return Err(format!("stream for {id} got {}", first.status));
        }
        outcome.rows += latencies.len();
        if adaptive {
            outcome.ocba_jobs += 1;
            outcome.ocba_row_latencies_ms.extend(latencies.iter());
        } else {
            outcome.fixed_jobs += 1;
            outcome.fixed_row_latencies_ms.extend(latencies.iter());
        }
        outcome.row_latencies_ms.append(&mut latencies);

        let status = request(addr, "GET", &format!("/jobs/{id}"), &[], b"")?;
        if json_str_field(&status.text(), "state").as_deref() != Some("completed") {
            outcome.failures += 1;
            eprintln!("job {id} did not complete: {}", status.text().trim());
            continue;
        }
        if adaptive {
            outcome.ocba_seeds_saved +=
                json_num_field(&status.text(), "seeds_saved").unwrap_or(0.0) as usize;
        }

        // Determinism: a finished job's stream is a pure file read — any
        // byte drift between re-streams is a bug.
        for _ in 0..2 {
            let again = request(addr, "GET", &format!("/jobs/{id}/stream"), &[], b"")?;
            if again.body != first.body {
                outcome.determinism_violations += 1;
            }
        }

        // Resume: the identical spec must collapse onto the same completed
        // job (200, not 202) and stream the same bytes.
        outcome.resubmits += 1;
        let (resubmit_status, resubmit_id) =
            submit_with_retry(addr, &tenant, job_index, &body, &mut outcome)?;
        let replay = request(
            addr,
            "GET",
            &format!("/jobs/{resubmit_id}/stream"),
            &[],
            b"",
        )?;
        if resubmit_status != 200 || resubmit_id != id || replay.body != first.body {
            outcome.resume_violations += 1;
        }
    }
    Ok(outcome)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// min/max of per-tenant cached blocks from `/metrics` (1.0 when every
/// tenant holds the same amount — including all-zero).
fn quota_fairness(metrics: &str) -> f64 {
    let blocks: Vec<f64> = metrics
        .lines()
        .filter(|l| l.starts_with("moheco_tenant_cache_blocks{"))
        .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
        .collect();
    let max = blocks.iter().cloned().fold(0.0, f64::max);
    if max == 0.0 {
        return 1.0;
    }
    let min = blocks.iter().cloned().fold(f64::INFINITY, f64::min);
    min / max
}

fn run(args: &CliArgs) -> Result<usize, String> {
    args.expect_only(
        &[],
        &[
            "--addr",
            "--tenants",
            "--jobs-per-tenant",
            "--seeds",
            "--budget",
            "--out",
        ],
    )?;
    let addr: SocketAddr = args
        .value_of("--addr")?
        .ok_or("--addr is required")?
        .parse()
        .map_err(|e| format!("bad --addr: {e}"))?;
    let tenants = args.u64_of("--tenants", 2)? as usize;
    let jobs_per_tenant = args.u64_of("--jobs-per-tenant", 2)? as usize;
    let seeds_per_job = args.u64_of("--seeds", 2)? as usize;
    let budget = match args.value_of("--budget")? {
        None => BudgetClass::Tiny,
        Some(v) => BudgetClass::parse(v).ok_or_else(|| format!("bad --budget {v:?}"))?,
    };
    let out_path = args
        .value_of("--out")?
        .unwrap_or("BENCH_service.json")
        .to_string();

    let started = Instant::now();
    let handles: Vec<_> = (0..tenants)
        .map(|i| {
            let tenant = format!("tenant-{i}");
            std::thread::spawn(move || {
                run_tenant(addr, tenant, jobs_per_tenant, seeds_per_job, budget)
            })
        })
        .collect();
    let mut total = TenantOutcome::default();
    for handle in handles {
        let outcome = handle.join().map_err(|_| "tenant thread panicked")??;
        total.rows += outcome.rows;
        total.row_latencies_ms.extend(outcome.row_latencies_ms);
        total.fixed_jobs += outcome.fixed_jobs;
        total
            .fixed_row_latencies_ms
            .extend(outcome.fixed_row_latencies_ms);
        total.ocba_jobs += outcome.ocba_jobs;
        total
            .ocba_row_latencies_ms
            .extend(outcome.ocba_row_latencies_ms);
        total.ocba_seeds_saved += outcome.ocba_seeds_saved;
        total.rejected_429 += outcome.rejected_429;
        total.resubmits += outcome.resubmits;
        total.determinism_violations += outcome.determinism_violations;
        total.resume_violations += outcome.resume_violations;
        total.failures += outcome.failures;
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let metrics = request(addr, "GET", "/metrics", &[], b"")?;
    let fairness = quota_fairness(&metrics.text());

    let sort = |latencies: &mut Vec<f64>| {
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    };
    sort(&mut total.row_latencies_ms);
    sort(&mut total.fixed_row_latencies_ms);
    sort(&mut total.ocba_row_latencies_ms);
    let jobs = tenants * jobs_per_tenant;
    // Schema v2: the pooled fields stay (dashboards keep working), and each
    // scheduler kind gets its own latency bucket plus the adaptive savings.
    let report = format!(
        "{{\n  \"schema_version\": 2,\n  \"jobs\": {jobs},\n  \"tenants\": {tenants},\n  \"rows\": {},\n  \"jobs_per_sec\": {:.3},\n  \"row_latency_p50_ms\": {:.3},\n  \"row_latency_p99_ms\": {:.3},\n  \"fixed_jobs\": {},\n  \"fixed_rows\": {},\n  \"fixed_row_latency_p50_ms\": {:.3},\n  \"fixed_row_latency_p99_ms\": {:.3},\n  \"ocba_jobs\": {},\n  \"ocba_rows\": {},\n  \"ocba_row_latency_p50_ms\": {:.3},\n  \"ocba_row_latency_p99_ms\": {:.3},\n  \"ocba_seeds_saved\": {},\n  \"rejected_429\": {},\n  \"resubmits\": {},\n  \"failures\": {},\n  \"determinism_violations\": {},\n  \"resume_violations\": {},\n  \"quota_fairness\": {:.3},\n  \"wall_time_ms\": {:.1}\n}}\n",
        total.rows,
        jobs as f64 / (wall_ms / 1e3).max(1e-9),
        percentile(&total.row_latencies_ms, 50.0),
        percentile(&total.row_latencies_ms, 99.0),
        total.fixed_jobs,
        total.fixed_row_latencies_ms.len(),
        percentile(&total.fixed_row_latencies_ms, 50.0),
        percentile(&total.fixed_row_latencies_ms, 99.0),
        total.ocba_jobs,
        total.ocba_row_latencies_ms.len(),
        percentile(&total.ocba_row_latencies_ms, 50.0),
        percentile(&total.ocba_row_latencies_ms, 99.0),
        total.ocba_seeds_saved,
        total.rejected_429,
        total.resubmits,
        total.failures,
        total.determinism_violations,
        total.resume_violations,
        fairness,
        wall_ms,
    );
    let mut file =
        std::fs::File::create(&out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    file.write_all(report.as_bytes())
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("{report}");
    Ok(total.failures + total.determinism_violations + total.resume_violations)
}
