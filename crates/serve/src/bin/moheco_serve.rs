//! `moheco-serve` — the yield-optimization job server.
//!
//! ```text
//! moheco-serve [--addr 127.0.0.1:7811] [--workers 2] [--queue-depth 16]
//!              [--data-dir serve-data] [--tenant-quota-blocks 0]
//! ```
//!
//! Binds, prints the resolved address, and serves until killed. Job rows
//! land under `<data-dir>/<tenant>/job-<id>.jsonl` with `.spec` fingerprint
//! sidecars, so restarting the server over the same data directory lets
//! resubmitted jobs resume from the rows already on disk.

use moheco_bench::CliArgs;
use moheco_serve::{Server, ServerConfig};
use std::path::PathBuf;

fn main() {
    let args = CliArgs::parse();
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(args: &CliArgs) -> Result<(), String> {
    args.expect_only(
        &[],
        &[
            "--addr",
            "--workers",
            "--queue-depth",
            "--data-dir",
            "--tenant-quota-blocks",
        ],
    )?;
    let config = ServerConfig {
        addr: args
            .value_of("--addr")?
            .unwrap_or("127.0.0.1:7811")
            .to_string(),
        workers: args.u64_of("--workers", 2)? as usize,
        queue_depth: args.u64_of("--queue-depth", 16)? as usize,
        data_dir: PathBuf::from(args.value_of("--data-dir")?.unwrap_or("serve-data")),
        tenant_quota_blocks: args.u64_of("--tenant-quota-blocks", 0)? as usize,
    };
    if config.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let server = Server::start(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("moheco-serve listening on http://{}", server.addr());
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
