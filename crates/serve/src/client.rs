//! A minimal blocking HTTP client for the server's own subset — used by the
//! load generator and the integration tests (the build is offline, so no
//! reqwest/curl bindings).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A fully-read response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunked transfer already reassembled).
    pub body: Vec<u8>,
}

impl Response {
    /// The first header of that (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<String, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read error: {e}"))?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Sends one request and reads the full response. Bodies arriving via
/// chunked transfer are decoded; `on_data` observes each decoded chunk as it
/// arrives (before the response completes), which is how the load generator
/// measures live row latency.
pub fn request_observed(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    mut on_data: impl FnMut(&[u8]),
) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: moheco\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    writer
        .write_all(head.as_bytes())
        .and_then(|()| writer.write_all(body))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("write request: {e}"))?;

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;

    let mut response_headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            response_headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let chunked = response_headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(&mut reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| format!("bad chunk size {size_line:?}"))?;
            if size == 0 {
                let _ = read_line(&mut reader); // trailing CRLF
                break;
            }
            let mut chunk = vec![0u8; size];
            reader
                .read_exact(&mut chunk)
                .map_err(|e| format!("short chunk: {e}"))?;
            let mut crlf = [0u8; 2];
            reader
                .read_exact(&mut crlf)
                .map_err(|e| format!("missing chunk terminator: {e}"))?;
            on_data(&chunk);
            body.extend_from_slice(&chunk);
        }
    } else {
        let length: usize = response_headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        body.resize(length, 0);
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("short body: {e}"))?;
        on_data(&body);
    }
    Ok(Response {
        status,
        headers: response_headers,
        body,
    })
}

/// [`request_observed`] without a data callback.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<Response, String> {
    request_observed(addr, method, path, headers, body, |_| {})
}
