//! Job lifecycle: the FIFO queue with depth-limited backpressure, per-job
//! status, and the cell executor the worker threads run.
//!
//! A job is `(tenant, JobSpec)`; its identity is
//! [`JobSpec::job_id`], so resubmitting the same spec collapses onto the
//! same job — and onto the same resumable JSONL file on disk. The queue is
//! strictly bounded: a submission that would exceed the depth is rejected
//! *before* anything is registered or written, so a 429 response means "the
//! server holds nothing of yours — retry later", never a silent drop.

use crate::pool::EnginePool;
use moheco_bench::jobspec::JobSpec;
use moheco_bench::results::ScenarioResult;
use moheco_bench::{Algo, Cell, CellOutcome, CellWriter, ExecutionCore, RunSpec, ScheduleOutcome};
use moheco_obs::Tracer;
use moheco_runtime::EngineStatsSnapshot;
use moheco_scenarios::Scenario;
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing cells.
    Running,
    /// Every cell's row is on disk.
    Completed,
    /// Execution stopped with an error (kept so the tenant can read it; a
    /// resubmission re-queues the job and resumes from the rows on disk).
    Failed(String),
}

impl JobState {
    /// Stable label for status responses.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Completed => "completed",
            Self::Failed(_) => "failed",
        }
    }
}

/// One job's full record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Submitting tenant.
    pub tenant: String,
    /// The spec as submitted.
    pub spec: JobSpec,
    /// The spec's scheduler label (`fixed`, `ocba`, `ocba-shrink`) — kept
    /// on the record so status consumers can bucket latency and savings by
    /// schedule kind without re-parsing the spec.
    pub schedule: &'static str,
    /// Lifecycle state.
    pub state: JobState,
    /// Cells whose rows were already on disk when the job started.
    pub resumed: usize,
    /// Cells executed by this server process.
    pub executed: usize,
    /// Seed replications the adaptive schedule skipped (0 for `fixed`, and
    /// until the job completes).
    pub seeds_saved: usize,
    /// Engine counters accumulated over the executed cells.
    pub stats: EngineStatsSnapshot,
}

impl JobRecord {
    /// Status response body (flat JSON).
    pub fn to_json(&self, id: &str) -> String {
        let error = match &self.state {
            JobState::Failed(e) => format!(
                ", \"error\": \"{}\"",
                e.replace('\\', "\\\\").replace('"', "\\\"")
            ),
            _ => String::new(),
        };
        format!(
            "{{\"job\": \"{id}\", \"tenant\": \"{}\", \"state\": \"{}\", \"schedule\": \"{}\", \"cells\": {}, \"resumed\": {}, \"executed\": {}, \"seeds_saved\": {}, \"simulations\": {}{error}}}\n",
            self.tenant,
            self.state.label(),
            self.schedule,
            self.spec.cells(),
            self.resumed,
            self.executed,
            self.seeds_saved,
            self.stats.simulations_run,
        )
    }
}

/// Outcome of a submission.
#[derive(Debug, PartialEq, Eq)]
pub enum Submit {
    /// Newly queued under this id.
    Accepted(String),
    /// The identical job already exists (any live state); nothing was
    /// queued.
    Existing(String),
    /// The queue is at depth; nothing was registered (respond 429).
    QueueFull,
}

struct Inner {
    jobs: HashMap<String, JobRecord>,
    queue: VecDeque<String>,
    running: usize,
    shutdown: bool,
    // Service counters for /metrics.
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
}

/// The shared job table + FIFO queue. Workers block on
/// [`Registry::next_job`]; everything else is non-blocking.
pub struct Registry {
    queue_depth: usize,
    inner: Mutex<Inner>,
    wake: Condvar,
}

/// Point-in-time service counters for the metrics endpoint.
#[derive(Debug, Clone, Copy)]
pub struct ServiceCounters {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished in error.
    pub failed: u64,
    /// Submissions rejected with 429.
    pub rejected: u64,
    /// Jobs currently queued.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
}

impl Registry {
    /// Creates an empty registry with the given queue depth bound.
    pub fn new(queue_depth: usize) -> Self {
        Self {
            queue_depth,
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                running: 0,
                shutdown: false,
                submitted: 0,
                completed: 0,
                failed: 0,
                rejected: 0,
            }),
            wake: Condvar::new(),
        }
    }

    /// Submits a job. The spec must already be validated.
    pub fn submit(&self, tenant: &str, spec: JobSpec) -> Submit {
        let id = spec.job_id(tenant);
        let mut inner = self.inner.lock().expect("registry lock");
        match inner.jobs.get(&id).map(|j| j.state.clone()) {
            Some(JobState::Failed(_)) | None => {}
            Some(_) => return Submit::Existing(id),
        }
        if inner.queue.len() >= self.queue_depth {
            inner.rejected += 1;
            return Submit::QueueFull;
        }
        let schedule = spec.schedule.label();
        inner.jobs.insert(
            id.clone(),
            JobRecord {
                tenant: tenant.to_string(),
                spec,
                schedule,
                state: JobState::Queued,
                resumed: 0,
                executed: 0,
                seeds_saved: 0,
                stats: EngineStatsSnapshot::default(),
            },
        );
        inner.queue.push_back(id.clone());
        inner.submitted += 1;
        self.wake.notify_one();
        Submit::Accepted(id)
    }

    /// Blocks for the next queued job; `None` means shutdown.
    pub fn next_job(&self) -> Option<(String, String, JobSpec)> {
        let mut inner = self.inner.lock().expect("registry lock");
        loop {
            if inner.shutdown {
                return None;
            }
            if let Some(job) = take_next(&mut inner) {
                return Some(job);
            }
            inner = self.wake.wait(inner).expect("registry lock");
        }
    }

    /// Waits up to `timeout` for a queued job. [`NextJob::Idle`] tells the
    /// worker nothing is queued right now — the moment to lend a hand to
    /// another worker's in-flight job instead of sleeping.
    pub fn next_job_timeout(&self, timeout: Duration) -> NextJob {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("registry lock");
        loop {
            if inner.shutdown {
                return NextJob::Shutdown;
            }
            if let Some((id, tenant, spec)) = take_next(&mut inner) {
                return NextJob::Job(id, tenant, spec);
            }
            let now = Instant::now();
            if now >= deadline {
                return NextJob::Idle;
            }
            inner = self
                .wake
                .wait_timeout(inner, deadline - now)
                .expect("registry lock")
                .0;
        }
    }

    /// Records one executed cell's counters against a running job.
    pub fn record_cell(&self, id: &str, stats: &EngineStatsSnapshot) {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(job) = inner.jobs.get_mut(id) {
            job.executed += 1;
            job.stats.absorb(stats);
        }
    }

    /// Records how many cells a starting job found already on disk.
    pub fn record_resumed(&self, id: &str, resumed: usize) {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(job) = inner.jobs.get_mut(id) {
            job.resumed = resumed;
        }
    }

    /// Records the finished schedule's savings accounting against the job.
    pub fn record_outcome(&self, id: &str, outcome: &ScheduleOutcome) {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(job) = inner.jobs.get_mut(id) {
            job.seeds_saved = outcome.seeds_saved;
        }
    }

    /// Marks a running job finished (successfully or not).
    pub fn finish(&self, id: &str, outcome: Result<(), String>) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.running = inner.running.saturating_sub(1);
        match &outcome {
            Ok(()) => inner.completed += 1,
            Err(_) => inner.failed += 1,
        }
        if let Some(job) = inner.jobs.get_mut(id) {
            job.state = match outcome {
                Ok(()) => JobState::Completed,
                Err(e) => JobState::Failed(e),
            };
        }
    }

    /// A copy of the job's record, if registered.
    pub fn get(&self, id: &str) -> Option<JobRecord> {
        self.inner
            .lock()
            .expect("registry lock")
            .jobs
            .get(id)
            .cloned()
    }

    /// Whether the job has reached a terminal state (streamers use this to
    /// decide when the file can have no further appends).
    pub fn is_finished(&self, id: &str) -> Option<bool> {
        self.inner
            .lock()
            .expect("registry lock")
            .jobs
            .get(id)
            .map(|j| matches!(j.state, JobState::Completed | JobState::Failed(_)))
    }

    /// Engine counters summed over every job the server has executed.
    pub fn total_stats(&self) -> EngineStatsSnapshot {
        let inner = self.inner.lock().expect("registry lock");
        let mut total = EngineStatsSnapshot::default();
        for job in inner.jobs.values() {
            total.absorb(&job.stats);
        }
        total
    }

    /// Service counters for the metrics endpoint.
    pub fn counters(&self) -> ServiceCounters {
        let inner = self.inner.lock().expect("registry lock");
        ServiceCounters {
            submitted: inner.submitted,
            completed: inner.completed,
            failed: inner.failed,
            rejected: inner.rejected,
            queued: inner.queue.len(),
            running: inner.running,
        }
    }

    /// Wakes every worker with "no more jobs".
    pub fn shutdown(&self) {
        self.inner.lock().expect("registry lock").shutdown = true;
        self.wake.notify_all();
    }
}

/// Pops the queue head and marks it running. Call with the registry lock.
fn take_next(inner: &mut Inner) -> Option<(String, String, JobSpec)> {
    let id = inner.queue.pop_front()?;
    inner.running += 1;
    let job = inner.jobs.get_mut(&id).expect("queued job is registered");
    job.state = JobState::Running;
    Some((id.clone(), job.tenant.clone(), job.spec.clone()))
}

/// Outcome of a bounded wait for queue work ([`Registry::next_job_timeout`]).
#[derive(Debug)]
pub enum NextJob {
    /// A job was dequeued and marked running: `(id, tenant, spec)`.
    Job(String, String, JobSpec),
    /// Nothing was queued within the timeout.
    Idle,
    /// The server is stopping; the worker should exit.
    Shutdown,
}

/// The JSONL file of a job: `<data_dir>/<tenant>/job-<id>.jsonl` (its
/// `.spec` fingerprint sidecar sits next to it). One place computes this so
/// the executor, the streamers and the tests agree.
pub fn job_path(data_dir: &Path, tenant: &str, id: &str) -> PathBuf {
    data_dir.join(tenant).join(format!("job-{id}.jsonl"))
}

type ExecuteFn = Box<dyn Fn(&Cell) -> Result<ScenarioResult, String> + Send + Sync>;
type CommitFn = Box<dyn FnMut(&Cell, CellOutcome<'_>) -> Result<(), String> + Send>;

/// One job opened for execution: the shared scheduler-driven
/// [`ExecutionCore`] wired to the engine pool and the registry.
///
/// The worker that dequeued the job calls [`ActiveJob::drive`]; any idle
/// worker may call [`ActiveJob::help`] on the same job concurrently — the
/// core hands each of them cells from one `next_cells` allocation loop and
/// commits completions in schedule order, so the job's JSONL stays
/// byte-identical to a single-worker run (under `reuse: reset`; see the
/// core's docs for the shared-cache caveat). Rows stream through the
/// campaign [`CellWriter`] — same fingerprint check, same torn-tail
/// truncation, same append-per-cell commit point — which is exactly why a
/// killed-and-resumed HTTP job reproduces byte-identical JSONL.
pub struct ActiveJob {
    core: ExecutionCore<ExecuteFn, CommitFn>,
}

impl ActiveJob {
    /// Opens the job's row file (resuming from whatever rows it holds) and
    /// builds the execution core over it. Engine-pool leases keep their
    /// one-cell-per-slot discipline: `execute` checks a lease out per cell
    /// and drops it before tenant-quota enforcement.
    pub fn open(
        registry: &Arc<Registry>,
        pool: &Arc<EnginePool>,
        data_dir: &Path,
        id: &str,
        tenant: &str,
        spec: &JobSpec,
    ) -> Result<Self, String> {
        spec.validate()?;
        let scenarios = spec.resolve_scenarios()?;
        let by_name: HashMap<String, Arc<dyn Scenario>> = scenarios
            .iter()
            .map(|s| (s.name().to_string(), s.clone()))
            .collect();
        let algo_by_label: HashMap<String, Algo> = spec
            .algos
            .iter()
            .map(|a| (a.label().to_string(), *a))
            .collect();
        let writer = CellWriter::open(&job_path(data_dir, tenant, id), spec)?;
        registry.record_resumed(id, writer.resumed_rows());
        let execute: ExecuteFn = {
            let pool = pool.clone();
            let tenant = tenant.to_string();
            let spec = spec.clone();
            Box::new(move |cell: &Cell| {
                let scenario = by_name.get(cell.scenario.as_str()).ok_or_else(|| {
                    format!("scheduler produced unknown scenario {:?}", cell.scenario)
                })?;
                let algo = *algo_by_label
                    .get(cell.algo.as_str())
                    .ok_or_else(|| format!("scheduler produced unknown algo {:?}", cell.algo))?;
                let result = {
                    let lease = pool.checkout(&tenant, scenario.name(), &spec, cell.seed);
                    RunSpec::new(scenario.as_ref(), algo)
                        .budget(cell.budget)
                        .seed(cell.seed)
                        .engine(lease.engine.clone())
                        .engine_label(spec.engine.label())
                        .prescreen(spec.prescreen)
                        .execute()
                    // lease drops here, before quota enforcement — never
                    // hold one slot while locking others.
                };
                pool.enforce_tenant_quota(&tenant);
                Ok(result)
            })
        };
        let commit: CommitFn = {
            let registry = registry.clone();
            let id = id.to_string();
            Box::new(move |_cell: &Cell, outcome: CellOutcome<'_>| {
                if let CellOutcome::Executed(result) = outcome {
                    registry.record_cell(&id, &result.engine_stats);
                }
                Ok(())
            })
        };
        Ok(Self {
            core: ExecutionCore::new(spec, writer, Tracer::disabled(), execute, commit)?,
        })
    }

    /// Drives the job to completion (the dequeuing worker's call). Safe to
    /// call while helpers run cells; the first error wins.
    pub fn drive(&self) -> Result<ScheduleOutcome, String> {
        self.core.drive()
    }

    /// Executes at most one of the job's claimable cells (an idle worker's
    /// call), waiting up to `patience` for one to appear. Returns whether a
    /// cell was executed; errors surface through [`ActiveJob::drive`] too.
    pub fn help(&self, patience: Duration) -> Result<bool, String> {
        self.core.help(patience)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seeds: Vec<u64>) -> JobSpec {
        JobSpec {
            scenarios: vec!["margin_wall".into()],
            seeds,
            ..JobSpec::default()
        }
    }

    #[test]
    fn queue_depth_rejects_before_registering() {
        let registry = Registry::new(2);
        let a = registry.submit("t", spec(vec![1]));
        let b = registry.submit("t", spec(vec![2]));
        assert!(matches!(a, Submit::Accepted(_)));
        assert!(matches!(b, Submit::Accepted(_)));
        let full = registry.submit("t", spec(vec![3]));
        assert_eq!(full, Submit::QueueFull);
        // Nothing of the rejected job exists server-side.
        let rejected_id = spec(vec![3]).job_id("t");
        assert!(registry.get(&rejected_id).is_none());
        assert_eq!(registry.counters().rejected, 1);
        assert_eq!(registry.counters().queued, 2);
    }

    #[test]
    fn duplicate_submissions_collapse_and_failures_requeue() {
        let registry = Registry::new(8);
        let id = match registry.submit("t", spec(vec![1])) {
            Submit::Accepted(id) => id,
            other => panic!("expected acceptance, got {other:?}"),
        };
        assert_eq!(
            registry.submit("t", spec(vec![1])),
            Submit::Existing(id.clone())
        );
        // Same spec, different tenant: a different job.
        assert!(matches!(
            registry.submit("u", spec(vec![1])),
            Submit::Accepted(_)
        ));
        // Take + fail the job: the next submission re-queues it.
        let (taken, _, _) = registry.next_job().expect("job queued");
        assert_eq!(taken, id);
        registry.finish(&id, Err("boom".into()));
        assert_eq!(
            registry.get(&id).unwrap().state,
            JobState::Failed("boom".into())
        );
        assert!(matches!(
            registry.submit("t", spec(vec![1])),
            Submit::Accepted(_)
        ));
    }

    #[test]
    fn shutdown_unblocks_workers() {
        let registry = std::sync::Arc::new(Registry::new(4));
        let worker = {
            let registry = registry.clone();
            std::thread::spawn(move || registry.next_job())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        registry.shutdown();
        assert!(worker.join().expect("worker").is_none());
    }
}
