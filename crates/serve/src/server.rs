//! The job server: a `std::net::TcpListener` accept loop (thread per
//! connection), a fixed pool of worker threads draining the job queue, and
//! the HTTP routes.
//!
//! Routes:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /jobs` | Submit a [`JobSpec`] (flat JSON body, `X-Tenant` header) — 202 accepted, 200 already-known, 429 queue full, 400 invalid |
//! | `GET /jobs/{id}` | Job status JSON (404 for unknown ids — including ones rejected with 429) |
//! | `GET /jobs/{id}/stream` | The job's JSONL rows, streamed live via chunked transfer until the job finishes |
//! | `GET /metrics` | Prometheus text: engine counters, service counters, pool + per-tenant cache gauges |
//! | `GET /healthz` | `ok` |

use crate::http::{read_request, write_response, ChunkedWriter, Request};
use crate::jobs::{job_path, ActiveJob, NextJob, Registry, Submit};
use crate::pool::EnginePool;
use moheco_bench::jobspec::JobSpec;
use moheco_obs::prometheus::{push_header, push_sample};
use moheco_obs::PhaseBreakdown;
use moheco_runtime::{render_pool_cache, render_prometheus};
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a streamer sleeps between polls of a still-running job's file.
const STREAM_POLL: Duration = Duration::from_millis(10);

/// How long an idle worker waits on the job queue before looking for an
/// in-flight job to help with.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// How long a helping worker waits on another job's round barrier for a
/// claimable cell before checking the queue again.
const HELP_PATIENCE: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port — the default, and what
    /// tests use).
    pub addr: String,
    /// Worker threads draining the job queue. `0` is allowed: jobs queue up
    /// until [`Server::start_workers`] is called (deterministic backpressure
    /// tests rely on this).
    pub workers: usize,
    /// Queue depth bound; submissions beyond it get 429.
    pub queue_depth: usize,
    /// Root directory for job JSONL files (`<data_dir>/<tenant>/job-<id>.jsonl`).
    pub data_dir: PathBuf,
    /// Per-tenant cache quota in blocks (0 = unlimited).
    pub tenant_quota_blocks: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 16,
            data_dir: PathBuf::from("serve-data"),
            tenant_quota_blocks: 0,
        }
    }
}

struct Shared {
    registry: Arc<Registry>,
    pool: Arc<EnginePool>,
    data_dir: PathBuf,
    stopping: AtomicBool,
    /// Jobs currently being driven by a worker — what idle workers scan for
    /// something to help with. Entries are pushed before the driving worker
    /// starts and removed when it finishes; the lock is only ever held to
    /// clone an `Arc` out, never while touching a job's execution core.
    active: Mutex<Vec<(String, Arc<ActiveJob>)>>,
    /// Round-robin cursor so idle workers spread across active jobs.
    help_cursor: AtomicUsize,
}

/// A running server. Dropping it without [`Server::shutdown`] leaks the
/// accept thread until process exit; call shutdown for an orderly stop.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop and `config.workers` workers, and
    /// returns immediately.
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: Arc::new(Registry::new(config.queue_depth)),
            pool: Arc::new(EnginePool::new(config.tenant_quota_blocks)),
            data_dir: config.data_dir,
            stopping: AtomicBool::new(false),
            active: Mutex::new(Vec::new()),
            help_cursor: AtomicUsize::new(0),
        });
        let accept_handle = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        let mut server = Self {
            shared,
            addr,
            accept_handle: Some(accept_handle),
            worker_handles: Vec::new(),
        };
        server.start_workers(config.workers);
        Ok(server)
    }

    /// The bound address (resolves the `:0` port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Spawns `n` additional worker threads. Useful after starting with
    /// `workers: 0` to drain a deliberately backed-up queue.
    pub fn start_workers(&mut self, n: usize) {
        for _ in 0..n {
            let shared = self.shared.clone();
            self.worker_handles
                .push(std::thread::spawn(move || worker_loop(shared)));
        }
    }

    /// The shared job registry (status, counters).
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// The shared engine pool (cache usage).
    pub fn pool(&self) -> &EnginePool {
        &self.shared.pool
    }

    /// Orderly stop: refuse new work, wake blocked workers, join every
    /// thread. Queued jobs that never ran stay on no disk — resubmitting
    /// them to a new server over the same data dir resumes cleanly.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.registry.shutdown();
        // The accept loop sits in `accept()`; poke it with a throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = shared.clone();
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &shared);
        });
    }
}

/// The worker policy: drain the job queue, and whenever the queue is empty
/// lend a hand to another worker's in-flight job. N workers over one
/// adaptive job all pull cells from that job's single `next_cells`
/// allocation loop — the execution core commits completions in schedule
/// order, so the extra workers change wall time, never bytes (under
/// `reuse: reset`).
fn worker_loop(shared: Arc<Shared>) {
    loop {
        match shared.registry.next_job_timeout(IDLE_POLL) {
            NextJob::Shutdown => return,
            NextJob::Job(id, tenant, spec) => run_job(&shared, &id, &tenant, &spec),
            NextJob::Idle => {
                let job = {
                    let active = shared.active.lock().expect("active jobs lock");
                    if active.is_empty() {
                        None
                    } else {
                        let pick = shared.help_cursor.fetch_add(1, Ordering::Relaxed);
                        Some(active[pick % active.len()].1.clone())
                    }
                    // The active-map lock drops here, before the core is
                    // touched — helping never blocks submissions.
                };
                if let Some(job) = job {
                    // Errors surface through the driving worker's `drive`.
                    let _ = job.help(HELP_PATIENCE);
                }
            }
        }
    }
}

/// Opens and drives one dequeued job, registering it as active so idle
/// workers can help, and recording the terminal state however it ends —
/// open failure, execution error, panic, or success.
fn run_job(shared: &Arc<Shared>, id: &str, tenant: &str, spec: &JobSpec) {
    let opened = catch_unwind(AssertUnwindSafe(|| {
        ActiveJob::open(
            &shared.registry,
            &shared.pool,
            &shared.data_dir,
            id,
            tenant,
            spec,
        )
    }));
    let job = match opened {
        Ok(Ok(job)) => Arc::new(job),
        Ok(Err(e)) => return shared.registry.finish(id, Err(e)),
        Err(panic) => return shared.registry.finish(id, Err(panic_message(panic))),
    };
    shared
        .active
        .lock()
        .expect("active jobs lock")
        .push((id.to_string(), job.clone()));
    let driven = catch_unwind(AssertUnwindSafe(|| job.drive()));
    shared
        .active
        .lock()
        .expect("active jobs lock")
        .retain(|(active_id, _)| active_id != id);
    let outcome = match driven {
        Ok(Ok(schedule)) => {
            shared.registry.record_outcome(id, &schedule);
            Ok(())
        }
        Ok(Err(e)) => Err(e),
        Err(panic) => Err(panic_message(panic)),
    };
    shared.registry.finish(id, outcome);
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    match panic.downcast_ref::<&str>() {
        Some(msg) => format!("worker panicked: {msg}"),
        None => match panic.downcast_ref::<String>() {
            Some(msg) => format!("worker panicked: {msg}"),
            None => "worker panicked".to_string(),
        },
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let request = match read_request(&mut reader) {
        Ok(Some(request)) => request,
        Ok(None) => return Ok(()),
        Err(e) => {
            return write_response(
                &mut writer,
                400,
                "text/plain",
                format!("bad request: {e}\n").as_bytes(),
            )
        }
    };
    route(&request, &mut writer, shared)
}

fn route(request: &Request, writer: &mut TcpStream, shared: &Shared) -> std::io::Result<()> {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => write_response(writer, 200, "text/plain", b"ok\n"),
        ("GET", "/metrics") => {
            let body = render_metrics(shared);
            write_response(writer, 200, "text/plain; version=0.0.4", body.as_bytes())
        }
        ("POST", "/jobs") => submit_job(request, writer, shared),
        ("GET", p) if p.starts_with("/jobs/") => {
            let rest = &p["/jobs/".len()..];
            if let Some(id) = rest.strip_suffix("/stream") {
                stream_job(id, writer, shared)
            } else if rest.contains('/') {
                write_response(writer, 404, "text/plain", b"not found\n")
            } else {
                job_status(rest, writer, shared)
            }
        }
        ("POST", _) | ("GET", _) => write_response(writer, 404, "text/plain", b"not found\n"),
        _ => write_response(writer, 405, "text/plain", b"method not allowed\n"),
    }
}

fn submit_job(request: &Request, writer: &mut TcpStream, shared: &Shared) -> std::io::Result<()> {
    let tenant = request.header("x-tenant").unwrap_or("default").to_string();
    if tenant.is_empty()
        || !tenant
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return write_response(
            writer,
            400,
            "text/plain",
            b"invalid X-Tenant (ascii alphanumeric, - and _ only)\n",
        );
    }
    let body = match std::str::from_utf8(&request.body) {
        Ok(b) => b,
        Err(_) => return write_response(writer, 400, "text/plain", b"body is not UTF-8\n"),
    };
    let spec = match JobSpec::parse(body).and_then(|spec| {
        spec.validate()?;
        Ok(spec)
    }) {
        Ok(spec) => spec,
        Err(e) => {
            return write_response(
                writer,
                400,
                "text/plain",
                format!("invalid job spec: {e}\n").as_bytes(),
            )
        }
    };
    match shared.registry.submit(&tenant, spec) {
        Submit::Accepted(id) => write_response(
            writer,
            202,
            "application/json",
            format!("{{\"job\": \"{id}\", \"state\": \"queued\"}}\n").as_bytes(),
        ),
        Submit::Existing(id) => {
            let state = shared
                .registry
                .get(&id)
                .map(|j| j.state.label())
                .unwrap_or("unknown");
            write_response(
                writer,
                200,
                "application/json",
                format!("{{\"job\": \"{id}\", \"state\": \"{state}\"}}\n").as_bytes(),
            )
        }
        Submit::QueueFull => write_response(
            writer,
            429,
            "text/plain",
            b"queue full, retry later; nothing was accepted\n",
        ),
    }
}

fn job_status(id: &str, writer: &mut TcpStream, shared: &Shared) -> std::io::Result<()> {
    match shared.registry.get(id) {
        Some(job) => write_response(writer, 200, "application/json", job.to_json(id).as_bytes()),
        None => write_response(writer, 404, "text/plain", b"unknown job\n"),
    }
}

/// Streams a job's JSONL file via chunked transfer, live: rows written so
/// far immediately, then new rows as workers append them, terminating when
/// the job reaches a terminal state.
///
/// While the job is still running only data up to the last `'\n'` is
/// forwarded — a concurrent `append` flushes whole lines, but the read can
/// still race a partially-flushed OS write, and a live stream must never
/// emit a torn row. After the job finishes the file is final, so everything
/// left (including a torn tail from a previous killed server, which a
/// resubmission would truncate and rewrite) is flushed verbatim.
fn stream_job(id: &str, writer: &mut TcpStream, shared: &Shared) -> std::io::Result<()> {
    if shared.registry.get(id).is_none() {
        return write_response(writer, 404, "text/plain", b"unknown job\n");
    }
    let record = shared.registry.get(id).expect("checked above");
    let path = job_path(&shared.data_dir, &record.tenant, id);
    let mut chunks = ChunkedWriter::begin(writer.try_clone()?, 200, "application/jsonl")?;
    let mut offset: u64 = 0;
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let finished = shared.registry.is_finished(id).unwrap_or(true);
        if let Ok(mut file) = std::fs::File::open(&path) {
            file.seek(SeekFrom::Start(offset))?;
            let mut fresh = Vec::new();
            file.read_to_end(&mut fresh)?;
            offset += fresh.len() as u64;
            carry.extend_from_slice(&fresh);
            if finished {
                chunks.write_chunk(&carry)?;
                carry.clear();
            } else if let Some(last_newline) = carry.iter().rposition(|&b| b == b'\n') {
                let complete: Vec<u8> = carry.drain(..=last_newline).collect();
                chunks.write_chunk(&complete)?;
            }
        }
        if finished {
            return chunks.finish();
        }
        std::thread::sleep(STREAM_POLL);
    }
}

fn render_metrics(shared: &Shared) -> String {
    let stats = shared.registry.total_stats();
    let mut out = render_prometheus(&stats, &PhaseBreakdown::default());

    let counters = shared.registry.counters();
    push_header(
        &mut out,
        "moheco_serve_jobs_submitted_total",
        "counter",
        "Jobs accepted into the queue since server start.",
    );
    push_sample(
        &mut out,
        "moheco_serve_jobs_submitted_total",
        &[],
        counters.submitted as f64,
    );
    push_header(
        &mut out,
        "moheco_serve_jobs_completed_total",
        "counter",
        "Jobs finished successfully.",
    );
    push_sample(
        &mut out,
        "moheco_serve_jobs_completed_total",
        &[],
        counters.completed as f64,
    );
    push_header(
        &mut out,
        "moheco_serve_jobs_failed_total",
        "counter",
        "Jobs finished in error.",
    );
    push_sample(
        &mut out,
        "moheco_serve_jobs_failed_total",
        &[],
        counters.failed as f64,
    );
    push_header(
        &mut out,
        "moheco_serve_jobs_rejected_total",
        "counter",
        "Submissions rejected with 429 (queue full).",
    );
    push_sample(
        &mut out,
        "moheco_serve_jobs_rejected_total",
        &[],
        counters.rejected as f64,
    );
    push_header(
        &mut out,
        "moheco_serve_queue_depth",
        "gauge",
        "Jobs currently waiting in the queue.",
    );
    push_sample(
        &mut out,
        "moheco_serve_queue_depth",
        &[],
        counters.queued as f64,
    );
    push_header(
        &mut out,
        "moheco_serve_jobs_running",
        "gauge",
        "Jobs currently executing on a worker.",
    );
    push_sample(
        &mut out,
        "moheco_serve_jobs_running",
        &[],
        counters.running as f64,
    );

    out.push_str(&render_pool_cache(&shared.pool.usage()));

    push_header(
        &mut out,
        "moheco_tenant_cache_blocks",
        "gauge",
        "Cached simulation blocks held per tenant across its pool engines.",
    );
    let tenant_usage = shared.pool.tenant_usage();
    for (tenant, blocks, _) in &tenant_usage {
        push_sample(
            &mut out,
            "moheco_tenant_cache_blocks",
            &[("tenant", tenant)],
            *blocks as f64,
        );
    }
    push_header(
        &mut out,
        "moheco_tenant_cache_bytes",
        "gauge",
        "Cached bytes held per tenant across its pool engines.",
    );
    for (tenant, _, bytes) in &tenant_usage {
        push_sample(
            &mut out,
            "moheco_tenant_cache_bytes",
            &[("tenant", tenant)],
            *bytes as f64,
        );
    }
    push_header(
        &mut out,
        "moheco_tenant_cache_quota_blocks",
        "gauge",
        "Configured per-tenant cache quota (0 = unlimited).",
    );
    push_sample(
        &mut out,
        "moheco_tenant_cache_quota_blocks",
        &[],
        shared.pool.quota_blocks() as f64,
    );
    out
}
