//! A deliberately small HTTP/1.1 subset over `std::net` — the build is
//! offline, so there is no tokio/hyper; the server hand-rolls exactly what
//! it needs and nothing more.
//!
//! Supported: one request per connection (`Connection: close` on every
//! response), `Content-Length` request bodies, fixed-length responses, and
//! chunked transfer encoding for live JSONL streams. Request lines, header
//! counts and body sizes are hard-capped so a misbehaving client cannot make
//! the server allocate unboundedly.

use std::io::{BufRead, Write};

/// Largest accepted request body (a [`moheco_bench::JobSpec`] is well under
/// a kilobyte; a megabyte leaves generous headroom).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Largest accepted request/header line.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string included.
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header of that (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn read_line_capped(reader: &mut impl BufRead) -> Result<Option<String>, String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err("connection closed mid-line".into())
                }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| "non-UTF-8 request line".to_string());
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err("request line too long".into());
                }
            }
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
}

/// Reads one request off the stream. `Ok(None)` means the peer closed the
/// connection before sending anything (a normal hang-up, not an error).
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, String> {
    let request_line = match read_line_capped(reader)? {
        None => return Ok(None),
        Some(l) => l,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or("empty request line")?
        .to_ascii_uppercase();
    let path = parts.next().ok_or("request line has no path")?.to_string();

    let mut headers = Vec::new();
    loop {
        let line = read_line_capped(reader)?.ok_or("connection closed in headers")?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err("too many headers".into());
        }
        let (name, value) = line.split_once(':').ok_or("malformed header line")?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v.parse().map_err(|_| format!("bad content-length {v:?}"))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "request body of {content_length} bytes is too large"
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("short request body: {e}"))?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one complete fixed-length response and flushes it.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response in progress: construct with
/// [`ChunkedWriter::begin`], feed it data, [`ChunkedWriter::finish`] it.
pub struct ChunkedWriter<W: Write> {
    stream: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and switches the connection to chunked
    /// transfer encoding.
    pub fn begin(mut stream: W, status: u16, content_type: &str) -> std::io::Result<Self> {
        write!(
            stream,
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status),
        )?;
        stream.flush()?;
        Ok(Self { stream })
    }

    /// Writes one chunk and flushes it (live streams must not sit in a
    /// buffer). Empty data is skipped — a zero-length chunk would terminate
    /// the stream.
    pub fn write_chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunked stream.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_body() {
        let raw =
            b"POST /jobs HTTP/1.1\r\nHost: x\r\nX-Tenant: acme\r\nContent-Length: 4\r\n\r\nbody";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .expect("parses")
            .expect("present");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("x-tenant"), Some("acme"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn empty_connection_is_a_clean_none() {
        let raw: &[u8] = b"";
        assert!(read_request(&mut BufReader::new(raw))
            .expect("no error")
            .is_none());
    }

    #[test]
    fn oversized_bodies_and_bad_headers_are_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(read_request(&mut BufReader::new(raw.as_bytes())).is_err());
        let raw = b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n";
        assert!(read_request(&mut BufReader::new(&raw[..])).is_err());
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_request(&mut BufReader::new(&raw[..])).is_err());
    }

    #[test]
    fn fixed_and_chunked_responses_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "text/plain", b"nope\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\nnope\n"));

        let mut out = Vec::new();
        let mut w = ChunkedWriter::begin(&mut out, 200, "application/jsonl").unwrap();
        w.write_chunk(b"row1\n").unwrap();
        w.write_chunk(b"").unwrap(); // skipped, must not terminate
        w.write_chunk(b"row2\n").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("5\r\nrow1\n\r\n5\r\nrow2\n\r\n0\r\n\r\n"));
    }
}
