//! Levenberg–Marquardt training of the MLP regressor.
//!
//! LM minimises the sum of squared residuals by solving the damped normal
//! equations `(JᵀJ + λI) δ = Jᵀ r` at each step, adapting the damping λ so the
//! iteration interpolates between Gauss–Newton (fast near the optimum) and
//! gradient descent (robust far from it). This is the trainer named in §3.4
//! of the paper.

use crate::mlp::Mlp;
use spicelite::linalg::Matrix;

/// Configuration of the Levenberg–Marquardt trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmConfig {
    /// Maximum number of LM iterations.
    pub max_iterations: usize,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplicative factor applied to λ on success / failure.
    pub lambda_factor: f64,
    /// Stop when the relative improvement of the SSE drops below this value.
    pub tolerance: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        Self {
            max_iterations: 60,
            initial_lambda: 1e-2,
            lambda_factor: 10.0,
            tolerance: 1e-9,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmReport {
    /// Final sum of squared errors over the training set.
    pub sse: f64,
    /// Final root-mean-square error.
    pub rmse: f64,
    /// Number of iterations executed.
    pub iterations: usize,
}

/// Sum of squared errors of `net` on a dataset.
pub fn sse(net: &Mlp, inputs: &[Vec<f64>], targets: &[f64]) -> f64 {
    inputs
        .iter()
        .zip(targets)
        .map(|(x, &t)| {
            let e = net.predict(x) - t;
            e * e
        })
        .sum()
}

/// Trains `net` in place on `(inputs, targets)` with Levenberg–Marquardt.
///
/// # Panics
///
/// Panics if the dataset is empty or `inputs.len() != targets.len()`.
pub fn train(net: &mut Mlp, inputs: &[Vec<f64>], targets: &[f64], config: &LmConfig) -> LmReport {
    assert!(!inputs.is_empty(), "training set must not be empty");
    assert_eq!(
        inputs.len(),
        targets.len(),
        "inputs/targets length mismatch"
    );

    let n = inputs.len();
    let p = net.num_parameters();
    let mut lambda = config.initial_lambda;
    let mut current_sse = sse(net, inputs, targets);
    let mut iterations = 0usize;

    for _ in 0..config.max_iterations {
        iterations += 1;
        // Assemble JtJ and Jtr from per-sample gradient rows.
        let mut jtj = Matrix::zeros(p, p);
        let mut jtr = vec![0.0; p];
        for (x, &t) in inputs.iter().zip(targets) {
            let (y, grad) = net.predict_with_gradient(x);
            let r = t - y;
            for i in 0..p {
                jtr[i] += grad[i] * r;
                let gi = grad[i];
                if gi == 0.0 {
                    continue;
                }
                for j in 0..p {
                    jtj[(i, j)] += gi * grad[j];
                }
            }
        }

        // Try steps with increasing damping until the SSE improves.
        let mut improved = false;
        for _ in 0..8 {
            let mut damped = jtj.clone();
            damped.add_diagonal(lambda);
            let Ok(delta) = damped.solve(&jtr) else {
                lambda *= config.lambda_factor;
                continue;
            };
            let mut candidate = net.clone();
            let mut params = candidate.parameters();
            for (pk, dk) in params.iter_mut().zip(&delta) {
                *pk += dk;
            }
            candidate.set_parameters(&params);
            let candidate_sse = sse(&candidate, inputs, targets);
            if candidate_sse < current_sse {
                let relative = (current_sse - candidate_sse) / current_sse.max(1e-300);
                *net = candidate;
                current_sse = candidate_sse;
                lambda = (lambda / config.lambda_factor).max(1e-12);
                improved = true;
                if relative < config.tolerance {
                    return LmReport {
                        sse: current_sse,
                        rmse: (current_sse / n as f64).sqrt(),
                        iterations,
                    };
                }
                break;
            } else {
                lambda *= config.lambda_factor;
            }
        }
        if !improved {
            break;
        }
    }

    LmReport {
        sse: current_sse,
        rmse: (current_sse / n as f64).sqrt(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset<F: Fn(&[f64]) -> f64>(
        f: F,
        dim: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
            .collect();
        let targets = inputs.iter().map(|x| f(x)).collect();
        (inputs, targets)
    }

    #[test]
    fn lm_fits_a_linear_function_accurately() {
        let mut rng = StdRng::seed_from_u64(5);
        let (inputs, targets) = dataset(|x| 0.3 * x[0] - 0.7 * x[1] + 0.1, 2, 80, &mut rng);
        let mut net = Mlp::new(2, 6, &mut rng);
        let report = train(&mut net, &inputs, &targets, &LmConfig::default());
        assert!(report.rmse < 0.02, "rmse {}", report.rmse);
        assert!(report.iterations >= 1);
    }

    #[test]
    fn lm_fits_a_smooth_nonlinear_function() {
        let mut rng = StdRng::seed_from_u64(6);
        let (inputs, targets) =
            dataset(|x| (x[0] * 1.5).tanh() * 0.5 + 0.2 * x[1], 2, 150, &mut rng);
        let mut net = Mlp::new(2, 10, &mut rng);
        let report = train(&mut net, &inputs, &targets, &LmConfig::default());
        assert!(report.rmse < 0.05, "rmse {}", report.rmse);
    }

    #[test]
    fn training_reduces_the_initial_error() {
        let mut rng = StdRng::seed_from_u64(7);
        let (inputs, targets) = dataset(|x| x[0] * x[1], 2, 100, &mut rng);
        let mut net = Mlp::new(2, 8, &mut rng);
        let before = sse(&net, &inputs, &targets);
        let report = train(&mut net, &inputs, &targets, &LmConfig::default());
        assert!(report.sse < before, "sse {} -> {}", before, report.sse);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = Mlp::new(2, 4, &mut rng);
        let _ = train(&mut net, &[], &[], &LmConfig::default());
    }
}
