//! A single-hidden-layer multilayer perceptron (MLP).
//!
//! §3.4 of the paper compares MOHECO against a response-surface-based (RSB)
//! method that regresses the yield with a backward-propagation neural network
//! of 20 hidden neurons trained with the Levenberg–Marquardt algorithm. This
//! module provides that regressor: `tanh` hidden units and a linear output.

use rand::Rng;

/// A feed-forward network with one hidden layer of `tanh` units and a linear
/// output neuron.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    input_dim: usize,
    hidden: usize,
    /// Hidden-layer weights, row-major `[hidden x (input_dim + 1)]`
    /// (the final column is the bias).
    w1: Vec<f64>,
    /// Output weights `[hidden + 1]` (the final entry is the bias).
    w2: Vec<f64>,
}

impl Mlp {
    /// Creates an MLP with small random initial weights.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` or `hidden` is zero.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, hidden: usize, rng: &mut R) -> Self {
        assert!(
            input_dim > 0 && hidden > 0,
            "network dimensions must be positive"
        );
        let scale = 1.0 / (input_dim as f64).sqrt();
        let w1 = (0..hidden * (input_dim + 1))
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale)
            .collect();
        let w2 = (0..hidden + 1)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 / (hidden as f64).sqrt())
            .collect();
        Self {
            input_dim,
            hidden,
            w1,
            w2,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of hidden neurons.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.w1.len() + self.w2.len()
    }

    /// Returns all parameters as a flat vector (hidden weights then output weights).
    pub fn parameters(&self) -> Vec<f64> {
        let mut p = self.w1.clone();
        p.extend_from_slice(&self.w2);
        p
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_parameters()`.
    pub fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter count mismatch"
        );
        let n1 = self.w1.len();
        self.w1.copy_from_slice(&params[..n1]);
        self.w2.copy_from_slice(&params[n1..]);
    }

    /// Hidden-layer activations for input `x`.
    fn hidden_activations(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        let cols = self.input_dim + 1;
        (0..self.hidden)
            .map(|h| {
                let row = &self.w1[h * cols..(h + 1) * cols];
                let mut acc = row[self.input_dim]; // bias
                for (wi, xi) in row[..self.input_dim].iter().zip(x) {
                    acc += wi * xi;
                }
                acc.tanh()
            })
            .collect()
    }

    /// Network output for input `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let a = self.hidden_activations(x);
        let mut out = self.w2[self.hidden]; // bias
        for (w, ai) in self.w2[..self.hidden].iter().zip(&a) {
            out += w * ai;
        }
        out
    }

    /// Output and the gradient of the output with respect to every parameter
    /// (the Jacobian row used by Levenberg–Marquardt).
    pub fn predict_with_gradient(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let a = self.hidden_activations(x);
        let mut out = self.w2[self.hidden];
        for (w, ai) in self.w2[..self.hidden].iter().zip(&a) {
            out += w * ai;
        }
        let cols = self.input_dim + 1;
        let mut grad = vec![0.0; self.num_parameters()];
        // d out / d w1[h][j] = w2[h] * (1 - a_h^2) * x_j   (bias: x_j = 1)
        for h in 0..self.hidden {
            let sech2 = 1.0 - a[h] * a[h];
            let factor = self.w2[h] * sech2;
            for j in 0..self.input_dim {
                grad[h * cols + j] = factor * x[j];
            }
            grad[h * cols + self.input_dim] = factor;
        }
        // d out / d w2[h] = a_h ; bias = 1
        let base = self.w1.len();
        grad[base..base + self.hidden].copy_from_slice(&a[..self.hidden]);
        grad[base + self.hidden] = 1.0;
        (out, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_parameter_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Mlp::new(3, 5, &mut rng);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.hidden(), 5);
        assert_eq!(net.num_parameters(), 5 * 4 + 6);
        let p = net.parameters();
        let mut p2 = p.clone();
        p2[0] += 1.0;
        net.set_parameters(&p2);
        assert_eq!(net.parameters(), p2);
    }

    #[test]
    #[should_panic]
    fn wrong_input_dimension_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Mlp::new(3, 4, &mut rng);
        let _ = net.predict(&[1.0, 2.0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Mlp::new(4, 6, &mut rng);
        let x = [0.3, -0.8, 1.2, 0.05];
        let (y, grad) = net.predict_with_gradient(&x);
        assert!((y - net.predict(&x)).abs() < 1e-12);
        let params = net.parameters();
        let h = 1e-6;
        for k in (0..net.num_parameters()).step_by(7) {
            let mut plus = net.clone();
            let mut p = params.clone();
            p[k] += h;
            plus.set_parameters(&p);
            let mut minus = net.clone();
            p[k] -= 2.0 * h;
            minus.set_parameters(&p);
            let fd = (plus.predict(&x) - minus.predict(&x)) / (2.0 * h);
            assert!(
                (fd - grad[k]).abs() < 1e-5,
                "param {k}: fd {fd} vs analytic {}",
                grad[k]
            );
        }
    }

    #[test]
    fn output_changes_with_input() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Mlp::new(2, 8, &mut rng);
        let a = net.predict(&[0.0, 0.0]);
        let b = net.predict(&[1.0, -1.0]);
        assert!((a - b).abs() > 1e-9);
    }
}
