//! `moheco-surrogate` — the response-surface and worst-case baselines of
//! §3.4 of the MOHECO paper.
//!
//! * [`mlp`] / [`levenberg_marquardt`] — the backward-propagation neural
//!   network (20 hidden neurons in the paper) and its Levenberg–Marquardt
//!   trainer.
//! * [`rsb`] — the response-surface-based yield model trained on MOHECO
//!   trajectory data, used to reproduce the "RMS error is still ~7 % after 50
//!   iterations of training data" observation.
//! * [`pswcd`] — the performance-specific worst-case design screen, used to
//!   reproduce the over-design discussion (a design with high Monte-Carlo
//!   yield is rejected when each spec is checked at its own worst case).
//! * [`prescreen`] — the *online* face of the response surface: the
//!   [`PrescreenModel`] trait and its [`RsbPrescreen`] implementation,
//!   which the optimization loop trains incrementally and consults to rank
//!   candidates before spending Monte-Carlo budget on them.
//!
//! # Example
//!
//! ```
//! use moheco_surrogate::{LmConfig, RsbYieldModel};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let pairs: Vec<(Vec<f64>, f64)> = (0..50)
//!     .map(|i| {
//!         let x = i as f64 / 50.0;
//!         (vec![x, 1.0 - x], (1.0 - x * x).max(0.0))
//!     })
//!     .collect();
//! let model = RsbYieldModel::fit(&pairs, 8, &LmConfig::default(), &mut rng)?;
//! assert!(model.predict(&[0.1, 0.9]) > 0.5);
//! # Ok::<(), moheco_surrogate::RsbError>(())
//! ```

#![warn(missing_docs)]

pub mod levenberg_marquardt;
pub mod mlp;
pub mod prescreen;
pub mod pswcd;
pub mod rsb;

pub use levenberg_marquardt::{sse, train, LmConfig, LmReport};
pub use mlp::Mlp;
pub use prescreen::{PrescreenModel, RsbPrescreen};
pub use pswcd::{overdesign_comparison, pswcd_analyze, PswcdConfig, PswcdReport};
pub use rsb::{RsbError, RsbYieldModel};
