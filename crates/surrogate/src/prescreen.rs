//! Online yield surrogates for candidate prescreening.
//!
//! The offline §3.4 experiment ([`crate::rsb`]) concludes that a response
//! surface is not accurate enough to *replace* Monte-Carlo yield estimation.
//! It is, however, plenty accurate to *rank* candidates — the BagNet line of
//! work shows that a cheap learned discriminator screening evolutionary
//! candidates before simulation cuts simulator calls by a large factor. This
//! module packages that idea as an online model trained incrementally on the
//! `(design point, estimated yield)` pairs a run accumulates anyway.
//!
//! [`PrescreenModel`] is the object-safe contract the optimization layers
//! consume; [`RsbPrescreen`] implements it over the existing
//! [`RsbYieldModel`]. The trait keeps other regressors (e.g. a deeper
//! [`crate::mlp::Mlp`]) pluggable without touching the consumers.

use crate::levenberg_marquardt::LmConfig;
use crate::rsb::RsbYieldModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An online surrogate that predicts the yield of a design point from the
/// `(design, estimated yield)` pairs observed earlier in the same run.
///
/// Implementations own their training data and any randomness they need
/// (seeded at construction), so the trait stays object-safe and a given seed
/// always reproduces the same sequence of fits.
pub trait PrescreenModel: Send {
    /// Stable label of the model (used in results and file names).
    fn name(&self) -> &'static str;

    /// Records one observed `(design point, estimated yield)` pair.
    fn observe(&mut self, x: &[f64], y: f64);

    /// Retrains the model on the observations accumulated so far. Returns
    /// `true` when a usable model is available afterwards.
    fn refit(&mut self) -> bool;

    /// Whether [`PrescreenModel::predict`] currently returns predictions.
    fn ready(&self) -> bool;

    /// Predicted yield of `x`, or `None` while the model is untrained (or
    /// the dimension does not match its training data).
    fn predict(&self, x: &[f64]) -> Option<f64>;

    /// Number of observations recorded so far.
    fn observations(&self) -> usize;

    /// Number of refits performed so far.
    fn refits(&self) -> usize;
}

/// [`PrescreenModel`] backed by the [`RsbYieldModel`] response surface.
///
/// Observations are kept in a sliding window (newest pairs win) so the
/// Levenberg–Marquardt refit cost stays bounded over long runs, and the
/// refit uses a deliberately short LM schedule: the prescreen only needs the
/// *ranking* of candidates to be roughly right, not percent-level accuracy.
#[derive(Debug)]
pub struct RsbPrescreen {
    pairs: Vec<(Vec<f64>, f64)>,
    model: Option<RsbYieldModel>,
    hidden: usize,
    min_observations: usize,
    window: usize,
    lm: LmConfig,
    rng: StdRng,
    refits: usize,
}

impl RsbPrescreen {
    /// Default number of hidden neurons of the online response surface.
    pub const DEFAULT_HIDDEN: usize = 6;
    /// Default minimum observations before the first fit.
    pub const DEFAULT_MIN_OBSERVATIONS: usize = 20;
    /// Default sliding-window size (newest observations kept).
    pub const DEFAULT_WINDOW: usize = 160;

    /// Creates an untrained prescreen whose fits are deterministic in
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            pairs: Vec::new(),
            model: None,
            hidden: Self::DEFAULT_HIDDEN,
            min_observations: Self::DEFAULT_MIN_OBSERVATIONS,
            window: Self::DEFAULT_WINDOW,
            lm: LmConfig {
                max_iterations: 15,
                ..LmConfig::default()
            },
            rng: StdRng::seed_from_u64(seed ^ 0x5AB0_0C0D_E57A_6E17),
            refits: 0,
        }
    }

    /// Overrides the minimum number of observations before the first fit.
    pub fn with_min_observations(mut self, min_observations: usize) -> Self {
        self.min_observations = min_observations.max(2);
        self
    }
}

impl PrescreenModel for RsbPrescreen {
    fn name(&self) -> &'static str {
        "rsb"
    }

    fn observe(&mut self, x: &[f64], y: f64) {
        if !y.is_finite() || x.iter().any(|v| !v.is_finite()) {
            return; // never train on poisoned estimates
        }
        if let Some((first, _)) = self.pairs.first() {
            if first.len() != x.len() {
                return;
            }
        }
        if self.pairs.len() == self.window {
            self.pairs.remove(0);
        }
        self.pairs.push((x.to_vec(), y.clamp(0.0, 1.0)));
    }

    fn refit(&mut self) -> bool {
        if self.pairs.len() < self.min_observations {
            return self.model.is_some();
        }
        if let Ok(model) = RsbYieldModel::fit(&self.pairs, self.hidden, &self.lm, &mut self.rng) {
            self.model = Some(model);
            self.refits += 1;
        }
        self.model.is_some()
    }

    fn ready(&self) -> bool {
        self.model.is_some()
    }

    fn predict(&self, x: &[f64]) -> Option<f64> {
        let model = self.model.as_ref()?;
        let dim = self.pairs.first().map(|(p, _)| p.len())?;
        (x.len() == dim).then(|| model.predict(x))
    }

    fn observations(&self) -> usize {
        self.pairs.len()
    }

    fn refits(&self) -> usize {
        self.refits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_yield(x: &[f64]) -> f64 {
        let d2: f64 = x.iter().map(|v| (v - 0.5).powi(2)).sum();
        (-4.0 * d2).exp()
    }

    fn observe_grid(model: &mut RsbPrescreen, n: usize) {
        for i in 0..n {
            let a = (i % 7) as f64 / 7.0;
            let b = (i % 11) as f64 / 11.0;
            let x = vec![a, b];
            model.observe(&x, toy_yield(&x));
        }
    }

    #[test]
    fn not_ready_until_min_observations() {
        let mut m = RsbPrescreen::new(1).with_min_observations(10);
        assert!(!m.ready());
        assert_eq!(m.predict(&[0.5, 0.5]), None);
        observe_grid(&mut m, 5);
        assert!(!m.refit());
        observe_grid(&mut m, 10);
        assert!(m.refit());
        assert!(m.ready());
        assert_eq!(m.refits(), 1);
    }

    #[test]
    fn trained_model_ranks_good_above_bad() {
        let mut m = RsbPrescreen::new(7).with_min_observations(20);
        observe_grid(&mut m, 80);
        assert!(m.refit());
        let good = m.predict(&[0.5, 0.5]).unwrap();
        let bad = m.predict(&[0.05, 0.95]).unwrap();
        assert!(good > bad, "good {good} bad {bad}");
        assert!((0.0..=1.0).contains(&good));
    }

    #[test]
    fn refits_are_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let mut m = RsbPrescreen::new(seed);
            observe_grid(&mut m, 60);
            m.refit();
            m.predict(&[0.3, 0.6]).unwrap()
        };
        assert_eq!(run(3).to_bits(), run(3).to_bits());
        assert_ne!(run(3).to_bits(), run(4).to_bits());
    }

    #[test]
    fn window_bounds_the_training_set() {
        let mut m = RsbPrescreen::new(1);
        observe_grid(&mut m, 2 * RsbPrescreen::DEFAULT_WINDOW);
        assert_eq!(m.observations(), RsbPrescreen::DEFAULT_WINDOW);
    }

    #[test]
    fn poisoned_and_mismatched_observations_are_ignored() {
        let mut m = RsbPrescreen::new(1);
        m.observe(&[0.1, 0.2], 0.5);
        m.observe(&[0.1, 0.2], f64::NAN);
        m.observe(&[f64::INFINITY, 0.2], 0.5);
        m.observe(&[0.1], 0.5); // dimension mismatch
        assert_eq!(m.observations(), 1);
        // Out-of-range estimates are clamped into [0, 1].
        m.observe(&[0.3, 0.4], 1.7);
        assert_eq!(m.observations(), 2);
    }
}
