//! Performance-specific worst-case design (PSWCD) baseline.
//!
//! §3.4 of the paper discusses why PSWCD methods over-design: each
//! specification's worst case is found as a *separate* optimization over the
//! process parameters, and a design is only accepted when it meets every
//! specification at its own worst case. Because the individual worst-case
//! process points generally cannot occur simultaneously, their combination is
//! pessimistic — designs with perfectly acceptable Monte-Carlo yield get
//! rejected.
//!
//! The implementation searches the worst case of each spec over the ±k·σ
//! inter-die box (random search plus coordinate refinement), with the
//! mismatch variables set to ±k·σ in their most pessimistic direction per
//! spec.

use moheco_analog::Testbench;
use moheco_process::ProcessSample;
use rand::Rng;

/// Configuration of the PSWCD analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PswcdConfig {
    /// Worst-case search radius in sigmas (typically 3).
    pub k_sigma: f64,
    /// Number of random probes per specification.
    pub probes: usize,
}

impl Default for PswcdConfig {
    fn default() -> Self {
        Self {
            k_sigma: 3.0,
            probes: 60,
        }
    }
}

/// Outcome of a PSWCD analysis of one design point.
#[derive(Debug, Clone)]
pub struct PswcdReport {
    /// Worst-case normalised margin found for each specification
    /// (same order as the testbench's spec set, saturation excluded).
    pub worst_margins: Vec<f64>,
    /// `true` when every specification passes at its own worst case.
    pub accepted: bool,
    /// Number of circuit simulations spent.
    pub simulations: usize,
}

/// Runs the spec-wise worst-case analysis of design `x`.
pub fn pswcd_analyze<T: Testbench, R: Rng + ?Sized>(
    testbench: &T,
    x: &[f64],
    config: &PswcdConfig,
    rng: &mut R,
) -> PswcdReport {
    let tech = testbench.technology();
    let n_inter = tech.num_inter_die();
    let n_dev = testbench.num_devices();
    let num_specs = testbench.specs().len();
    let mut worst_margins = vec![f64::INFINITY; num_specs];
    let mut simulations = 0usize;

    #[allow(clippy::needless_range_loop)] // one independent worst-case search per spec index
    for spec_idx in 0..num_specs {
        // Random search over the ±k sigma box for this spec's worst case.
        for probe in 0..config.probes {
            let mut sample = ProcessSample::nominal(n_inter, n_dev);
            if probe > 0 {
                for (j, v) in sample.inter.iter_mut().enumerate() {
                    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                    let magnitude = rng.gen::<f64>() * config.k_sigma;
                    *v = sign * magnitude * tech.inter_die[j].sigma;
                }
                for d in sample.intra.iter_mut() {
                    for z in d.iter_mut() {
                        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                        *z = sign * rng.gen::<f64>() * config.k_sigma;
                    }
                }
            }
            let perf = testbench.evaluate(x, &sample);
            simulations += 1;
            let margin = testbench.specs().specs[spec_idx].margin(&perf);
            if margin < worst_margins[spec_idx] {
                worst_margins[spec_idx] = margin;
            }
        }
    }

    let accepted = worst_margins.iter().all(|&m| m >= 0.0);
    PswcdReport {
        worst_margins,
        accepted,
        simulations,
    }
}

/// Quantifies PSWCD over-design on one design point: returns
/// `(pswcd_accepted, monte_carlo_yield)`. A high MC yield together with a
/// PSWCD rejection is exactly the over-design case discussed in the paper.
pub fn overdesign_comparison<T: Testbench, R: Rng + ?Sized>(
    testbench: &T,
    x: &[f64],
    mc_samples: usize,
    config: &PswcdConfig,
    rng: &mut R,
) -> (bool, f64) {
    let report = pswcd_analyze(testbench, x, config, rng);
    let sampler = moheco_process::ProcessSampler::new(
        testbench.technology().clone(),
        testbench.num_devices(),
    );
    let mut passes = 0usize;
    for _ in 0..mc_samples {
        let xi = sampler.sample(rng);
        if testbench.specs().all_met(&testbench.evaluate(x, &xi)) {
            passes += 1;
        }
    }
    (report.accepted, passes as f64 / mc_samples.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_analog::{FoldedCascode, Testbench};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn worst_margins_are_no_better_than_nominal() {
        let tb = FoldedCascode::new();
        let x = tb.reference_design();
        let nominal = tb.nominal_margins(&x);
        let mut rng = StdRng::seed_from_u64(3);
        let report = pswcd_analyze(
            &tb,
            &x,
            &PswcdConfig {
                probes: 20,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(report.worst_margins.len(), tb.specs().len());
        for (w, n) in report.worst_margins.iter().zip(&nominal) {
            assert!(w <= n, "worst-case margin {w} cannot exceed nominal {n}");
        }
        assert!(report.simulations >= tb.specs().len() * 20);
    }

    #[test]
    fn pswcd_is_pessimistic_about_a_high_yield_design() {
        // The reference design has a high Monte-Carlo yield, but combining
        // per-spec 3-sigma worst cases rejects it (over-design).
        let tb = FoldedCascode::new();
        let x = tb.reference_design();
        let mut rng = StdRng::seed_from_u64(4);
        let (accepted, mc_yield) = overdesign_comparison(
            &tb,
            &x,
            150,
            &PswcdConfig {
                k_sigma: 3.0,
                probes: 40,
            },
            &mut rng,
        );
        assert!(mc_yield > 0.5, "reference design MC yield {mc_yield}");
        // With 3-sigma worst cases on every variable simultaneously the
        // screen is far more pessimistic than the true yield.
        assert!(
            !accepted || mc_yield > 0.95,
            "pswcd accepted={accepted} while yield={mc_yield}"
        );
    }

    #[test]
    fn zero_probes_yields_nominal_margins_only() {
        let tb = FoldedCascode::new();
        let x = tb.reference_design();
        let mut rng = StdRng::seed_from_u64(5);
        let report = pswcd_analyze(
            &tb,
            &x,
            &PswcdConfig {
                probes: 1,
                ..Default::default()
            },
            &mut rng,
        );
        // With a single (nominal) probe per spec the design must be accepted,
        // because the reference design is nominally feasible.
        assert!(report.accepted);
    }
}
