//! Response-surface-based (RSB) yield model.
//!
//! §3.4 of the paper trains a neural network on the `(design point, yield)`
//! data generated during a MOHECO run and measures how well it predicts the
//! yields of the *next* iteration's candidates. The conclusion — an RMS error
//! of several percent even when 50 iterations of training data are available —
//! motivates why MOHECO keeps Monte-Carlo in the loop instead of a surrogate.
//!
//! This module packages the MLP + Levenberg–Marquardt regressor with the
//! input/output normalisation needed to reproduce that experiment.

use crate::levenberg_marquardt::{train, LmConfig};
use crate::mlp::Mlp;
use rand::Rng;

/// A trained yield surrogate.
#[derive(Debug, Clone)]
pub struct RsbYieldModel {
    net: Mlp,
    input_lo: Vec<f64>,
    input_hi: Vec<f64>,
}

/// Error returned when a surrogate cannot be trained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsbError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Training points do not all share the same dimension.
    InconsistentDimensions,
}

impl std::fmt::Display for RsbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsbError::EmptyTrainingSet => write!(f, "training set is empty"),
            RsbError::InconsistentDimensions => {
                write!(f, "training points have inconsistent dimensions")
            }
        }
    }
}

impl std::error::Error for RsbError {}

impl RsbYieldModel {
    /// Trains a yield surrogate with `hidden` hidden neurons on the
    /// `(design point, yield)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`RsbError`] when the training set is empty or inconsistent.
    pub fn fit<R: Rng + ?Sized>(
        pairs: &[(Vec<f64>, f64)],
        hidden: usize,
        config: &LmConfig,
        rng: &mut R,
    ) -> Result<Self, RsbError> {
        if pairs.is_empty() {
            return Err(RsbError::EmptyTrainingSet);
        }
        let dim = pairs[0].0.len();
        if pairs.iter().any(|(x, _)| x.len() != dim) {
            return Err(RsbError::InconsistentDimensions);
        }
        // Min-max normalisation of the inputs to [-1, 1].
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for (x, _) in pairs {
            for (j, &v) in x.iter().enumerate() {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }
        for j in 0..dim {
            if hi[j] - lo[j] < 1e-12 {
                hi[j] = lo[j] + 1.0;
            }
        }
        let model = Self {
            net: Mlp::new(dim, hidden, rng),
            input_lo: lo,
            input_hi: hi,
        };
        let inputs: Vec<Vec<f64>> = pairs.iter().map(|(x, _)| model.normalise(x)).collect();
        let targets: Vec<f64> = pairs.iter().map(|(_, y)| *y).collect();
        let mut trained = model;
        train(&mut trained.net, &inputs, &targets, config);
        Ok(trained)
    }

    fn normalise(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(j, &v)| {
                2.0 * (v - self.input_lo[j]) / (self.input_hi[j] - self.input_lo[j]) - 1.0
            })
            .collect()
    }

    /// Predicts the yield of a design point, clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the dimension of `x` does not match the training data.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.input_lo.len(), "dimension mismatch");
        self.net.predict(&self.normalise(x)).clamp(0.0, 1.0)
    }

    /// Root-mean-square prediction error on a test set, in yield fraction
    /// (multiply by 100 for the percentage the paper quotes).
    pub fn rms_error(&self, test: &[(Vec<f64>, f64)]) -> f64 {
        if test.is_empty() {
            return 0.0;
        }
        let sse: f64 = test
            .iter()
            .map(|(x, y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum();
        (sse / test.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_yield(x: &[f64]) -> f64 {
        // A smooth, saturating yield-like surface in [0, 1].
        let d2: f64 = x.iter().map(|v| (v - 0.6).powi(2)).sum();
        (-3.0 * d2).exp()
    }

    fn make_pairs(n: usize, dim: usize, rng: &mut StdRng) -> Vec<(Vec<f64>, f64)> {
        (0..n)
            .map(|_| {
                let x: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
                let y = toy_yield(&x);
                (x, y)
            })
            .collect()
    }

    #[test]
    fn fit_and_predict_on_a_smooth_surface() {
        let mut rng = StdRng::seed_from_u64(10);
        let train_set = make_pairs(250, 3, &mut rng);
        let test_set = make_pairs(60, 3, &mut rng);
        let model = RsbYieldModel::fit(&train_set, 12, &LmConfig::default(), &mut rng).unwrap();
        let err = model.rms_error(&test_set);
        assert!(err < 0.1, "rms error {err}");
        // Predictions stay within [0, 1].
        for (x, _) in &test_set {
            let y = model.predict(x);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn sparse_training_data_gives_larger_error_than_dense() {
        let mut rng = StdRng::seed_from_u64(11);
        let dense = make_pairs(300, 4, &mut rng);
        let sparse = make_pairs(15, 4, &mut rng);
        let test_set = make_pairs(80, 4, &mut rng);
        let dense_model = RsbYieldModel::fit(&dense, 12, &LmConfig::default(), &mut rng).unwrap();
        let sparse_model = RsbYieldModel::fit(&sparse, 12, &LmConfig::default(), &mut rng).unwrap();
        assert!(
            sparse_model.rms_error(&test_set) > dense_model.rms_error(&test_set),
            "sparse {} dense {}",
            sparse_model.rms_error(&test_set),
            dense_model.rms_error(&test_set)
        );
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let mut rng = StdRng::seed_from_u64(12);
        assert_eq!(
            RsbYieldModel::fit(&[], 5, &LmConfig::default(), &mut rng).unwrap_err(),
            RsbError::EmptyTrainingSet
        );
    }

    #[test]
    fn inconsistent_dimensions_are_an_error() {
        let mut rng = StdRng::seed_from_u64(13);
        let pairs = vec![(vec![1.0, 2.0], 0.5), (vec![1.0], 0.2)];
        assert_eq!(
            RsbYieldModel::fit(&pairs, 5, &LmConfig::default(), &mut rng).unwrap_err(),
            RsbError::InconsistentDimensions
        );
    }

    #[test]
    fn rms_error_of_empty_test_set_is_zero() {
        let mut rng = StdRng::seed_from_u64(14);
        let pairs = make_pairs(30, 2, &mut rng);
        let model = RsbYieldModel::fit(&pairs, 6, &LmConfig::default(), &mut rng).unwrap();
        assert_eq!(model.rms_error(&[]), 0.0);
    }
}
