//! Probability distributions used for process-variation sampling.
//!
//! Only the distributions the yield flow needs are implemented: the normal
//! distribution (Box–Muller sampling plus an inverse-CDF used to map Latin
//! Hypercube points), a uniform distribution and a truncated normal. Keeping
//! them in-tree avoids an external `rand_distr` dependency.

use rand::Rng;

/// A one-dimensional distribution that can be sampled and inverse-transformed.
pub trait Distribution1d {
    /// Draws one sample using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
    /// Maps a uniform variate `u` in `(0, 1)` through the inverse CDF.
    fn inverse_cdf(&self, u: f64) -> f64;
    /// Distribution mean.
    fn mean(&self) -> f64;
    /// Distribution standard deviation.
    fn std_dev(&self) -> f64;
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (non-negative).
    pub sigma: f64,
}

impl Normal {
    /// Standard normal distribution (mean 0, sigma 1).
    pub const STANDARD: Normal = Normal {
        mean: 0.0,
        sigma: 1.0,
    };

    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        Self { mean, sigma }
    }
}

impl Distribution1d for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sigma * standard_normal(rng)
    }

    fn inverse_cdf(&self, u: f64) -> f64 {
        self.mean + self.sigma * standard_normal_inverse_cdf(u)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn std_dev(&self) -> f64 {
        self.sigma
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (exclusive).
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "uniform distribution requires hi > lo");
        Self { lo, hi }
    }
}

impl Distribution1d for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * rng.gen::<f64>()
    }

    fn inverse_cdf(&self, u: f64) -> f64 {
        self.lo + (self.hi - self.lo) * u.clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn std_dev(&self) -> f64 {
        (self.hi - self.lo) / 12f64.sqrt()
    }
}

/// Normal distribution truncated to `[mean - k*sigma, mean + k*sigma]`
/// by rejection (sampling) or clamping (inverse CDF).
///
/// Foundry statistical models typically truncate at 3–4 sigma so that
/// physically impossible parameter values (negative oxide thickness, …)
/// cannot be generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    /// The underlying normal distribution.
    pub normal: Normal,
    /// Truncation half-width in sigmas.
    pub k: f64,
}

impl TruncatedNormal {
    /// Creates a truncated normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not strictly positive.
    pub fn new(mean: f64, sigma: f64, k: f64) -> Self {
        assert!(k > 0.0, "truncation width must be positive");
        Self {
            normal: Normal::new(mean, sigma),
            k,
        }
    }
}

impl Distribution1d for TruncatedNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let lo = self.normal.mean - self.k * self.normal.sigma;
        let hi = self.normal.mean + self.k * self.normal.sigma;
        // Rejection sampling: acceptance probability is > 99% for k >= 3.
        for _ in 0..1000 {
            let x = self.normal.sample(rng);
            if x >= lo && x <= hi {
                return x;
            }
        }
        self.normal.mean
    }

    fn inverse_cdf(&self, u: f64) -> f64 {
        let x = self.normal.inverse_cdf(u);
        let lo = self.normal.mean - self.k * self.normal.sigma;
        let hi = self.normal.mean + self.k * self.normal.sigma;
        x.clamp(lo, hi)
    }

    fn mean(&self) -> f64 {
        self.normal.mean
    }

    fn std_dev(&self) -> f64 {
        self.normal.sigma
    }
}

/// Draws a standard-normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// Delegates to the canonical implementation in
/// [`moheco_sampling::oracle::standard_normal_quantile`] (Acklam's rational
/// approximation, |err| < 1.15e-9).
pub fn standard_normal_inverse_cdf(p: f64) -> f64 {
    moheco_sampling::oracle::standard_normal_quantile(p)
}

/// CDF of the standard normal distribution.
///
/// Delegates to the canonical implementation in
/// [`moheco_sampling::oracle::standard_normal_cdf`] (Abramowitz-Stegun
/// 26.2.17, |err| < 7.5e-8).
pub fn standard_normal_cdf(x: f64) -> f64 {
    moheco_sampling::oracle::standard_normal_cdf(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_sample_statistics() {
        let d = Normal::new(2.0, 0.5);
        let mut r = rng();
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "sigma {}", var.sqrt());
    }

    #[test]
    fn normal_inverse_cdf_known_quantiles() {
        let d = Normal::STANDARD;
        assert!((d.inverse_cdf(0.5)).abs() < 1e-8);
        assert!((d.inverse_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((d.inverse_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((d.inverse_cdf(0.84134) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn inverse_cdf_and_cdf_are_inverses() {
        for &x in &[-2.5, -1.0, -0.3, 0.0, 0.7, 1.5, 3.0] {
            let p = standard_normal_cdf(x);
            let back = standard_normal_inverse_cdf(p);
            assert!((back - x).abs() < 2e-4, "x {x} -> p {p} -> {back}");
        }
    }

    #[test]
    fn normal_scaling() {
        let d = Normal::new(10.0, 2.0);
        assert!((d.inverse_cdf(0.975) - (10.0 + 2.0 * 1.959964)).abs() < 1e-3);
        assert_eq!(d.mean(), 10.0);
        assert_eq!(d.std_dev(), 2.0);
    }

    #[test]
    #[should_panic]
    fn normal_rejects_negative_sigma() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn uniform_sample_within_bounds() {
        let d = Uniform::new(-1.0, 3.0);
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((-1.0..3.0).contains(&x));
        }
        assert_eq!(d.mean(), 1.0);
        assert!((d.std_dev() - 4.0 / 12f64.sqrt()).abs() < 1e-12);
        assert_eq!(d.inverse_cdf(0.0), -1.0);
        assert_eq!(d.inverse_cdf(1.0), 3.0);
    }

    #[test]
    #[should_panic]
    fn uniform_rejects_empty_interval() {
        let _ = Uniform::new(1.0, 1.0);
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let d = TruncatedNormal::new(0.0, 1.0, 3.0);
        let mut r = rng();
        for _ in 0..5000 {
            let x = d.sample(&mut r);
            assert!(x.abs() <= 3.0 + 1e-12);
        }
        assert!(d.inverse_cdf(0.9999999) <= 3.0);
        assert!(d.inverse_cdf(1e-9) >= -3.0);
    }

    #[test]
    fn standard_normal_has_unit_variance() {
        let mut r = rng();
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.03);
    }

    #[test]
    fn cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0] {
            let s = standard_normal_cdf(x) + standard_normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-7);
        }
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
    }
}
