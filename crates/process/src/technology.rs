//! Technology descriptions: the statistical process models of the two CMOS
//! nodes used in the MOHECO paper.
//!
//! The paper's example 1 uses a 0.35 µm process with **20 inter-die** and
//! **4 intra-die variables per transistor** (15 transistors → 80 variables in
//! total). Example 2 uses a 90 nm process with **47 inter-die** variables
//! (19 transistors → 76 intra-die → 123 total). The foundry statistical data
//! is proprietary, so the numbers here are synthetic but realistically
//! structured: Gaussian inter-die corners with a few-percent spread plus
//! Pelgrom-scaled mismatch.

use crate::parameters::{InterDieEffect, InterDieParameter, MismatchModel};

/// A CMOS technology node with its statistical process description.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Human-readable name (e.g. `"cmos035"`).
    pub name: String,
    /// Nominal supply voltage (V).
    pub vdd: f64,
    /// Minimum drawn channel length (m).
    pub l_min: f64,
    /// Inter-die statistical parameters.
    pub inter_die: Vec<InterDieParameter>,
    /// Intra-die (mismatch) model.
    pub mismatch: MismatchModel,
}

impl Technology {
    /// Number of inter-die statistical variables.
    pub fn num_inter_die(&self) -> usize {
        self.inter_die.len()
    }

    /// Returns a copy of the technology with every statistical standard
    /// deviation — inter-die sigmas and Pelgrom mismatch coefficients —
    /// multiplied by `scale`, and `(xN.NN)` appended to the name.
    ///
    /// This models a harsher (`scale > 1`) or milder (`scale < 1`) process
    /// corner than the nominal characterisation; the corner-parameterized
    /// benchmark builders in `moheco-analog` use it to turn each circuit into
    /// a family of scenarios of graded difficulty.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive and finite.
    pub fn with_sigma_scale(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "sigma scale must be positive and finite"
        );
        for p in &mut self.inter_die {
            p.sigma *= scale;
        }
        self.mismatch.a_vth *= scale;
        self.mismatch.a_tox_rel *= scale;
        self.mismatch.a_ld *= scale;
        self.mismatch.a_wd *= scale;
        self.name = format!("{}(x{:.2})", self.name, scale);
        self
    }

    /// Total number of statistical variables for a circuit with
    /// `num_devices` transistors (four mismatch variables per device).
    pub fn num_variables(&self, num_devices: usize) -> usize {
        self.num_inter_die() + 4 * num_devices
    }
}

/// The 0.35 µm CMOS technology of example 1 (3.3 V supply).
///
/// The 20 inter-die parameter names follow the list given in the paper:
/// `TOXRn, VTH0Rn, DELUON, DELL, DELW, DELRDIFFN, VTH0Rp, DELUOP, DELRDIFFP,
/// CJSWRn, CJSWRp, CJRn, CJRp, NPEAKn, NPEAKp, TOXRp, LDn, WDn, LDp, WDp`.
pub fn tech_035um() -> Technology {
    use InterDieEffect as E;
    let inter_die = vec![
        InterDieParameter::new("TOXRn", 0.15e-9, E::ToxN),
        InterDieParameter::new("VTH0Rn", 0.035, E::Vth0N),
        InterDieParameter::new("DELUON", 0.06, E::MobilityN),
        InterDieParameter::new("DELL", 0.015e-6, E::DeltaL),
        InterDieParameter::new("DELW", 0.015e-6, E::DeltaW),
        InterDieParameter::new("DELRDIFFN", 0.09, E::RdiffN),
        InterDieParameter::new("VTH0Rp", 0.038, E::Vth0P),
        InterDieParameter::new("DELUOP", 0.06, E::MobilityP),
        InterDieParameter::new("DELRDIFFP", 0.09, E::RdiffP),
        InterDieParameter::new("CJSWRn", 0.04, E::CjswN),
        InterDieParameter::new("CJSWRp", 0.04, E::CjswP),
        InterDieParameter::new("CJRn", 0.04, E::CjN),
        InterDieParameter::new("CJRp", 0.04, E::CjP),
        InterDieParameter::new("NPEAKn", 0.03, E::DopingN),
        InterDieParameter::new("NPEAKp", 0.03, E::DopingP),
        InterDieParameter::new("TOXRp", 0.15e-9, E::ToxP),
        InterDieParameter::new("LDn", 0.005e-6, E::LdN),
        InterDieParameter::new("WDn", 0.005e-6, E::WdN),
        InterDieParameter::new("LDp", 0.005e-6, E::LdP),
        InterDieParameter::new("WDp", 0.005e-6, E::WdP),
    ];
    Technology {
        name: "cmos035".into(),
        vdd: 3.3,
        l_min: 0.35e-6,
        inter_die,
        mismatch: MismatchModel {
            a_vth: 12.0e-3, // 12 mV*um (pessimistic corner of a 0.35um process)
            a_tox_rel: 1.0e-3,
            a_ld: 2.0e-9,
            a_wd: 2.0e-9,
        },
    }
}

/// The 90 nm CMOS technology of example 2 (1.2 V supply).
///
/// The paper states 47 inter-die variables for this technology; the foundry
/// list is not published, so the set below contains the 20 base parameters of
/// the 0.35 µm list (rescaled to 90 nm magnitudes) plus additional per-device
/// corner parameters that nanometre PDKs typically expose (gate-leakage
/// oxide thickness split, low-/high-Vt flavour thresholds, poly CD, well
/// proximity, narrow-width effects, …), for a total of exactly 47.
pub fn tech_90nm() -> Technology {
    use InterDieEffect as E;
    let mut inter_die = vec![
        InterDieParameter::new("TOXRn", 0.03e-9, E::ToxN),
        InterDieParameter::new("VTH0Rn", 0.030, E::Vth0N),
        InterDieParameter::new("DELUON", 0.08, E::MobilityN),
        InterDieParameter::new("DELL", 3.0e-9, E::DeltaL),
        InterDieParameter::new("DELW", 4.0e-9, E::DeltaW),
        InterDieParameter::new("DELRDIFFN", 0.11, E::RdiffN),
        InterDieParameter::new("VTH0Rp", 0.032, E::Vth0P),
        InterDieParameter::new("DELUOP", 0.08, E::MobilityP),
        InterDieParameter::new("DELRDIFFP", 0.11, E::RdiffP),
        InterDieParameter::new("CJSWRn", 0.05, E::CjswN),
        InterDieParameter::new("CJSWRp", 0.05, E::CjswP),
        InterDieParameter::new("CJRn", 0.05, E::CjN),
        InterDieParameter::new("CJRp", 0.05, E::CjP),
        InterDieParameter::new("NPEAKn", 0.04, E::DopingN),
        InterDieParameter::new("NPEAKp", 0.04, E::DopingP),
        InterDieParameter::new("TOXRp", 0.03e-9, E::ToxP),
        InterDieParameter::new("LDn", 1.0e-9, E::LdN),
        InterDieParameter::new("WDn", 1.0e-9, E::WdN),
        InterDieParameter::new("LDp", 1.0e-9, E::LdP),
        InterDieParameter::new("WDp", 1.0e-9, E::WdP),
    ];
    // Additional corner parameters found in nanometre PDK statistical decks.
    // Each is mapped onto the nearest compact-model effect so that it has a
    // real (if second-order) influence on the evaluated performances.
    let extra: [(&str, f64, InterDieEffect); 27] = [
        ("VTHLVTn", 0.012, E::Vth0N),
        ("VTHLVTp", 0.013, E::Vth0P),
        ("VTHHVTn", 0.012, E::Vth0N),
        ("VTHHVTp", 0.013, E::Vth0P),
        ("TOXGLn", 0.02e-9, E::ToxN),
        ("TOXGLp", 0.02e-9, E::ToxP),
        ("POLYCD", 2.0e-9, E::DeltaL),
        ("ACTCD", 3.0e-9, E::DeltaW),
        ("WPEn", 0.008, E::Vth0N),
        ("WPEp", 0.008, E::Vth0P),
        ("NWELLR", 0.03, E::DopingP),
        ("PWELLR", 0.03, E::DopingN),
        ("U0STRESSn", 0.02, E::MobilityN),
        ("U0STRESSp", 0.02, E::MobilityP),
        ("CGDOn", 0.05, E::CjN),
        ("CGDOp", 0.05, E::CjP),
        ("CGSOn", 0.05, E::CjswN),
        ("CGSOp", 0.05, E::CjswP),
        ("RSHn", 0.04, E::RdiffN),
        ("RSHp", 0.04, E::RdiffP),
        ("XJn", 1.0e-9, E::LdN),
        ("XJp", 1.0e-9, E::LdP),
        ("NARROWn", 1.0e-9, E::WdN),
        ("NARROWp", 1.0e-9, E::WdP),
        ("DIBLn", 0.008, E::Vth0N),
        ("DIBLp", 0.008, E::Vth0P),
        ("GLOBALU0", 0.02, E::MobilityN),
    ];
    for (name, sigma, effect) in extra {
        inter_die.push(InterDieParameter::new(name, sigma, effect));
    }
    Technology {
        name: "cmos90".into(),
        vdd: 1.2,
        l_min: 0.09e-6,
        inter_die,
        mismatch: MismatchModel {
            a_vth: 5.0e-3, // 5 mV*um (pessimistic corner of a 90nm process)
            a_tox_rel: 1.5e-3,
            a_ld: 0.8e-9,
            a_wd: 0.8e-9,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tech_035_matches_paper_dimensions() {
        let t = tech_035um();
        assert_eq!(t.num_inter_die(), 20);
        // Example 1: 15 transistors -> 80 statistical variables.
        assert_eq!(t.num_variables(15), 80);
        assert_eq!(t.vdd, 3.3);
    }

    #[test]
    fn tech_90_matches_paper_dimensions() {
        let t = tech_90nm();
        assert_eq!(t.num_inter_die(), 47);
        // Example 2: 19 transistors -> 123 statistical variables.
        assert_eq!(t.num_variables(19), 123);
        assert_eq!(t.vdd, 1.2);
    }

    #[test]
    fn parameter_names_are_unique() {
        for t in [tech_035um(), tech_90nm()] {
            let mut names: Vec<&str> = t.inter_die.iter().map(|p| p.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(
                before,
                names.len(),
                "duplicate parameter name in {}",
                t.name
            );
        }
    }

    #[test]
    fn sigmas_are_positive_and_finite() {
        for t in [tech_035um(), tech_90nm()] {
            for p in &t.inter_die {
                assert!(p.sigma > 0.0 && p.sigma.is_finite(), "{} sigma", p.name);
            }
        }
    }

    #[test]
    fn nanometre_node_has_smaller_mismatch_coefficient() {
        assert!(tech_90nm().mismatch.a_vth < tech_035um().mismatch.a_vth);
        assert!(tech_90nm().l_min < tech_035um().l_min);
    }

    #[test]
    fn sigma_scale_multiplies_every_spread() {
        let base = tech_035um();
        let harsh = tech_035um().with_sigma_scale(1.5);
        for (b, h) in base.inter_die.iter().zip(&harsh.inter_die) {
            assert!((h.sigma - 1.5 * b.sigma).abs() < 1e-15 * b.sigma.max(1.0));
        }
        assert!((harsh.mismatch.a_vth - 1.5 * base.mismatch.a_vth).abs() < 1e-12);
        assert!((harsh.mismatch.a_ld - 1.5 * base.mismatch.a_ld).abs() < 1e-20);
        assert!(harsh.name.contains("x1.50"));
        // Structure (dimension, nominal values) is unchanged.
        assert_eq!(harsh.num_inter_die(), base.num_inter_die());
        assert_eq!(harsh.vdd, base.vdd);
    }

    #[test]
    #[should_panic]
    fn zero_sigma_scale_panics() {
        let _ = tech_035um().with_sigma_scale(0.0);
    }
}
