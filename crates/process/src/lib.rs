//! `moheco-process` — process-variation substrate for the MOHECO reproduction.
//!
//! The MOHECO paper optimizes yield under *inter-die* (die-to-die) and
//! *intra-die* (device mismatch) process variations drawn from foundry
//! statistical models. Those models are proprietary, so this crate provides a
//! synthetic but realistically structured replacement:
//!
//! * [`technology`] — the two technology nodes of the paper with exactly the
//!   same statistical dimensionality (20 inter-die variables for 0.35 µm,
//!   47 for 90 nm, four mismatch variables per transistor).
//! * [`distributions`] — normal / uniform / truncated-normal sampling and the
//!   standard normal inverse CDF used by Latin Hypercube Sampling.
//! * [`correlation`] — Cholesky-based correlated sampling of inter-die
//!   parameters.
//! * [`sample`] — [`sample::ProcessSample`] (a ξ vector) and
//!   [`sample::ProcessSampler`] which draws samples directly or maps
//!   unit-hypercube points from a design-of-experiments generator.
//!
//! # Example
//!
//! ```
//! use moheco_process::{ProcessSampler, tech_035um};
//! use rand::SeedableRng;
//!
//! let sampler = ProcessSampler::new(tech_035um(), 15);
//! assert_eq!(sampler.dimension(), 80); // as in the paper's example 1
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let xi = sampler.sample(&mut rng);
//! assert_eq!(xi.inter.len(), 20);
//! assert_eq!(xi.intra.len(), 15);
//! ```

#![warn(missing_docs)]

pub mod correlation;
pub mod distributions;
pub mod parameters;
pub mod sample;
pub mod technology;

pub use correlation::{Correlation, CorrelationError};
pub use distributions::{
    standard_normal, standard_normal_cdf, standard_normal_inverse_cdf, Distribution1d, Normal,
    TruncatedNormal, Uniform,
};
pub use parameters::{
    InterDieEffect, InterDieParameter, MismatchComponent, MismatchModel, MISMATCH_COMPONENTS,
};
pub use sample::{ProcessSample, ProcessSampler};
pub use technology::{tech_035um, tech_90nm, Technology};
