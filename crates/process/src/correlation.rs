//! Correlation handling for inter-die parameters.
//!
//! Foundry statistical models frequently specify correlated inter-die
//! parameters (e.g. NMOS and PMOS oxide thickness move together because they
//! are grown in the same step). This module provides a small symmetric
//! positive-definite correlation matrix type with a Cholesky factorisation so
//! correlated standard-normal vectors can be generated from independent ones.

use std::fmt;

/// Error returned when a correlation matrix is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum CorrelationError {
    /// An off-diagonal entry was outside `[-1, 1]` or a diagonal entry was not 1.
    InvalidEntry {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// The matrix is not positive definite (Cholesky failed).
    NotPositiveDefinite {
        /// Row at which the factorisation failed.
        row: usize,
    },
    /// The matrix is not square or does not match the expected dimension.
    Dimension {
        /// Expected dimension.
        expected: usize,
        /// Dimension received.
        got: usize,
    },
}

impl fmt::Display for CorrelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrelationError::InvalidEntry { row, col, value } => {
                write!(f, "invalid correlation entry ({row},{col}) = {value}")
            }
            CorrelationError::NotPositiveDefinite { row } => {
                write!(f, "correlation matrix is not positive definite (row {row})")
            }
            CorrelationError::Dimension { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for CorrelationError {}

/// A correlation matrix together with its lower-triangular Cholesky factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Correlation {
    dim: usize,
    /// Lower-triangular Cholesky factor, row-major.
    chol: Vec<f64>,
}

impl Correlation {
    /// The identity correlation (independent variables) of dimension `dim`.
    pub fn identity(dim: usize) -> Self {
        let mut chol = vec![0.0; dim * dim];
        for i in 0..dim {
            chol[i * dim + i] = 1.0;
        }
        Self { dim, chol }
    }

    /// Builds a correlation structure from a full correlation matrix given as
    /// row-major `dim x dim` data.
    ///
    /// # Errors
    ///
    /// Returns [`CorrelationError::Dimension`] when `data.len() != dim*dim`,
    /// [`CorrelationError::InvalidEntry`] when entries are out of range and
    /// [`CorrelationError::NotPositiveDefinite`] when the Cholesky
    /// factorisation fails.
    pub fn from_matrix(dim: usize, data: &[f64]) -> Result<Self, CorrelationError> {
        if data.len() != dim * dim {
            return Err(CorrelationError::Dimension {
                expected: dim * dim,
                got: data.len(),
            });
        }
        for i in 0..dim {
            for j in 0..dim {
                let v = data[i * dim + j];
                if i == j && (v - 1.0).abs() > 1e-9 {
                    return Err(CorrelationError::InvalidEntry {
                        row: i,
                        col: j,
                        value: v,
                    });
                }
                if !(-1.0 - 1e-12..=1.0 + 1e-12).contains(&v) {
                    return Err(CorrelationError::InvalidEntry {
                        row: i,
                        col: j,
                        value: v,
                    });
                }
            }
        }
        // Cholesky factorisation.
        let mut l = vec![0.0; dim * dim];
        for i in 0..dim {
            for j in 0..=i {
                let mut sum = data[i * dim + j];
                for k in 0..j {
                    sum -= l[i * dim + k] * l[j * dim + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(CorrelationError::NotPositiveDefinite { row: i });
                    }
                    l[i * dim + j] = sum.sqrt();
                } else {
                    l[i * dim + j] = sum / l[j * dim + j];
                }
            }
        }
        Ok(Self { dim, chol: l })
    }

    /// Builds an exponential-decay correlation: `rho_{ij} = rho^{|i-j|}`.
    ///
    /// This is a convenient synthetic structure mimicking a parameter deck in
    /// which "nearby" parameters (same processing step) are correlated.
    ///
    /// # Errors
    ///
    /// Returns an error when `|rho| >= 1`.
    pub fn exponential(dim: usize, rho: f64) -> Result<Self, CorrelationError> {
        if rho.abs() >= 1.0 {
            return Err(CorrelationError::InvalidEntry {
                row: 0,
                col: 1,
                value: rho,
            });
        }
        let mut data = vec![0.0; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                data[i * dim + j] = rho.powi((i as i32 - j as i32).abs());
            }
        }
        Self::from_matrix(dim, &data)
    }

    /// Dimension of the correlation matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Transforms a vector of independent standard normals `z` into a vector
    /// of correlated standard normals `L z`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.dim()`.
    pub fn correlate(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.dim, "dimension mismatch in correlate");
        (0..self.dim)
            .map(|i| {
                self.chol[i * self.dim..i * self.dim + i + 1]
                    .iter()
                    .zip(z)
                    .map(|(&l, &zj)| l * zj)
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn standard_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn identity_is_a_passthrough() {
        let c = Correlation::identity(3);
        let z = vec![1.0, -2.0, 0.5];
        assert_eq!(c.correlate(&z), z);
        assert_eq!(c.dim(), 3);
    }

    #[test]
    fn from_matrix_validates_entries() {
        // Diagonal not 1.
        assert!(Correlation::from_matrix(2, &[2.0, 0.0, 0.0, 1.0]).is_err());
        // Out of range off-diagonal.
        assert!(Correlation::from_matrix(2, &[1.0, 1.5, 1.5, 1.0]).is_err());
        // Wrong size.
        assert!(matches!(
            Correlation::from_matrix(2, &[1.0, 0.0, 1.0]),
            Err(CorrelationError::Dimension { .. })
        ));
        // Not positive definite (rho = 1 duplicated columns beyond tolerance).
        let res = Correlation::from_matrix(
            3,
            &[
                1.0, 1.0, 0.0, //
                1.0, 1.0, 0.0, //
                0.0, 0.0, 1.0,
            ],
        );
        assert!(matches!(
            res,
            Err(CorrelationError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn exponential_structure_reproduces_sample_correlation() {
        let rho = 0.6;
        let c = Correlation::exponential(2, rho).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let mut sum_xy = 0.0;
        let mut sum_x2 = 0.0;
        let mut sum_y2 = 0.0;
        for _ in 0..n {
            let z = vec![standard_normal(&mut rng), standard_normal(&mut rng)];
            let v = c.correlate(&z);
            sum_xy += v[0] * v[1];
            sum_x2 += v[0] * v[0];
            sum_y2 += v[1] * v[1];
        }
        let r = sum_xy / (sum_x2.sqrt() * sum_y2.sqrt());
        assert!((r - rho).abs() < 0.02, "sample correlation {r}");
    }

    #[test]
    fn exponential_rejects_unit_rho() {
        assert!(Correlation::exponential(4, 1.0).is_err());
        assert!(Correlation::exponential(4, -1.0).is_err());
        assert!(Correlation::exponential(4, 0.99).is_ok());
    }

    #[test]
    fn error_display() {
        let e = CorrelationError::NotPositiveDefinite { row: 2 };
        assert!(e.to_string().contains("row 2"));
    }
}
