//! Process-variation samples (`ξ` vectors) and their generation.
//!
//! A [`ProcessSample`] holds one realisation of every statistical variable of
//! a circuit: the inter-die parameter deviations (in their physical units)
//! plus, for every transistor, four intra-die mismatch z-scores (`TOX`,
//! `VTH0`, `LD`, `WD`). The z-scores are kept unscaled because the mismatch
//! standard deviation depends on the device area, which is only known to the
//! circuit evaluator.
//!
//! Samples can be drawn directly from a RNG ([`ProcessSampler::sample`]) or
//! mapped from a point in the unit hypercube
//! ([`ProcessSampler::from_unit_point`]) so that Latin Hypercube Sampling and
//! other design-of-experiment generators can be used unchanged.

use crate::correlation::Correlation;
use crate::distributions::{standard_normal, standard_normal_inverse_cdf};
use crate::parameters::MISMATCH_COMPONENTS;
use crate::technology::Technology;
use rand::Rng;

/// One realisation of all statistical process variables of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessSample {
    /// Inter-die parameter deviations, one per technology parameter, in the
    /// physical units implied by the parameter's effect.
    pub inter: Vec<f64>,
    /// Per-device mismatch z-scores: `intra[d] = [z_tox, z_vth, z_ld, z_wd]`.
    pub intra: Vec<[f64; MISMATCH_COMPONENTS]>,
}

impl ProcessSample {
    /// The nominal (variation-free) sample: all deviations are zero.
    pub fn nominal(num_inter: usize, num_devices: usize) -> Self {
        Self {
            inter: vec![0.0; num_inter],
            intra: vec![[0.0; MISMATCH_COMPONENTS]; num_devices],
        }
    }

    /// Total number of scalar statistical variables in the sample.
    pub fn dimension(&self) -> usize {
        self.inter.len() + MISMATCH_COMPONENTS * self.intra.len()
    }

    /// Returns `true` when every deviation is exactly zero.
    pub fn is_nominal(&self) -> bool {
        self.inter.iter().all(|&v| v == 0.0)
            && self.intra.iter().all(|d| d.iter().all(|&v| v == 0.0))
    }

    /// Flattens the sample into a single vector (inter-die first, then the
    /// per-device mismatch z-scores). Useful for surrogate-model training.
    pub fn to_flat_vec(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.dimension());
        v.extend_from_slice(&self.inter);
        for d in &self.intra {
            v.extend_from_slice(d);
        }
        v
    }
}

/// Generator of [`ProcessSample`]s for a given technology and device count.
#[derive(Debug, Clone)]
pub struct ProcessSampler {
    tech: Technology,
    num_devices: usize,
    correlation: Correlation,
}

impl ProcessSampler {
    /// Creates a sampler with independent inter-die parameters.
    pub fn new(tech: Technology, num_devices: usize) -> Self {
        let dim = tech.num_inter_die();
        Self {
            tech,
            num_devices,
            correlation: Correlation::identity(dim),
        }
    }

    /// Creates a sampler with a correlation structure over the inter-die
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if the correlation dimension does not match the number of
    /// inter-die parameters of the technology.
    pub fn with_correlation(
        tech: Technology,
        num_devices: usize,
        correlation: Correlation,
    ) -> Self {
        assert_eq!(
            correlation.dim(),
            tech.num_inter_die(),
            "correlation dimension must match the number of inter-die parameters"
        );
        Self {
            tech,
            num_devices,
            correlation,
        }
    }

    /// The technology this sampler draws from.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Number of devices (transistors) in the circuit.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Total dimension of the statistical space
    /// (`num_inter_die + 4 * num_devices`).
    pub fn dimension(&self) -> usize {
        self.tech.num_variables(self.num_devices)
    }

    /// The nominal (all-zero) sample.
    pub fn nominal(&self) -> ProcessSample {
        ProcessSample::nominal(self.tech.num_inter_die(), self.num_devices)
    }

    /// Draws one sample using the supplied RNG (primitive Monte Carlo).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ProcessSample {
        let n_inter = self.tech.num_inter_die();
        let z: Vec<f64> = (0..n_inter).map(|_| standard_normal(rng)).collect();
        let zc = self.correlation.correlate(&z);
        let inter: Vec<f64> = zc
            .iter()
            .zip(&self.tech.inter_die)
            .map(|(z, p)| z * p.sigma)
            .collect();
        let intra: Vec<[f64; MISMATCH_COMPONENTS]> = (0..self.num_devices)
            .map(|_| {
                [
                    standard_normal(rng),
                    standard_normal(rng),
                    standard_normal(rng),
                    standard_normal(rng),
                ]
            })
            .collect();
        ProcessSample { inter, intra }
    }

    /// Maps a point `u` of the unit hypercube `[0,1)^d` to a process sample,
    /// where `d == self.dimension()`. Each coordinate is pushed through the
    /// standard normal inverse CDF; inter-die coordinates are then correlated
    /// and scaled by their sigmas.
    ///
    /// This is the hook used by Latin Hypercube Sampling.
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != self.dimension()`.
    pub fn from_unit_point(&self, u: &[f64]) -> ProcessSample {
        assert_eq!(u.len(), self.dimension(), "unit point has wrong dimension");
        let n_inter = self.tech.num_inter_die();
        let z: Vec<f64> = u[..n_inter]
            .iter()
            .map(|&ui| standard_normal_inverse_cdf(ui))
            .collect();
        let zc = self.correlation.correlate(&z);
        let inter: Vec<f64> = zc
            .iter()
            .zip(&self.tech.inter_die)
            .map(|(z, p)| z * p.sigma)
            .collect();
        let mut intra = Vec::with_capacity(self.num_devices);
        for d in 0..self.num_devices {
            let base = n_inter + d * MISMATCH_COMPONENTS;
            intra.push([
                standard_normal_inverse_cdf(u[base]),
                standard_normal_inverse_cdf(u[base + 1]),
                standard_normal_inverse_cdf(u[base + 2]),
                standard_normal_inverse_cdf(u[base + 3]),
            ]);
        }
        ProcessSample { inter, intra }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::{tech_035um, tech_90nm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_sample_is_all_zero() {
        let s = ProcessSample::nominal(20, 15);
        assert!(s.is_nominal());
        assert_eq!(s.dimension(), 80);
        assert_eq!(s.to_flat_vec().len(), 80);
    }

    #[test]
    fn sampler_dimensions_match_paper() {
        let s1 = ProcessSampler::new(tech_035um(), 15);
        assert_eq!(s1.dimension(), 80);
        let s2 = ProcessSampler::new(tech_90nm(), 19);
        assert_eq!(s2.dimension(), 123);
        assert_eq!(s2.num_devices(), 19);
    }

    #[test]
    fn samples_have_expected_shape_and_spread() {
        let tech = tech_035um();
        let expected_sigma = tech.inter_die[1].sigma; // VTH0Rn
        let sampler = ProcessSampler::new(tech, 15);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 4000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let s = sampler.sample(&mut rng);
            assert_eq!(s.inter.len(), 20);
            assert_eq!(s.intra.len(), 15);
            // Check the VTH0Rn inter-die parameter against its declared sigma.
            sum += s.inter[1];
            sum2 += s.inter[1] * s.inter[1];
        }
        let mean = sum / n as f64;
        let sigma = (sum2 / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 3e-3, "mean {mean}");
        assert!(
            (sigma - expected_sigma).abs() < 0.1 * expected_sigma,
            "sigma {sigma} vs declared {expected_sigma}"
        );
    }

    #[test]
    fn unit_point_mapping_center_is_nominal() {
        let sampler = ProcessSampler::new(tech_035um(), 15);
        let u = vec![0.5; sampler.dimension()];
        let s = sampler.from_unit_point(&u);
        for v in &s.inter {
            assert!(v.abs() < 1e-8);
        }
        for d in &s.intra {
            for v in d {
                assert!(v.abs() < 1e-8);
            }
        }
    }

    #[test]
    fn unit_point_extremes_map_to_tails() {
        let sampler = ProcessSampler::new(tech_035um(), 2);
        let mut u = vec![0.5; sampler.dimension()];
        u[1] = 0.999; // VTH0Rn high tail
        let s = sampler.from_unit_point(&u);
        assert!(s.inter[1] > 2.5 * 0.020, "tail value {}", s.inter[1]);
    }

    #[test]
    #[should_panic]
    fn unit_point_wrong_dimension_panics() {
        let sampler = ProcessSampler::new(tech_035um(), 15);
        let _ = sampler.from_unit_point(&[0.5; 3]);
    }

    #[test]
    fn correlated_sampler_requires_matching_dimension() {
        let tech = tech_035um();
        let corr = Correlation::exponential(tech.num_inter_die(), 0.5).unwrap();
        let sampler = ProcessSampler::with_correlation(tech, 15, corr);
        let mut rng = StdRng::seed_from_u64(3);
        let s = sampler.sample(&mut rng);
        assert_eq!(s.inter.len(), 20);
    }

    #[test]
    #[should_panic]
    fn correlated_sampler_dimension_mismatch_panics() {
        let tech = tech_035um();
        let corr = Correlation::identity(5);
        let _ = ProcessSampler::with_correlation(tech, 15, corr);
    }

    #[test]
    fn different_seeds_give_different_samples() {
        let sampler = ProcessSampler::new(tech_035um(), 15);
        let a = sampler.sample(&mut StdRng::seed_from_u64(1));
        let b = sampler.sample(&mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
        // Same seed reproduces.
        let c = sampler.sample(&mut StdRng::seed_from_u64(1));
        assert_eq!(a, c);
    }
}
