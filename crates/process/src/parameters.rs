//! Declarations of statistical process parameters.
//!
//! The MOHECO paper splits process variation into *inter-die* variables
//! (one value per die, shared by every device: oxide thickness shifts,
//! global threshold shifts, mobility, junction capacitances, …) and
//! *intra-die* variables (per-device mismatch on `TOX`, `VTH0`, `LD`, `WD`).
//! This module declares the parameter metadata; actual sampling lives in
//! [`crate::sample`].

/// How an inter-die parameter deviation maps onto the device compact model.
///
/// The effect tells the circuit evaluator which model-card quantity to shift
/// and for which device polarity. Relative effects are expressed as a
/// fractional change; absolute effects in SI units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterDieEffect {
    /// Absolute oxide-thickness shift for NMOS devices (metres).
    ToxN,
    /// Absolute oxide-thickness shift for PMOS devices (metres).
    ToxP,
    /// Absolute threshold-voltage shift for NMOS devices (volts).
    Vth0N,
    /// Absolute threshold-voltage shift for PMOS devices (volts).
    Vth0P,
    /// Relative mobility change for NMOS devices.
    MobilityN,
    /// Relative mobility change for PMOS devices.
    MobilityP,
    /// Absolute lateral-diffusion shift for NMOS devices (metres).
    LdN,
    /// Absolute lateral-diffusion shift for PMOS devices (metres).
    LdP,
    /// Absolute width-reduction shift for NMOS devices (metres).
    WdN,
    /// Absolute width-reduction shift for PMOS devices (metres).
    WdP,
    /// Absolute channel-length shift applied to both polarities (metres).
    DeltaL,
    /// Absolute channel-width shift applied to both polarities (metres).
    DeltaW,
    /// Relative junction-capacitance change for NMOS devices.
    CjN,
    /// Relative junction-capacitance change for PMOS devices.
    CjP,
    /// Relative sidewall junction-capacitance change for NMOS devices.
    CjswN,
    /// Relative sidewall junction-capacitance change for PMOS devices.
    CjswP,
    /// Relative channel-doping change for NMOS devices (maps to a threshold shift).
    DopingN,
    /// Relative channel-doping change for PMOS devices (maps to a threshold shift).
    DopingP,
    /// Relative diffusion-resistance change for NMOS devices (maps to a small mobility change).
    RdiffN,
    /// Relative diffusion-resistance change for PMOS devices (maps to a small mobility change).
    RdiffP,
}

/// One inter-die statistical parameter: a name, its standard deviation and
/// the model quantity it perturbs.
#[derive(Debug, Clone, PartialEq)]
pub struct InterDieParameter {
    /// Foundry-style parameter name (e.g. `"TOXRn"`).
    pub name: String,
    /// Standard deviation of the parameter, in the units implied by its effect.
    pub sigma: f64,
    /// Which model quantity the parameter perturbs.
    pub effect: InterDieEffect,
}

impl InterDieParameter {
    /// Creates a parameter declaration.
    pub fn new(name: impl Into<String>, sigma: f64, effect: InterDieEffect) -> Self {
        Self {
            name: name.into(),
            sigma,
            effect,
        }
    }
}

/// Index of an intra-die (mismatch) component for one device.
///
/// The paper uses exactly four mismatch variables per transistor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MismatchComponent {
    /// Oxide-thickness mismatch.
    Tox = 0,
    /// Threshold-voltage mismatch.
    Vth0 = 1,
    /// Lateral-diffusion (effective length) mismatch.
    Ld = 2,
    /// Width-reduction (effective width) mismatch.
    Wd = 3,
}

/// Number of intra-die mismatch components per transistor.
pub const MISMATCH_COMPONENTS: usize = 4;

/// Pelgrom-style mismatch model: the standard deviation of each per-device
/// component scales as `A / sqrt(W_eff * L_eff)` with the gate area expressed
/// in µm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MismatchModel {
    /// Threshold-voltage area coefficient `A_VT` (V · µm).
    pub a_vth: f64,
    /// Relative oxide-thickness area coefficient (µm).
    pub a_tox_rel: f64,
    /// Effective-length area coefficient (m · µm).
    pub a_ld: f64,
    /// Effective-width area coefficient (m · µm).
    pub a_wd: f64,
}

impl MismatchModel {
    /// Standard deviation of the threshold mismatch for a device with
    /// `area_um2` µm² of gate area (volts).
    pub fn sigma_vth(&self, area_um2: f64) -> f64 {
        self.a_vth / area_um2.max(1e-6).sqrt()
    }

    /// Standard deviation of the relative oxide-thickness mismatch.
    pub fn sigma_tox_rel(&self, area_um2: f64) -> f64 {
        self.a_tox_rel / area_um2.max(1e-6).sqrt()
    }

    /// Standard deviation of the lateral-diffusion mismatch (metres).
    pub fn sigma_ld(&self, area_um2: f64) -> f64 {
        self.a_ld / area_um2.max(1e-6).sqrt()
    }

    /// Standard deviation of the width-reduction mismatch (metres).
    pub fn sigma_wd(&self, area_um2: f64) -> f64 {
        self.a_wd / area_um2.max(1e-6).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_construction() {
        let p = InterDieParameter::new("TOXRn", 0.1e-9, InterDieEffect::ToxN);
        assert_eq!(p.name, "TOXRn");
        assert_eq!(p.effect, InterDieEffect::ToxN);
        assert!(p.sigma > 0.0);
    }

    #[test]
    fn mismatch_sigma_scales_with_inverse_sqrt_area() {
        let m = MismatchModel {
            a_vth: 9e-3,
            a_tox_rel: 1e-3,
            a_ld: 1e-9,
            a_wd: 1e-9,
        };
        let s1 = m.sigma_vth(1.0);
        let s4 = m.sigma_vth(4.0);
        assert!((s1 / s4 - 2.0).abs() < 1e-12);
        assert!(m.sigma_tox_rel(1.0) > m.sigma_tox_rel(100.0));
        assert!(m.sigma_ld(1.0) > 0.0 && m.sigma_wd(1.0) > 0.0);
    }

    #[test]
    fn tiny_area_does_not_blow_up() {
        let m = MismatchModel {
            a_vth: 9e-3,
            a_tox_rel: 1e-3,
            a_ld: 1e-9,
            a_wd: 1e-9,
        };
        assert!(m.sigma_vth(0.0).is_finite());
    }

    #[test]
    fn mismatch_component_indices() {
        assert_eq!(MismatchComponent::Tox as usize, 0);
        assert_eq!(MismatchComponent::Vth0 as usize, 1);
        assert_eq!(MismatchComponent::Ld as usize, 2);
        assert_eq!(MismatchComponent::Wd as usize, 3);
        assert_eq!(MISMATCH_COMPONENTS, 4);
    }
}
