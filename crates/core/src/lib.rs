//! `moheco` — the Memetic Ordinal-Optimization-based Hybrid Evolutionary
//! Constrained Optimization algorithm for analog yield optimization.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Liu, Fernández, Gielen, *DATE 2010*): a Monte-Carlo-based yield optimizer
//! that keeps the accuracy and generality of MC yield estimation while
//! spending roughly 7× fewer circuit simulations than a state-of-the-art
//! `AS + LHS` flow with a fixed per-candidate budget. The two key ideas:
//!
//! 1. **Two-stage yield estimation** ([`two_stage`]): within each generation,
//!    the simulation budget is distributed over the feasible candidates with
//!    the OCBA rule (stage 1, ranking only); candidates whose estimate
//!    exceeds 97 % are promoted to stage 2 and re-estimated with the maximum
//!    sample count.
//! 2. **Memetic search** ([`algorithm`]): Differential Evolution explores the
//!    sizing space; a short Nelder–Mead refinement of the best member fires
//!    only after five stagnant generations.
//!
//! The same [`algorithm::YieldOptimizer`] also implements the paper's
//! baselines (fixed-budget `AS + LHS`, and `OO + AS + LHS` without the
//! memetic operator) so that Tables 1–4 can be regenerated with a shared code
//! path.
//!
//! Every circuit simulation is dispatched through the evaluation engine of
//! the [`moheco_runtime`] crate (re-exported here as [`runtime`]): batches
//! run in parallel on a [`runtime::ParallelEngine`] with bit-identical
//! results to the serial engine, repeated evaluations are served from the
//! engine cache, and the engine instrumentation is surfaced in
//! [`RunResult::engine_stats`] and the per-generation [`Trace`]. Construct a
//! problem with [`YieldProblem::with_engine`] to choose the engine.
//!
//! # Example
//!
//! ```no_run
//! use moheco::{MohecoConfig, YieldOptimizer, YieldProblem};
//! use moheco_analog::FoldedCascode;
//! use moheco_sampling::SamplingPlan;
//! use rand::SeedableRng;
//!
//! let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
//! let optimizer = YieldOptimizer::new(MohecoConfig::fast());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let result = optimizer.run(&problem, &mut rng);
//! println!(
//!     "best yield {:.1}% after {} simulations",
//!     100.0 * result.reported_yield,
//!     result.total_simulations
//! );
//! ```

#![warn(missing_docs)]

pub mod algorithm;
pub mod benchmark;
pub mod candidate;
pub mod config;
pub mod prescreen;
pub mod problem;
pub mod stats;
pub mod trace;
pub mod two_stage;

pub use moheco_runtime as runtime;

pub use algorithm::{RunResult, YieldOptimizer};
pub use benchmark::{Benchmark, CircuitBench};
pub use candidate::{best_candidate_index, Candidate, Stage};
pub use config::{MohecoConfig, YieldStrategy};
pub use prescreen::{PrescreenConfig, PrescreenKind, PrescreenStats, Prescreener};
pub use problem::{FeasibilityReport, YieldProblem};
pub use stats::{table_row, RunSummary};
pub use trace::{GenerationRecord, Trace};
pub use two_stage::{
    estimate_fixed_budget, estimate_two_stage, estimate_two_stage_prescreened, AllocationRecord,
};
