//! Multi-run statistics used to fill the paper's tables.
//!
//! Every experiment in the paper reports best / worst / average / variance
//! over 10 independent optimization runs.

/// Summary statistics over a set of independent runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunSummary {
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
    /// Median value (midpoint of the two central values for even counts).
    /// The campaign layer's aggregate gate compares medians because they are
    /// robust to one outlier seed.
    pub median: f64,
    /// Population variance.
    pub variance: f64,
    /// Number of runs.
    pub runs: usize,
}

impl RunSummary {
    /// Computes the summary of a set of values.
    ///
    /// Returns the all-zero summary for an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mid = sorted.len() / 2;
        let median = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        };
        Self {
            min,
            max,
            mean,
            median,
            variance,
            runs: values.len(),
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Formats a deviation table row like Tables 1 and 3 of the paper
/// (best / worst / average / variance), interpreting "best" as the smallest
/// value (smallest deviation or smallest simulation count).
pub fn table_row(label: &str, summary: &RunSummary) -> String {
    format!(
        "{label:<28} {:>12.4} {:>12.4} {:>12.4} {:>12.3e}",
        summary.min, summary.max, summary.mean, summary.variance
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = RunSummary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(RunSummary::of(&[3.0, 1.0, 2.0]).median, 2.0);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert!((s.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.runs, 4);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = RunSummary::of(&[]);
        assert_eq!(s.runs, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn table_row_contains_label_and_values() {
        let s = RunSummary::of(&[0.1, 0.3]);
        let row = table_row("MOHECO", &s);
        assert!(row.contains("MOHECO"));
        assert!(row.contains("0.1"));
        assert!(row.contains("0.3"));
    }
}
