//! Surrogate prescreening of candidate generations.
//!
//! The two-stage OO scheme already concentrates Monte-Carlo samples on the
//! candidates whose *measured* estimates look promising — but every feasible
//! candidate still buys into the stage-1 OCBA round at `sim_ave` samples a
//! head. Prescreening closes that gap: an online surrogate
//! ([`moheco_surrogate::PrescreenModel`]) trained on the `(design,
//! estimated yield)` pairs the run has already paid for predicts each new
//! candidate's yield *before* any simulation is spent, and candidates
//! predicted far below the incumbent are demoted to a small probe budget
//! instead of a full OCBA seat.
//!
//! Guard rails, in order of importance:
//!
//! * the surrogate only ever *reduces* a candidate's stage-1 budget — the
//!   promotion threshold, stage-2 top-ups and the final report always use
//!   measured Monte-Carlo samples, never predictions;
//! * a periodic exploration override (every
//!   [`PrescreenConfig::explore_every`]-th generation) estimates the whole
//!   generation in full, so a mistrained model cannot permanently lock out a
//!   region of the design space;
//! * the model stays inactive until it has seen
//!   [`PrescreenConfig::min_observations`] measured pairs.

use crate::candidate::Candidate;
use moheco_surrogate::{PrescreenModel, RsbPrescreen};

/// Which prescreening surrogate a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrescreenKind {
    /// No prescreening: every feasible candidate gets a full OCBA seat
    /// (bit-identical to the pre-prescreen behaviour).
    #[default]
    Off,
    /// The online response-surface model ([`RsbPrescreen`]).
    Rsb,
}

impl PrescreenKind {
    /// Parses a `--prescreen` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "rsb" => Some(Self::Rsb),
            _ => None,
        }
    }

    /// The stable label used in results and file names.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Rsb => "rsb",
        }
    }
}

/// Configuration of the prescreening stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrescreenConfig {
    /// Which surrogate to use ([`PrescreenKind::Off`] disables the stage).
    pub kind: PrescreenKind,
    /// A candidate predicted below `incumbent - margin` loses its OCBA seat.
    pub margin: f64,
    /// Monte-Carlo samples a screened-out candidate still receives (its
    /// reduced `n0`). The default of 0 skips it entirely — a zero-sample
    /// estimate always loses the DE selection, so the parent survives.
    /// Non-zero probes keep a coarse measured estimate in play, at the cost
    /// that a lucky all-pass probe promotes the candidate straight into the
    /// expensive stage-2 top-up.
    pub probe_samples: usize,
    /// Measured pairs required before the surrogate becomes active.
    pub min_observations: usize,
    /// Refit cadence in generations (1 = refit every generation).
    pub refit_every: usize,
    /// Every `explore_every`-th generation bypasses the screen entirely.
    pub explore_every: usize,
    /// Seed of the surrogate's internal randomness (weight init).
    pub seed: u64,
}

impl Default for PrescreenConfig {
    fn default() -> Self {
        Self {
            kind: PrescreenKind::Off,
            margin: 0.05,
            probe_samples: 0,
            min_observations: 20,
            refit_every: 1,
            explore_every: 5,
            seed: 0,
        }
    }
}

impl PrescreenConfig {
    /// The default configuration for the given surrogate kind.
    pub fn of_kind(kind: PrescreenKind) -> Self {
        Self {
            kind,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a parameter is out of its sensible range.
    pub fn validate(&self) {
        assert!(
            self.margin.is_finite() && self.margin >= 0.0,
            "prescreen margin must be finite and non-negative"
        );
        if self.kind != PrescreenKind::Off {
            assert!(self.refit_every >= 1, "refit cadence must be >= 1");
            assert!(self.explore_every >= 2, "exploration cadence must be >= 2");
            assert!(
                self.min_observations >= 2,
                "surrogate needs at least two observations"
            );
        }
    }
}

/// Counters describing what the prescreen did during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrescreenStats {
    /// Feasible candidates the active surrogate looked at.
    pub considered: u64,
    /// Candidates demoted to the probe budget.
    pub screened_out: u64,
    /// Surrogate refits performed.
    pub refits: u64,
}

/// The per-run prescreening state: an online surrogate plus the bookkeeping
/// (generation counter, incumbent, counters) the policy needs.
pub struct Prescreener {
    model: Box<dyn PrescreenModel>,
    config: PrescreenConfig,
    generation: usize,
    incumbent: f64,
    stats: PrescreenStats,
}

impl std::fmt::Debug for Prescreener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prescreener")
            .field("model", &self.model.name())
            .field("generation", &self.generation)
            .field("incumbent", &self.incumbent)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Prescreener {
    /// Builds the prescreener for a configuration; `None` when the kind is
    /// [`PrescreenKind::Off`].
    pub fn from_config(config: &PrescreenConfig) -> Option<Self> {
        config.validate();
        let model: Box<dyn PrescreenModel> = match config.kind {
            PrescreenKind::Off => return None,
            PrescreenKind::Rsb => Box::new(
                RsbPrescreen::new(config.seed).with_min_observations(config.min_observations),
            ),
        };
        Some(Self {
            model,
            config: *config,
            generation: 0,
            incumbent: 0.0,
            stats: PrescreenStats::default(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &PrescreenConfig {
        &self.config
    }

    /// The prescreen counters accumulated so far.
    pub fn stats(&self) -> PrescreenStats {
        self.stats
    }

    /// Whether the current generation bypasses the screen (exploration
    /// override, or the surrogate is not trained yet).
    pub fn exploring(&self) -> bool {
        self.generation.is_multiple_of(self.config.explore_every) || !self.model.ready()
    }

    /// Verdict per entry of `feasible_idx`: `true` keeps the candidate's
    /// full OCBA seat, `false` demotes it to the probe budget.
    pub fn verdicts(&mut self, candidates: &[Candidate], feasible_idx: &[usize]) -> Vec<bool> {
        if self.exploring() {
            return vec![true; feasible_idx.len()];
        }
        let threshold = self.incumbent - self.config.margin;
        feasible_idx
            .iter()
            .map(|&i| {
                self.stats.considered += 1;
                let keep = match self.model.predict(&candidates[i].x) {
                    Some(pred) => pred >= threshold,
                    None => true,
                };
                if !keep {
                    self.stats.screened_out += 1;
                }
                keep
            })
            .collect()
    }

    /// Absorbs a fully estimated generation: records every measured pair,
    /// advances the incumbent and the generation counter, and refits the
    /// surrogate on its cadence. Call exactly once per generation, after
    /// [`Prescreener::verdicts`].
    pub fn absorb(&mut self, candidates: &[Candidate]) {
        for c in candidates {
            if c.feasible && c.estimate.samples > 0 {
                let y = c.estimate.value();
                self.model.observe(&c.x, y);
                if y > self.incumbent {
                    self.incumbent = y;
                }
            }
        }
        if self.generation.is_multiple_of(self.config.refit_every) {
            let before = self.model.refits();
            self.model.refit();
            self.stats.refits += (self.model.refits() - before) as u64;
        }
        self.generation += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_sampling::{AsDecision, YieldEstimate};

    fn candidate(x: Vec<f64>, passes: usize, samples: usize) -> Candidate {
        let mut c = Candidate::feasible(x, AsDecision::FullSampling);
        c.estimate = YieldEstimate::new(passes, samples);
        c
    }

    #[test]
    fn off_kind_builds_no_prescreener() {
        assert!(Prescreener::from_config(&PrescreenConfig::default()).is_none());
        assert_eq!(PrescreenKind::parse("off"), Some(PrescreenKind::Off));
        assert_eq!(PrescreenKind::parse("rsb"), Some(PrescreenKind::Rsb));
        assert_eq!(PrescreenKind::parse("mlp"), None);
        assert_eq!(PrescreenKind::Rsb.label(), "rsb");
    }

    #[test]
    fn untrained_model_keeps_every_candidate() {
        let cfg = PrescreenConfig::of_kind(PrescreenKind::Rsb);
        let mut p = Prescreener::from_config(&cfg).unwrap();
        let cands = vec![
            candidate(vec![0.1, 0.1], 5, 10),
            candidate(vec![0.9, 0.9], 9, 10),
        ];
        assert!(p.exploring());
        assert_eq!(p.verdicts(&cands, &[0, 1]), vec![true, true]);
        assert_eq!(p.stats().considered, 0);
    }

    #[test]
    fn trained_model_screens_predicted_poor_candidates() {
        let cfg = PrescreenConfig {
            kind: PrescreenKind::Rsb,
            min_observations: 20,
            margin: 0.15,
            explore_every: 1000,
            ..PrescreenConfig::default()
        };
        let mut p = Prescreener::from_config(&cfg).unwrap();
        // Teach the model a clean gradient: yield falls off with |x - 0.8|.
        for round in 0..4 {
            let gen: Vec<Candidate> = (0..12)
                .map(|i| {
                    let v = (i as f64 + (round % 2) as f64 * 0.5) / 12.0;
                    let y = (1.0 - (v - 0.8).abs()).clamp(0.0, 1.0);
                    candidate(vec![v, v], (y * 100.0).round() as usize, 100)
                })
                .collect();
            p.absorb(&gen);
        }
        // Generation counter is past 0 and the model is trained: screen on.
        assert!(!p.exploring());
        let trials = vec![
            candidate(vec![0.8, 0.8], 0, 0),   // predicted near the incumbent
            candidate(vec![0.05, 0.05], 0, 0), // predicted far below
        ];
        let verdicts = p.verdicts(&trials, &[0, 1]);
        assert!(verdicts[0], "good candidate keeps its seat");
        assert!(!verdicts[1], "poor candidate is demoted");
        assert_eq!(p.stats().considered, 2);
        assert_eq!(p.stats().screened_out, 1);
        assert!(p.stats().refits >= 1);
    }

    #[test]
    fn exploration_override_fires_on_cadence() {
        let cfg = PrescreenConfig {
            kind: PrescreenKind::Rsb,
            min_observations: 2,
            explore_every: 2,
            ..PrescreenConfig::default()
        };
        let mut p = Prescreener::from_config(&cfg).unwrap();
        let gen: Vec<Candidate> = (0..10)
            .map(|i| candidate(vec![i as f64 / 10.0], i, 10))
            .collect();
        // Generation 0 always explores; after absorbing it (generation -> 1)
        // the screen is active, and generation 2 explores again.
        assert!(p.exploring());
        p.absorb(&gen);
        assert!(!p.exploring());
        p.absorb(&gen);
        assert!(p.exploring());
    }

    #[test]
    #[should_panic(expected = "exploration cadence")]
    fn invalid_exploration_cadence_panics() {
        let cfg = PrescreenConfig {
            kind: PrescreenKind::Rsb,
            explore_every: 1,
            ..PrescreenConfig::default()
        };
        cfg.validate();
    }
}
