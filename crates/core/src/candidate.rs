//! Candidate solutions of the yield optimizer.

use moheco_sampling::{AsDecision, YieldEstimate};

/// Which yield-estimation stage a candidate currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage 1: ordinal-optimization budget; only the ranking needs to be right.
    One,
    /// Stage 2: the candidate exceeded the promotion threshold and is
    /// estimated with the maximum number of samples.
    Two,
}

/// One candidate sizing with its feasibility and yield information.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Design-variable vector.
    pub x: Vec<f64>,
    /// `true` when the nominal design meets every specification.
    pub feasible: bool,
    /// Aggregate nominal constraint violation (0 when feasible).
    pub violation: f64,
    /// Acceptance-sampling decision for this candidate.
    pub decision: AsDecision,
    /// Accumulated Monte-Carlo yield estimate.
    pub estimate: YieldEstimate,
    /// Current estimation stage.
    pub stage: Stage,
}

impl Candidate {
    /// Creates an infeasible candidate (yield fixed at zero, per step 7 of the
    /// paper's flow).
    pub fn infeasible(x: Vec<f64>, violation: f64) -> Self {
        Self {
            x,
            feasible: false,
            violation,
            decision: AsDecision::RejectWithoutSampling,
            estimate: YieldEstimate::default(),
            stage: Stage::One,
        }
    }

    /// Creates a feasible candidate awaiting yield estimation.
    pub fn feasible(x: Vec<f64>, decision: AsDecision) -> Self {
        Self {
            x,
            feasible: true,
            violation: 0.0,
            decision,
            estimate: YieldEstimate::default(),
            stage: Stage::One,
        }
    }

    /// The candidate's estimated yield (0 for infeasible candidates).
    pub fn yield_value(&self) -> f64 {
        if self.feasible {
            self.estimate.value()
        } else {
            0.0
        }
    }

    /// Selection rule of the algorithm (Deb's feasibility rules applied to
    /// yield maximisation): returns `true` when `self` should replace `other`
    /// in the one-to-one DE selection.
    ///
    /// Ties between feasible candidates go to `self` (DE's greedy
    /// replacement) — except when `self` carries no measured samples at all
    /// (e.g. it was vetoed by the surrogate prescreen): an unmeasured
    /// candidate must not displace a measured competitor on the
    /// `0.0 == 0.0` tie.
    pub fn beats(&self, other: &Candidate) -> bool {
        match (self.feasible, other.feasible) {
            (true, false) => true,
            (false, true) => false,
            (true, true) => {
                if self.estimate.samples == 0 && other.estimate.samples > 0 {
                    self.yield_value() > other.yield_value()
                } else {
                    self.yield_value() >= other.yield_value()
                }
            }
            (false, false) => self.violation <= other.violation,
        }
    }
}

/// Returns the index of the best candidate (highest yield among feasible
/// candidates, otherwise smallest violation), or `None` for an empty slice.
pub fn best_candidate_index(candidates: &[Candidate]) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let mut best = 0;
    for i in 1..candidates.len() {
        let a = &candidates[i];
        let b = &candidates[best];
        let a_wins = match (a.feasible, b.feasible) {
            (true, false) => true,
            (false, true) => false,
            (true, true) => a.yield_value() > b.yield_value(),
            (false, false) => a.violation < b.violation,
        };
        if a_wins {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feasible_with_yield(passes: usize, samples: usize) -> Candidate {
        let mut c = Candidate::feasible(vec![0.0], AsDecision::FullSampling);
        c.estimate = YieldEstimate::new(passes, samples);
        c
    }

    #[test]
    fn infeasible_candidates_report_zero_yield() {
        let c = Candidate::infeasible(vec![1.0], 2.5);
        assert_eq!(c.yield_value(), 0.0);
        assert!(!c.feasible);
        assert_eq!(c.violation, 2.5);
    }

    #[test]
    fn feasible_always_beats_infeasible() {
        let f = feasible_with_yield(1, 100); // terrible yield, but feasible
        let i = Candidate::infeasible(vec![0.0], 0.001);
        assert!(f.beats(&i));
        assert!(!i.beats(&f));
    }

    #[test]
    fn higher_yield_wins_between_feasible() {
        let a = feasible_with_yield(90, 100);
        let b = feasible_with_yield(80, 100);
        assert!(a.beats(&b));
        assert!(!b.beats(&a));
        // Ties are accepted (>=), matching DE's greedy replacement.
        assert!(a.beats(&a.clone()));
    }

    #[test]
    fn unmeasured_candidate_never_displaces_a_measured_one_on_a_tie() {
        // Both report 0.0 yield, but the parent paid for its estimate while
        // the trial was never sampled (prescreen veto): the parent survives.
        let measured_zero = feasible_with_yield(0, 14);
        let unmeasured = Candidate::feasible(vec![0.0], AsDecision::FullSampling);
        assert!(!unmeasured.beats(&measured_zero));
        assert!(measured_zero.beats(&unmeasured));
        // Two unmeasured candidates still tie in the trial's favour.
        assert!(unmeasured.beats(&unmeasured.clone()));
    }

    #[test]
    fn lower_violation_wins_between_infeasible() {
        let a = Candidate::infeasible(vec![0.0], 0.5);
        let b = Candidate::infeasible(vec![0.0], 1.5);
        assert!(a.beats(&b));
        assert!(!b.beats(&a));
    }

    #[test]
    fn best_candidate_selection() {
        let candidates = vec![
            Candidate::infeasible(vec![0.0], 0.01),
            feasible_with_yield(50, 100),
            feasible_with_yield(95, 100),
            Candidate::infeasible(vec![0.0], 5.0),
        ];
        assert_eq!(best_candidate_index(&candidates), Some(2));
        assert_eq!(best_candidate_index(&[]), None);
        let all_bad = vec![
            Candidate::infeasible(vec![0.0], 3.0),
            Candidate::infeasible(vec![0.0], 1.0),
        ];
        assert_eq!(best_candidate_index(&all_bad), Some(1));
    }
}
