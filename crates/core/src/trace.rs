//! Per-generation traces of a yield-optimization run.
//!
//! Traces serve two purposes in the reproduction: they provide the
//! per-population allocation data behind Fig. 3, and they supply the
//! `(design point, yield)` pairs used in §3.4 to train the response-surface
//! (neural-network) baseline.

/// Snapshot of one generation.
#[derive(Debug, Clone, Default)]
pub struct GenerationRecord {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best yield estimate in the population after this generation.
    pub best_yield: f64,
    /// Number of feasible candidates in the population.
    pub num_feasible: usize,
    /// Cumulative circuit simulations after this generation.
    pub simulations_so_far: u64,
    /// Cumulative engine cache hits after this generation — Monte-Carlo
    /// samples *and* nominal screens served without running a simulation
    /// (see `moheco-runtime`), so this is not an MC-only counter.
    pub cache_hits_so_far: u64,
    /// Monte-Carlo samples *served* to this generation's yield estimation.
    ///
    /// "Served" counts what the estimator consumed, whether the engine
    /// executed a fresh simulation or answered from its block cache — so a
    /// re-read sample range counts in full here. Executed-only accounting
    /// lives in [`Self::simulations_so_far`], which advances by at most (and
    /// usually less than) this amount per generation; the difference is the
    /// cache's contribution. Same width as every sibling counter (`u64`).
    pub simulations_this_generation: u64,
    /// `(design point, estimated yield, samples spent)` for every candidate
    /// evaluated this generation (trial candidates).
    pub candidates: Vec<(Vec<f64>, f64, usize)>,
}

/// The full trace of a run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// One record per generation.
    pub records: Vec<GenerationRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a generation record.
    pub fn push(&mut self, record: GenerationRecord) {
        self.records.push(record);
    }

    /// Number of recorded generations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no generations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All `(design point, yield)` pairs recorded up to and including
    /// generation `up_to` (inclusive), the training-set construction used by
    /// the §3.4 response-surface comparison.
    pub fn training_pairs(&self, up_to: usize) -> Vec<(Vec<f64>, f64)> {
        self.records
            .iter()
            .filter(|r| r.generation <= up_to)
            .flat_map(|r| {
                r.candidates
                    .iter()
                    .filter(|(_, _, samples)| *samples > 0)
                    .map(|(x, y, _)| (x.clone(), *y))
            })
            .collect()
    }

    /// The evaluated pairs of exactly one generation (the §3.4 test set).
    pub fn generation_pairs(&self, generation: usize) -> Vec<(Vec<f64>, f64)> {
        self.records
            .iter()
            .filter(|r| r.generation == generation)
            .flat_map(|r| {
                r.candidates
                    .iter()
                    .filter(|(_, _, samples)| *samples > 0)
                    .map(|(x, y, _)| (x.clone(), *y))
            })
            .collect()
    }

    /// Best-yield convergence history (one value per generation).
    pub fn best_yield_history(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.best_yield).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(generation: usize, best: f64, n: usize) -> GenerationRecord {
        GenerationRecord {
            generation,
            best_yield: best,
            num_feasible: n,
            simulations_so_far: (generation as u64 + 1) * 100,
            cache_hits_so_far: 10 * generation as u64,
            simulations_this_generation: 100,
            candidates: (0..n)
                .map(|i| (vec![i as f64], 0.5 + 0.1 * i as f64, 10 * (i + 1)))
                .collect(),
        }
    }

    #[test]
    fn push_and_len() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(record(0, 0.8, 2));
        t.push(record(1, 0.9, 3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.best_yield_history(), vec![0.8, 0.9]);
    }

    #[test]
    fn training_pairs_accumulate_up_to_generation() {
        let mut t = Trace::new();
        t.push(record(0, 0.8, 2));
        t.push(record(1, 0.9, 3));
        t.push(record(2, 0.95, 1));
        assert_eq!(t.training_pairs(0).len(), 2);
        assert_eq!(t.training_pairs(1).len(), 5);
        assert_eq!(t.training_pairs(2).len(), 6);
        assert_eq!(t.generation_pairs(1).len(), 3);
        assert!(t.generation_pairs(9).is_empty());
    }

    /// Pins the hits-vs-executed counting contract of
    /// [`GenerationRecord::simulations_this_generation`]: served samples
    /// (cache hits included) are what the per-generation counter records,
    /// while `simulations_so_far` moves only by executed simulations — a
    /// fully cached generation serves samples while executing none.
    #[test]
    fn served_vs_executed_distinction_is_representable() {
        let warm = GenerationRecord {
            generation: 1,
            best_yield: 0.9,
            num_feasible: 1,
            // No new simulations executed since generation 0...
            simulations_so_far: 100,
            cache_hits_so_far: 250,
            // ...yet the estimator was served a full 250-sample re-read.
            simulations_this_generation: 250,
            candidates: vec![(vec![0.0], 0.9, 250)],
        };
        assert!(warm.simulations_this_generation > warm.simulations_so_far - 100);
        // The counter is u64 like its siblings: sums over long campaigns
        // cannot quietly truncate on 32-bit targets.
        let total: u64 = [warm.clone(), warm]
            .iter()
            .map(|r| r.simulations_this_generation)
            .sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn unevaluated_candidates_are_excluded() {
        let mut r = record(0, 0.8, 2);
        r.candidates.push((vec![9.0], 0.0, 0)); // infeasible, never sampled
        let mut t = Trace::new();
        t.push(r);
        assert_eq!(t.training_pairs(0).len(), 2);
    }
}
