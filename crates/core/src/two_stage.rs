//! The two-stage yield-estimation flow (the first key idea of MOHECO).
//!
//! Stage 1 treats the feasible candidates of one generation as an
//! ordinal-optimization problem: a total budget `T = sim_ave × N_fea` is
//! distributed by the sequential OCBA loop so that promising candidates are
//! ranked reliably while clearly bad ones receive only a few samples.
//! Candidates whose stage-1 estimate exceeds the promotion threshold (97 %)
//! are moved to stage 2, where their estimate is topped up to the maximum
//! sample count `n_max` for an accurate final figure.
//!
//! Every simulation is dispatched through the problem's [`EvalEngine`]
//! (`moheco-runtime`): each OCBA round is one engine batch, the stage-2
//! promotions are one batch, and the fixed-budget baseline estimates its
//! whole generation as a single batch — so a parallel engine saturates its
//! workers and the engine cache makes re-estimates of already-sampled
//! designs free. No randomness is consumed here: sample streams are indexed
//! per design (see [`crate::problem::YieldProblem::outcomes`]).
//!
//! The fixed-budget baseline (`AS + LHS with N simulations per candidate`)
//! is implemented here too so all methods share the same plumbing.
//!
//! [`EvalEngine`]: moheco_runtime::EvalEngine

use crate::benchmark::Benchmark;
use crate::candidate::{Candidate, Stage};
use crate::config::MohecoConfig;
use crate::prescreen::Prescreener;
use crate::problem::YieldProblem;
use moheco_obs::Span;
use moheco_ocba::sequential::{run_sequential_batched, SequentialConfig};
use moheco_runtime::McRequest;
use moheco_sampling::{AsDecision, YieldEstimate};

/// Per-generation record of how the estimation budget was spent.
///
/// Counts are Monte-Carlo samples *served* per candidate; samples re-read
/// from the engine cache (e.g. when re-estimating a previously seen design)
/// are included here even though they cost no executed simulation — the
/// executed count lives in the engine's counter.
#[derive(Debug, Clone, Default)]
pub struct AllocationRecord {
    /// Samples served for each candidate of the generation (same order as
    /// the candidate slice passed in; infeasible candidates receive 0).
    pub samples: Vec<usize>,
    /// Estimated yields after the allocation (0 for infeasible candidates).
    pub yields: Vec<f64>,
    /// Indices of candidates promoted to stage 2 this generation.
    pub promoted: Vec<usize>,
    /// Total samples spent this generation.
    pub total: usize,
}

/// Estimates the yields of a generation of candidates with the two-stage
/// OO scheme, updating the candidates in place.
pub fn estimate_two_stage<B: Benchmark + ?Sized>(
    problem: &YieldProblem<B>,
    candidates: &mut [Candidate],
    config: &MohecoConfig,
) -> AllocationRecord {
    estimate_two_stage_prescreened(problem, candidates, config, None)
}

/// [`estimate_two_stage`] with an optional surrogate prescreen.
///
/// When a [`Prescreener`] is supplied (and active), feasible candidates it
/// predicts far below the incumbent lose their stage-1 OCBA seat: they
/// receive only the small probe budget of
/// [`crate::prescreen::PrescreenConfig::probe_samples`] Monte-Carlo samples,
/// and the OCBA ranking budget `sim_ave × N` is sized by the number of
/// *kept* candidates. Stage-2 promotion still considers every feasible
/// candidate on its measured estimate, so a screened-out candidate whose
/// probe samples all pass is immediately re-measured in full — predictions
/// gate budget, never the reported yields. With `None` (or an inactive
/// prescreener) the behaviour is bit-identical to [`estimate_two_stage`].
pub fn estimate_two_stage_prescreened<B: Benchmark + ?Sized>(
    problem: &YieldProblem<B>,
    candidates: &mut [Candidate],
    config: &MohecoConfig,
    mut prescreener: Option<&mut Prescreener>,
) -> AllocationRecord {
    let feasible_idx: Vec<usize> = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.feasible && c.decision != AsDecision::RejectWithoutSampling)
        .map(|(i, _)| i)
        .collect();
    let mut record = AllocationRecord {
        samples: vec![0; candidates.len()],
        yields: vec![0.0; candidates.len()],
        promoted: Vec::new(),
        total: 0,
    };

    // Partition the feasible candidates into OCBA-ranked and probe-only
    // sets. Without an (active) prescreener everything is ranked, which is
    // exactly the historical path.
    let (ranked_idx, probed_idx): (Vec<usize>, Vec<usize>) = match prescreener.as_deref_mut() {
        Some(p) => {
            let verdicts = p.verdicts(candidates, &feasible_idx);
            let mut ranked = Vec::new();
            let mut probed = Vec::new();
            for (&i, keep) in feasible_idx.iter().zip(&verdicts) {
                if *keep {
                    ranked.push(i);
                } else {
                    probed.push(i);
                }
            }
            (ranked, probed)
        }
        None => (feasible_idx.clone(), Vec::new()),
    };

    // Probe batch: screened-out candidates get their reduced budget in one
    // engine batch, so they still carry a (coarse) measured estimate into
    // the DE selection and the stage-2 promotion check below.
    if !probed_idx.is_empty() {
        let _probe_span = Span::enter(problem.tracer(), "prescreen_probe");
        let probe = prescreener
            .as_deref()
            .map(|p| p.config().probe_samples)
            .unwrap_or(0);
        let requests: Vec<(usize, McRequest)> = probed_idx
            .iter()
            .filter_map(|&i| {
                let start = candidates[i].estimate.samples;
                let take = probe.min(config.n_max.saturating_sub(start));
                (take > 0).then(|| (i, McRequest::new(candidates[i].x.clone(), start, take)))
            })
            .collect();
        if !requests.is_empty() {
            let outcomes = problem
                .outcomes_batch(&requests.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>());
            for ((i, _), out) in requests.iter().zip(&outcomes) {
                candidates[*i].estimate = candidates[*i]
                    .estimate
                    .merge(&YieldEstimate::from_sum(out.iter().sum(), out.len()));
                record.samples[*i] += out.len();
                record.total += out.len();
            }
        }
    }

    match ranked_idx.len() {
        0 => {}
        1 => {
            // A single ranked candidate: no ranking problem to solve, just
            // give it the average budget (clamped so prior samples plus this
            // allocation never exceed the n_max ceiling).
            let _span = Span::enter(problem.tracer(), "stage1/single");
            let i = ranked_idx[0];
            let start = candidates[i].estimate.samples;
            let take = config.sim_ave.min(config.n_max.saturating_sub(start));
            let outcomes = problem.outcomes(&candidates[i].x, start, take);
            candidates[i].estimate = candidates[i].estimate.merge(&YieldEstimate::from_sum(
                outcomes.iter().sum(),
                outcomes.len(),
            ));
            record.samples[i] = outcomes.len();
            record.total += outcomes.len();
        }
        _ => {
            // Sequential OCBA over the ranked subset; every round becomes
            // one engine batch. Per-design cursors track how many samples of
            // each design's stream have been consumed so far.
            let _stage1_span = Span::enter(problem.tracer(), "stage1");
            let total_budget = config.sim_ave * ranked_idx.len();
            let seq = SequentialConfig {
                n0: config.n0,
                delta: config.delta,
                total_budget,
                per_design_cap: Some(config.n_max),
            };
            let xs: Vec<Vec<f64>> = ranked_idx
                .iter()
                .map(|&i| candidates[i].x.clone())
                .collect();
            let prior: Vec<YieldEstimate> =
                ranked_idx.iter().map(|&i| candidates[i].estimate).collect();
            let mut cursors: Vec<usize> = prior.iter().map(|e| e.samples).collect();
            let outcome = run_sequential_batched(ranked_idx.len(), seq, |round| {
                // Each OCBA round is one engine batch and one span
                // occurrence: the per-round spans aggregate under
                // `.../stage1/ocba_round` in the phase breakdown.
                let _round_span = Span::enter(problem.tracer(), "ocba_round");
                // The sequential loop's internal cap only tracks samples of
                // *this call*; clamp each allocation against the design's
                // whole stream position so candidates entering with prior
                // samples never exceed n_max in total.
                let requests: Vec<McRequest> = round
                    .iter()
                    .map(|&(design, n)| {
                        let room = config.n_max.saturating_sub(cursors[design]);
                        let take = n.min(room);
                        let request = McRequest::new(xs[design].clone(), cursors[design], take);
                        cursors[design] += take;
                        request
                    })
                    .collect();
                problem.outcomes_batch(&requests)
            })
            .expect("at least two designs");
            // The sequential loop reports Welford means; reconstruct each
            // design's outcome sum from them. Binary estimators round the
            // product back to the exact integer pass count (undoing Welford
            // rounding noise, which keeps default runs bit-identical to the
            // pre-estimator behaviour); weighted estimators keep the raw
            // fractional sum of their likelihood-weighted contributions.
            let weighted = problem.estimator().weighted_outcomes();
            for (k, &i) in ranked_idx.iter().enumerate() {
                let stats = &outcome.stats[k];
                let product = stats.mean * stats.count as f64;
                let sum = if weighted { product } else { product.round() };
                // Merge onto any prior samples (whose stream indices the
                // cursors skipped), mirroring the single-feasible branch.
                candidates[i].estimate = prior[k].merge(&YieldEstimate::from_sum(sum, stats.count));
                record.samples[i] = outcome.spent[k];
                record.total += outcome.spent[k];
            }
        }
    }

    // Stage-2 promotion: top up promising candidates to n_max samples, as a
    // single engine batch across all promoted candidates.
    let mut topups: Vec<(usize, usize)> = Vec::new(); // (candidate index, missing)
    for &i in &feasible_idx {
        if candidates[i].estimate.value() >= config.stage2_threshold {
            let missing = config.n_max.saturating_sub(candidates[i].estimate.samples);
            if missing > 0 {
                topups.push((i, missing));
            }
            candidates[i].stage = Stage::Two;
            record.promoted.push(i);
        }
    }
    if !topups.is_empty() {
        let _promotion_span = Span::enter(problem.tracer(), "stage2_promotion");
        let requests: Vec<McRequest> = topups
            .iter()
            .map(|&(i, missing)| {
                McRequest::new(
                    candidates[i].x.clone(),
                    candidates[i].estimate.samples,
                    missing,
                )
            })
            .collect();
        let outcomes = problem.outcomes_batch(&requests);
        for (&(i, _), out) in topups.iter().zip(&outcomes) {
            candidates[i].estimate = candidates[i]
                .estimate
                .merge(&YieldEstimate::from_sum(out.iter().sum(), out.len()));
            record.samples[i] += out.len();
            record.total += out.len();
        }
    }

    for (i, c) in candidates.iter().enumerate() {
        record.yields[i] = c.yield_value();
    }
    // Feed the fully estimated generation back into the surrogate (and
    // advance its generation counter / refit cadence).
    if let Some(p) = prescreener {
        p.absorb(candidates);
    }
    record
}

/// Estimates the yields of a generation with the fixed-budget baseline
/// (`sims` samples per feasible candidate, reduced for deeply accepted
/// ones), dispatched to the engine as one batch.
pub fn estimate_fixed_budget<B: Benchmark + ?Sized>(
    problem: &YieldProblem<B>,
    candidates: &mut [Candidate],
    sims: usize,
) -> AllocationRecord {
    let mut record = AllocationRecord {
        samples: vec![0; candidates.len()],
        yields: vec![0.0; candidates.len()],
        promoted: Vec::new(),
        total: 0,
    };
    let _span = Span::enter(problem.tracer(), "fixed_budget");
    for (i, c) in candidates.iter_mut().enumerate() {
        if !c.feasible {
            continue;
        }
        let est = problem.estimate_yield(&c.x, sims, c.decision);
        c.estimate = est;
        c.stage = Stage::Two;
        record.samples[i] = est.samples;
        record.total += est.samples;
        record.yields[i] = c.yield_value();
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MohecoConfig;
    use moheco_analog::{FoldedCascode, Testbench};
    use moheco_sampling::SamplingPlan;

    fn make_candidates(
        problem: &YieldProblem<crate::CircuitBench<FoldedCascode>>,
    ) -> Vec<Candidate> {
        // Reference design (good), a starved variant (infeasible) and a
        // perturbed-but-feasible variant.
        let reference = problem.testbench().reference_design();
        let mut starved = reference.clone();
        starved[8] = 55.0;
        let mut warm = reference.clone();
        warm[8] = 180.0;
        [reference, starved, warm]
            .into_iter()
            .map(|x| {
                let rep = problem.feasibility(&x);
                if rep.is_feasible() {
                    Candidate::feasible(x, rep.decision)
                } else {
                    Candidate::infeasible(x, rep.violation)
                }
            })
            .collect()
    }

    #[test]
    fn two_stage_allocates_only_to_feasible_candidates() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let mut candidates = make_candidates(&problem);
        let config = MohecoConfig {
            n0: 6,
            sim_ave: 15,
            delta: 8,
            n_max: 60,
            ..MohecoConfig::fast()
        };
        let record = estimate_two_stage(&problem, &mut candidates, &config);
        // The infeasible candidate received no samples.
        for (c, &s) in candidates.iter().zip(&record.samples) {
            if !c.feasible {
                assert_eq!(s, 0);
                assert_eq!(c.yield_value(), 0.0);
            } else {
                assert!(s > 0, "feasible candidates must be sampled");
            }
        }
        assert_eq!(record.total, record.samples.iter().sum::<usize>());
        assert_eq!(record.yields.len(), candidates.len());
    }

    #[test]
    fn promotion_tops_up_to_n_max() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let mut candidates = make_candidates(&problem);
        let config = MohecoConfig {
            n0: 6,
            sim_ave: 15,
            delta: 8,
            n_max: 80,
            stage2_threshold: 0.5,
            ..MohecoConfig::fast()
        };
        let record = estimate_two_stage(&problem, &mut candidates, &config);
        assert!(
            !record.promoted.is_empty(),
            "the reference design should be promoted"
        );
        for &i in &record.promoted {
            assert_eq!(candidates[i].stage, Stage::Two);
            assert_eq!(candidates[i].estimate.samples, 80);
        }
    }

    #[test]
    fn single_feasible_candidate_gets_average_budget() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let reference = problem.testbench().reference_design();
        let mut starved = reference.clone();
        starved[8] = 55.0;
        let mut candidates: Vec<Candidate> = [reference, starved]
            .into_iter()
            .map(|x| {
                let rep = problem.feasibility(&x);
                if rep.is_feasible() {
                    Candidate::feasible(x, rep.decision)
                } else {
                    Candidate::infeasible(x, rep.violation)
                }
            })
            .collect();
        let config = MohecoConfig {
            sim_ave: 20,
            n0: 5,
            n_max: 50,
            stage2_threshold: 1.1, // disable promotion
            ..MohecoConfig::fast()
        };
        let record = estimate_two_stage(&problem, &mut candidates, &config);
        assert_eq!(record.samples[0], 20);
        assert_eq!(record.samples[1], 0);
    }

    #[test]
    fn fixed_budget_gives_every_feasible_candidate_the_same_samples() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let mut candidates = make_candidates(&problem);
        let record = estimate_fixed_budget(&problem, &mut candidates, 40);
        for (c, &s) in candidates.iter().zip(&record.samples) {
            if c.feasible && c.decision == AsDecision::FullSampling {
                assert_eq!(s, 40);
            } else if !c.feasible {
                assert_eq!(s, 0);
            }
        }
    }

    #[test]
    fn ocba_spends_more_on_better_candidates_on_average() {
        // This is the mechanism behind Fig. 3 of the paper.
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let reference = problem.testbench().reference_design();
        // Construct several feasible candidates of varying quality by pushing
        // the tail current towards the power limit (lower yield).
        let currents = [150.0, 160.0, 168.0, 172.0];
        let mut candidates: Vec<Candidate> = currents
            .iter()
            .map(|&i| {
                let mut x = reference.clone();
                x[8] = i;
                let rep = problem.feasibility(&x);
                if rep.is_feasible() {
                    Candidate::feasible(x, rep.decision)
                } else {
                    Candidate::infeasible(x, rep.violation)
                }
            })
            .collect();
        let config = MohecoConfig {
            n0: 10,
            sim_ave: 35,
            delta: 15,
            n_max: 200,
            stage2_threshold: 1.1,
            ..MohecoConfig::fast()
        };
        let record = estimate_two_stage(&problem, &mut candidates, &config);
        let feasible_total: usize = record.samples.iter().sum();
        assert!(feasible_total > 0);
        // Best-yield candidate should not be starved relative to the worst.
        let yields = &record.yields;
        let best = yields
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let worst_feasible = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.feasible)
            .min_by(|a, b| a.1.yield_value().partial_cmp(&b.1.yield_value()).unwrap())
            .unwrap()
            .0;
        assert!(
            record.samples[best] + config.delta >= record.samples[worst_feasible],
            "allocation {:?} yields {:?}",
            record.samples,
            yields
        );
    }

    #[test]
    fn accumulated_candidates_never_exceed_n_max() {
        // Candidates may enter with prior samples (their estimates merge and
        // their stream cursors continue); the per-design ceiling must hold
        // for the *total* sample count, not just this call's allocation.
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let mut candidates = make_candidates(&problem);
        let config = MohecoConfig {
            n0: 6,
            sim_ave: 15,
            delta: 8,
            n_max: 60,
            stage2_threshold: 1.1, // keep everything in stage 1
            ..MohecoConfig::fast()
        };
        for c in candidates.iter_mut() {
            if c.feasible {
                c.estimate = YieldEstimate::new(55, 55); // 5 samples of headroom
            }
        }
        let record = estimate_two_stage(&problem, &mut candidates, &config);
        for (c, &served) in candidates.iter().zip(&record.samples) {
            if c.feasible {
                assert!(
                    c.estimate.samples <= config.n_max,
                    "total {} exceeds n_max",
                    c.estimate.samples
                );
                assert!(served <= 5, "only the headroom may be allocated");
            }
        }
    }

    #[test]
    fn repeated_estimation_of_the_same_generation_is_cached() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let template = make_candidates(&problem);
        let config = MohecoConfig {
            n0: 6,
            sim_ave: 15,
            delta: 8,
            n_max: 60,
            stage2_threshold: 1.1,
            ..MohecoConfig::fast()
        };
        let mut first = template.clone();
        let rec1 = estimate_two_stage(&problem, &mut first, &config);
        let after_first = problem.simulations();
        // Re-estimating clones of the same candidates replays the same
        // sample streams: identical estimates, zero new simulations.
        let mut second = template.clone();
        let rec2 = estimate_two_stage(&problem, &mut second, &config);
        assert_eq!(rec1.samples, rec2.samples);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.estimate, b.estimate);
        }
        assert_eq!(problem.simulations(), after_first);
        assert!(problem.engine_stats().cache_hits > 0);
    }
}
