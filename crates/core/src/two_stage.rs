//! The two-stage yield-estimation flow (the first key idea of MOHECO).
//!
//! Stage 1 treats the feasible candidates of one generation as an
//! ordinal-optimization problem: a total budget `T = sim_ave × N_fea` is
//! distributed by the sequential OCBA loop so that promising candidates are
//! ranked reliably while clearly bad ones receive only a few samples.
//! Candidates whose stage-1 estimate exceeds the promotion threshold (97 %)
//! are moved to stage 2, where their estimate is topped up to the maximum
//! sample count `n_max` for an accurate final figure.
//!
//! The fixed-budget baseline (`AS + LHS with N simulations per candidate`)
//! is implemented here too so all methods share the same plumbing.

use crate::candidate::{Candidate, Stage};
use crate::config::MohecoConfig;
use crate::problem::YieldProblem;
use moheco_analog::Testbench;
use moheco_ocba::sequential::{run_sequential, SequentialConfig};
use moheco_sampling::{AsDecision, YieldEstimate};
use rand::Rng;

/// Per-generation record of how the estimation budget was spent.
#[derive(Debug, Clone, Default)]
pub struct AllocationRecord {
    /// Samples spent on each candidate of the generation (same order as the
    /// candidate slice passed in; infeasible candidates receive 0).
    pub samples: Vec<usize>,
    /// Estimated yields after the allocation (0 for infeasible candidates).
    pub yields: Vec<f64>,
    /// Indices of candidates promoted to stage 2 this generation.
    pub promoted: Vec<usize>,
    /// Total samples spent this generation.
    pub total: usize,
}

/// Estimates the yields of a generation of candidates with the two-stage
/// OO scheme, updating the candidates in place.
pub fn estimate_two_stage<T: Testbench, R: Rng + ?Sized>(
    problem: &YieldProblem<T>,
    candidates: &mut [Candidate],
    config: &MohecoConfig,
    rng: &mut R,
) -> AllocationRecord {
    let feasible_idx: Vec<usize> = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.feasible && c.decision != AsDecision::RejectWithoutSampling)
        .map(|(i, _)| i)
        .collect();
    let mut record = AllocationRecord {
        samples: vec![0; candidates.len()],
        yields: vec![0.0; candidates.len()],
        promoted: Vec::new(),
        total: 0,
    };

    match feasible_idx.len() {
        0 => {}
        1 => {
            // A single feasible candidate: no ranking problem to solve, just
            // give it the average budget.
            let i = feasible_idx[0];
            let outcomes = problem.simulate_outcomes(&candidates[i].x, config.sim_ave, rng);
            let passes = outcomes.iter().filter(|&&o| o > 0.5).count();
            candidates[i].estimate = YieldEstimate::new(passes, outcomes.len());
            record.samples[i] = outcomes.len();
            record.total += outcomes.len();
        }
        _ => {
            // Sequential OCBA over the feasible subset.
            let total_budget = config.sim_ave * feasible_idx.len();
            let seq = SequentialConfig {
                n0: config.n0,
                delta: config.delta,
                total_budget,
                per_design_cap: Some(config.n_max),
            };
            let xs: Vec<Vec<f64>> = feasible_idx
                .iter()
                .map(|&i| candidates[i].x.clone())
                .collect();
            let outcome = run_sequential(feasible_idx.len(), seq, |design, n| {
                problem.simulate_outcomes(&xs[design], n, rng)
            })
            .expect("at least two designs");
            for (k, &i) in feasible_idx.iter().enumerate() {
                let stats = &outcome.stats[k];
                let passes = (stats.mean * stats.count as f64).round() as usize;
                candidates[i].estimate = YieldEstimate::new(passes.min(stats.count), stats.count);
                record.samples[i] = outcome.spent[k];
                record.total += outcome.spent[k];
            }
        }
    }

    // Stage-2 promotion: top up promising candidates to n_max samples.
    for &i in &feasible_idx {
        if candidates[i].estimate.value() >= config.stage2_threshold {
            let missing = config.n_max.saturating_sub(candidates[i].estimate.samples);
            if missing > 0 {
                let outcomes = problem.simulate_outcomes(&candidates[i].x, missing, rng);
                let passes = outcomes.iter().filter(|&&o| o > 0.5).count();
                candidates[i].estimate = candidates[i]
                    .estimate
                    .merge(&YieldEstimate::new(passes, outcomes.len()));
                record.samples[i] += outcomes.len();
                record.total += outcomes.len();
            }
            candidates[i].stage = Stage::Two;
            record.promoted.push(i);
        }
    }

    for (i, c) in candidates.iter().enumerate() {
        record.yields[i] = c.yield_value();
    }
    record
}

/// Estimates the yields of a generation with the fixed-budget baseline
/// (`sims` samples per feasible candidate, reduced for deeply accepted ones).
pub fn estimate_fixed_budget<T: Testbench, R: Rng + ?Sized>(
    problem: &YieldProblem<T>,
    candidates: &mut [Candidate],
    sims: usize,
    rng: &mut R,
) -> AllocationRecord {
    let mut record = AllocationRecord {
        samples: vec![0; candidates.len()],
        yields: vec![0.0; candidates.len()],
        promoted: Vec::new(),
        total: 0,
    };
    for (i, c) in candidates.iter_mut().enumerate() {
        if !c.feasible {
            continue;
        }
        let est = problem.estimate_yield(&c.x, sims, c.decision, rng);
        c.estimate = est;
        c.stage = Stage::Two;
        record.samples[i] = est.samples;
        record.total += est.samples;
        record.yields[i] = c.yield_value();
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MohecoConfig;
    use moheco_analog::{FoldedCascode, Testbench};
    use moheco_sampling::SamplingPlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_candidates(problem: &YieldProblem<FoldedCascode>) -> Vec<Candidate> {
        // Reference design (good), a starved variant (infeasible) and a
        // perturbed-but-feasible variant.
        let reference = problem.testbench().reference_design();
        let mut starved = reference.clone();
        starved[8] = 55.0;
        let mut warm = reference.clone();
        warm[8] = 180.0;
        [reference, starved, warm]
            .into_iter()
            .map(|x| {
                let rep = problem.feasibility(&x);
                if rep.is_feasible() {
                    Candidate::feasible(x, rep.decision)
                } else {
                    Candidate::infeasible(x, rep.violation)
                }
            })
            .collect()
    }

    #[test]
    fn two_stage_allocates_only_to_feasible_candidates() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let mut candidates = make_candidates(&problem);
        let config = MohecoConfig {
            n0: 6,
            sim_ave: 15,
            delta: 8,
            n_max: 60,
            ..MohecoConfig::fast()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let record = estimate_two_stage(&problem, &mut candidates, &config, &mut rng);
        // The infeasible candidate received no samples.
        for (c, &s) in candidates.iter().zip(&record.samples) {
            if !c.feasible {
                assert_eq!(s, 0);
                assert_eq!(c.yield_value(), 0.0);
            } else {
                assert!(s > 0, "feasible candidates must be sampled");
            }
        }
        assert_eq!(record.total, record.samples.iter().sum::<usize>());
        assert_eq!(record.yields.len(), candidates.len());
    }

    #[test]
    fn promotion_tops_up_to_n_max() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let mut candidates = make_candidates(&problem);
        let config = MohecoConfig {
            n0: 6,
            sim_ave: 15,
            delta: 8,
            n_max: 80,
            stage2_threshold: 0.5,
            ..MohecoConfig::fast()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let record = estimate_two_stage(&problem, &mut candidates, &config, &mut rng);
        assert!(
            !record.promoted.is_empty(),
            "the reference design should be promoted"
        );
        for &i in &record.promoted {
            assert_eq!(candidates[i].stage, Stage::Two);
            assert_eq!(candidates[i].estimate.samples, 80);
        }
    }

    #[test]
    fn single_feasible_candidate_gets_average_budget() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let reference = problem.testbench().reference_design();
        let mut starved = reference.clone();
        starved[8] = 55.0;
        let mut candidates: Vec<Candidate> = [reference, starved]
            .into_iter()
            .map(|x| {
                let rep = problem.feasibility(&x);
                if rep.is_feasible() {
                    Candidate::feasible(x, rep.decision)
                } else {
                    Candidate::infeasible(x, rep.violation)
                }
            })
            .collect();
        let config = MohecoConfig {
            sim_ave: 20,
            n0: 5,
            n_max: 50,
            stage2_threshold: 1.1, // disable promotion
            ..MohecoConfig::fast()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let record = estimate_two_stage(&problem, &mut candidates, &config, &mut rng);
        assert_eq!(record.samples[0], 20);
        assert_eq!(record.samples[1], 0);
    }

    #[test]
    fn fixed_budget_gives_every_feasible_candidate_the_same_samples() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let mut candidates = make_candidates(&problem);
        let mut rng = StdRng::seed_from_u64(8);
        let record = estimate_fixed_budget(&problem, &mut candidates, 40, &mut rng);
        for (c, &s) in candidates.iter().zip(&record.samples) {
            if c.feasible && c.decision == AsDecision::FullSampling {
                assert_eq!(s, 40);
            } else if !c.feasible {
                assert_eq!(s, 0);
            }
        }
    }

    #[test]
    fn ocba_spends_more_on_better_candidates_on_average() {
        // This is the mechanism behind Fig. 3 of the paper.
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let reference = problem.testbench().reference_design();
        // Construct several feasible candidates of varying quality by pushing
        // the tail current towards the power limit (lower yield).
        let currents = [150.0, 160.0, 168.0, 172.0];
        let mut candidates: Vec<Candidate> = currents
            .iter()
            .map(|&i| {
                let mut x = reference.clone();
                x[8] = i;
                let rep = problem.feasibility(&x);
                if rep.is_feasible() {
                    Candidate::feasible(x, rep.decision)
                } else {
                    Candidate::infeasible(x, rep.violation)
                }
            })
            .collect();
        let config = MohecoConfig {
            n0: 10,
            sim_ave: 35,
            delta: 15,
            n_max: 200,
            stage2_threshold: 1.1,
            ..MohecoConfig::fast()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let record = estimate_two_stage(&problem, &mut candidates, &config, &mut rng);
        let feasible_total: usize = record.samples.iter().sum();
        assert!(feasible_total > 0);
        // Best-yield candidate should not be starved relative to the worst.
        let yields = &record.yields;
        let best = yields
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let worst_feasible = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.feasible)
            .min_by(|a, b| a.1.yield_value().partial_cmp(&b.1.yield_value()).unwrap())
            .unwrap()
            .0;
        assert!(
            record.samples[best] + config.delta >= record.samples[worst_feasible],
            "allocation {:?} yields {:?}",
            record.samples,
            yields
        );
    }
}
