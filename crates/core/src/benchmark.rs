//! The benchmark abstraction that generalizes yield optimization beyond the
//! two hard-coded circuits of the paper.
//!
//! A [`Benchmark`] is anything the optimizer can run on: it extends the
//! engine-facing [`SimulationModel`] (pass/fail Monte-Carlo outcomes plus
//! nominal margins) with the design-space description the search layer needs
//! (bounds, dimension, a reference design) and an optional closed-form
//! ground-truth yield. Two families implement it:
//!
//! * [`CircuitBench`] adapts any `moheco-analog` [`Testbench`] (a circuit +
//!   its statistical process model) — this is the paper's setting.
//! * The synthetic analytic benchmarks of the `moheco-scenarios` crate
//!   implement it directly, with [`Benchmark::true_yield`] returning the
//!   exact yield so estimator accuracy can be asserted in tests and CI.
//!
//! [`YieldProblem`](crate::YieldProblem) is generic over `B: Benchmark +
//! ?Sized`, so heterogeneous collections (the scenario registry) can use
//! `YieldProblem<dyn Benchmark>` while the monomorphic circuit paths keep
//! their static dispatch.

use moheco_analog::Testbench;
use moheco_process::ProcessSampler;
use moheco_runtime::SimulationModel;

/// A yield-optimization benchmark: an engine-dispatchable simulation model
/// plus its design-space description.
pub trait Benchmark: SimulationModel {
    /// Short identifier of the benchmark (unique within a registry).
    fn name(&self) -> &str;

    /// Number of design variables.
    fn dimension(&self) -> usize;

    /// Box bounds of the design space, in design-variable order.
    fn bounds(&self) -> Vec<(f64, f64)>;

    /// A reference design known to be feasible at the nominal statistical
    /// point; used as a sanity anchor by tests and examples.
    fn reference_design(&self) -> Vec<f64>;

    /// The exact yield of design `x`, when the benchmark admits a closed
    /// form (synthetic analytic benchmarks). Circuits return `None`.
    fn true_yield(&self, _x: &[f64]) -> Option<f64> {
        None
    }

    /// View of the benchmark as the engine's simulation-model interface.
    ///
    /// Implementations are always `fn as_model(&self) -> &dyn SimulationModel
    /// { self }`; the method exists because generic code over `B: Benchmark +
    /// ?Sized` cannot coerce `&B` to `&dyn SimulationModel` itself.
    fn as_model(&self) -> &dyn SimulationModel;
}

/// Adapter exposing a circuit [`Testbench`] + matched [`ProcessSampler`] pair
/// as a [`Benchmark`].
///
/// The statistical space is the testbench technology's unit hypercube: a
/// Monte-Carlo point `u` is mapped through the sampler to a process sample
/// `ξ`, the circuit is evaluated at `(x, ξ)` and the outcome is the pass/fail
/// indicator of the specification set.
pub struct CircuitBench<T> {
    testbench: T,
    sampler: ProcessSampler,
}

impl<T: Testbench> CircuitBench<T> {
    /// Wraps a testbench, deriving the process sampler from its technology
    /// and device count.
    pub fn new(testbench: T) -> Self {
        let sampler = ProcessSampler::new(testbench.technology().clone(), testbench.num_devices());
        Self { testbench, sampler }
    }

    /// The underlying testbench.
    pub fn testbench(&self) -> &T {
        &self.testbench
    }

    /// The process sampler matched to the testbench.
    pub fn sampler(&self) -> &ProcessSampler {
        &self.sampler
    }
}

impl<T: Testbench> SimulationModel for CircuitBench<T> {
    fn unit_dimension(&self) -> usize {
        self.sampler.dimension()
    }

    fn simulate_point(&self, x: &[f64], u: &[f64]) -> f64 {
        let xi = self.sampler.from_unit_point(u);
        let perf = self.testbench.evaluate(x, &xi);
        if self.testbench.specs().all_met(&perf) {
            1.0
        } else {
            0.0
        }
    }

    fn simulate_block(&self, x: &[f64], us: &[Vec<f64>], out: &mut [f64]) {
        assert_eq!(us.len(), out.len(), "outcome buffer must match the block");
        let xis: Vec<_> = us.iter().map(|u| self.sampler.from_unit_point(u)).collect();
        let perfs = self.testbench.evaluate_block(x, &xis);
        for (o, perf) in out.iter_mut().zip(&perfs) {
            *o = if self.testbench.specs().all_met(perf) {
                1.0
            } else {
                0.0
            };
        }
    }

    fn nominal(&self, x: &[f64]) -> Vec<f64> {
        self.testbench.nominal_margins(x)
    }
}

impl<T: Testbench> Benchmark for CircuitBench<T> {
    fn name(&self) -> &str {
        self.testbench.name()
    }

    fn dimension(&self) -> usize {
        self.testbench.dimension()
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.testbench.bounds()
    }

    fn reference_design(&self) -> Vec<f64> {
        self.testbench.reference_design()
    }

    fn as_model(&self) -> &dyn SimulationModel {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_analog::FoldedCascode;
    use std::sync::Arc;

    #[test]
    fn circuit_bench_mirrors_its_testbench() {
        let bench = CircuitBench::new(FoldedCascode::new());
        let tb = FoldedCascode::new();
        assert_eq!(Benchmark::name(&bench), tb.name());
        assert_eq!(Benchmark::dimension(&bench), tb.dimension());
        assert_eq!(Benchmark::bounds(&bench), tb.bounds());
        assert_eq!(bench.reference_design(), tb.reference_design());
        assert_eq!(bench.unit_dimension(), 80);
        assert!(bench.true_yield(&tb.reference_design()).is_none());
    }

    #[test]
    fn nominal_point_passes_for_the_reference_design() {
        let bench = CircuitBench::new(FoldedCascode::new());
        let x = bench.reference_design();
        // The exact centre of the unit hypercube maps to the nominal sample.
        let u = vec![0.5; bench.unit_dimension()];
        assert_eq!(bench.simulate_point(&x, &u), 1.0);
        assert!(bench.nominal(&x).iter().all(|&m| m >= 0.0));
    }

    #[test]
    fn works_behind_dyn_dispatch() {
        let bench: Arc<dyn Benchmark> = Arc::new(CircuitBench::new(FoldedCascode::new()));
        assert_eq!(bench.dimension(), 10);
        let x = bench.reference_design();
        assert_eq!(bench.as_model().nominal(&x).len(), 6); // 5 specs + saturation
    }
}
