//! The MOHECO algorithm (Fig. 4 of the paper) and its baselines.
//!
//! One [`YieldOptimizer`] implements all compared methods; the
//! [`MohecoConfig`] selects the variant:
//!
//! * **MOHECO** — two-stage OO estimation + memetic DE/NM search
//!   ([`MohecoConfig::paper`]).
//! * **OO + AS + LHS** — two-stage OO estimation, no memetic operator
//!   ([`MohecoConfig::as_oo_without_memetic`]).
//! * **AS + LHS with N simulations** — fixed per-candidate budget, no memetic
//!   operator ([`MohecoConfig::as_fixed_budget`]).
//!
//! All variants share the DE engine, the selection-based constraint handling,
//! the acceptance-sampling screen and the LHS sampling plan, exactly as in the
//! paper's experimental setup.

use crate::benchmark::Benchmark;
use crate::candidate::{best_candidate_index, Candidate};
use crate::config::{MohecoConfig, YieldStrategy};
use crate::prescreen::{PrescreenStats, Prescreener};
use crate::problem::YieldProblem;
use crate::trace::{GenerationRecord, Trace};
use crate::two_stage::{estimate_fixed_budget, estimate_two_stage_prescreened, AllocationRecord};
use moheco_obs::{PhaseBreakdown, Span};
use moheco_optim::de::{de_crossover, de_mutant, DeConfig, DeStrategy};
use moheco_optim::memetic::StagnationTracker;
use moheco_optim::nelder_mead::{nelder_mead, NelderMeadConfig};
use moheco_optim::population::{Individual, Population};
use moheco_optim::problem::{random_point, Evaluation};
use moheco_runtime::EngineStatsSnapshot;
use moheco_sampling::{EstimatedYield, YieldEstimate};
use rand::Rng;

/// Result of one yield-optimization run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The best sizing found.
    pub best_x: Vec<f64>,
    /// The reported yield of the best sizing (stage-2 / `n_max`-sample estimate).
    pub reported_yield: f64,
    /// The best sizing's final estimate under the problem's configured
    /// variance-reduction estimator: point estimate plus standard error /
    /// CI half-width. Empty (zero samples) when no feasible design was
    /// found. `best_report.value` equals [`Self::reported_yield`].
    pub best_report: EstimatedYield,
    /// Total number of circuit simulations consumed by the run.
    pub total_simulations: u64,
    /// Number of generations executed.
    pub generations: usize,
    /// Number of times the Nelder–Mead local search was triggered.
    pub local_searches: usize,
    /// Per-generation trace.
    pub trace: Trace,
    /// Evaluation-engine instrumentation for the run (simulations run,
    /// cache hits, batch sizes, busy time).
    pub engine_stats: EngineStatsSnapshot,
    /// Surrogate-prescreen counters (all zero when prescreening is off).
    pub prescreen_stats: PrescreenStats,
    /// Per-phase budget attribution for the run, aggregated from the
    /// problem's tracer. Empty when tracing is disabled (the default); with
    /// an aggregating or collecting tracer attached via
    /// [`YieldProblem::with_tracer`](crate::problem::YieldProblem::with_tracer),
    /// the per-phase *self* simulation counts of a fresh-engine run sum to
    /// [`Self::total_simulations`].
    pub phase_breakdown: PhaseBreakdown,
}

impl RunResult {
    /// Best-yield history over the generations.
    pub fn history(&self) -> Vec<f64> {
        self.trace.best_yield_history()
    }
}

/// The configurable yield optimizer.
#[derive(Debug, Clone)]
pub struct YieldOptimizer {
    config: MohecoConfig,
}

impl YieldOptimizer {
    /// Creates an optimizer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`MohecoConfig::validate`]).
    pub fn new(config: MohecoConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MohecoConfig {
        &self.config
    }

    /// Runs the optimizer on `problem`.
    ///
    /// The driving `rng` is consumed only by the search operators (initial
    /// population, DE mutation/crossover); all Monte-Carlo sampling routes
    /// through the problem's evaluation engine, whose per-design sample
    /// streams are deterministic in the engine seed. A run is therefore
    /// reproducible from `(engine seed, rng seed)` and bit-identical between
    /// serial and parallel engines.
    pub fn run<B: Benchmark + ?Sized, R: Rng + ?Sized>(
        &self,
        problem: &YieldProblem<B>,
        rng: &mut R,
    ) -> RunResult {
        self.run_from(problem, &[], rng)
    }

    /// [`Self::run`] with a warm start: up to `population_size` seed designs
    /// (clamped to the bounds) fill the first population slots, the rest is
    /// random.
    ///
    /// This models the paper's overall flow, where yield optimization starts
    /// from a nominally sized design rather than from scratch — without a
    /// warm start, circuits with severe specifications (example 2) can spend
    /// the whole budget of a short run just finding the feasible region.
    pub fn run_from<B: Benchmark + ?Sized, R: Rng + ?Sized>(
        &self,
        problem: &YieldProblem<B>,
        warm_starts: &[Vec<f64>],
        rng: &mut R,
    ) -> RunResult {
        let cfg = &self.config;
        let bounds = problem.bounds();
        let sims_at_start = problem.simulations();
        let hits_at_start = problem.engine_stats().cache_hits;
        // Everything below runs under the "optimize" phase; harnesses may
        // wrap this call in an outer span of their own (e.g. "run").
        let tracer = problem.tracer().clone();
        let run_span = Span::enter(&tracer, "optimize");

        // Step 0: initial population — warm-start seeds first, random fill —
        // screened for feasibility as one engine batch.
        let initial_xs: Vec<Vec<f64>> = warm_starts
            .iter()
            .take(cfg.population_size)
            .map(|x| {
                assert_eq!(x.len(), bounds.len(), "warm-start dimension mismatch");
                x.iter()
                    .zip(&bounds)
                    .map(|(&v, &(lo, hi))| v.clamp(lo, hi))
                    .collect()
            })
            .chain(
                (warm_starts.len().min(cfg.population_size)..cfg.population_size)
                    .map(|_| random_point(&bounds, rng)),
            )
            .collect();
        let mut population = self.screen_batch(problem, initial_xs);
        // The surrogate prescreen is per-run state: it accumulates the
        // (design, estimated yield) pairs of every generation below. `None`
        // when prescreening is off (the default).
        let mut prescreener = Prescreener::from_config(&cfg.prescreen);
        let init_alloc = self.estimate_generation(problem, &mut population, prescreener.as_mut());

        let mut trace = Trace::new();
        let mut best = population[best_candidate_index(&population).expect("non-empty")].clone();
        trace.push(self.record(
            0,
            &population,
            &init_alloc,
            problem,
            sims_at_start,
            hits_at_start,
        ));

        let mut memetic_tracker = StagnationTracker::new(cfg.memetic_trigger);
        let mut stop_stagnation = 0usize;
        let mut generations = 1usize;
        let mut local_searches = 0usize;

        for gen in 1..cfg.max_generations {
            generations = gen + 1;
            // Steps 1-3: DE mutation + crossover + feasibility screen.
            let view = candidate_population(&population);
            let de_cfg = DeConfig {
                population_size: cfg.population_size,
                f: cfg.de_f,
                cr: cfg.de_cr,
                strategy: DeStrategy::Best1,
                ..DeConfig::default()
            };
            let trial_xs: Vec<Vec<f64>> = (0..population.len())
                .map(|i| {
                    let mutant = de_mutant(&view, i, &de_cfg, &bounds, rng);
                    de_crossover(&population[i].x, &mutant, cfg.de_cr, rng)
                })
                .collect();
            let mut trials = self.screen_batch(problem, trial_xs);

            // Steps 4-7: yield estimation of the trial candidates.
            let alloc = self.estimate_generation(problem, &mut trials, prescreener.as_mut());

            // Step 8: one-to-one selection.
            for (parent, trial) in population.iter_mut().zip(trials) {
                if trial.beats(parent) {
                    *parent = trial;
                }
            }

            // Track the best candidate.
            let gen_best =
                population[best_candidate_index(&population).expect("non-empty")].clone();
            let improved = gen_best.beats(&best)
                && (gen_best.yield_value() > best.yield_value() + 1e-12
                    || (!best.feasible && gen_best.feasible));
            if improved {
                best = gen_best.clone();
                stop_stagnation = 0;
            } else {
                stop_stagnation += 1;
            }

            // Steps 9-10: adaptive memetic local search on the best member.
            let trigger_value = if gen_best.feasible {
                -gen_best.yield_value()
            } else {
                f64::INFINITY
            };
            if cfg.memetic_enabled && memetic_tracker.update(trigger_value) && gen_best.feasible {
                local_searches += 1;
                let refined = self.local_search(problem, &gen_best, &bounds);
                if let Some(refined) = refined {
                    let idx = best_candidate_index(&population).expect("non-empty");
                    if refined.beats(&population[idx]) {
                        population[idx] = refined.clone();
                    }
                    if refined.beats(&best) && refined.yield_value() > best.yield_value() {
                        best = refined;
                        stop_stagnation = 0;
                    }
                }
            }

            trace.push(self.record(
                gen,
                &population,
                &alloc,
                problem,
                sims_at_start,
                hits_at_start,
            ));

            // Step 11: stopping criteria.
            if best.feasible && best.yield_value() >= cfg.target_yield {
                break;
            }
            if stop_stagnation >= cfg.stop_stagnation {
                break;
            }
        }

        // Final report: make sure the best candidate carries an n_max-sample
        // estimate (it may still be a stage-1 estimate for the fixed variants).
        let report_span = Span::enter(&tracer, "final_report");
        if best.feasible && best.estimate.samples < cfg.n_max {
            let missing = cfg.n_max - best.estimate.samples;
            let outcomes = problem.outcomes(&best.x, best.estimate.samples, missing);
            best.estimate = best.estimate.merge(&YieldEstimate::from_sum(
                outcomes.iter().sum(),
                outcomes.len(),
            ));
        }
        // Uncertainty of the final estimate under the configured estimator;
        // the samples were all fetched above, so this is pure cache traffic.
        let best_report = if best.feasible {
            problem.report_first(&best.x, best.estimate.samples)
        } else {
            EstimatedYield::empty(problem.estimator())
        };
        drop(report_span);
        drop(run_span);

        RunResult {
            best_x: best.x.clone(),
            reported_yield: best.yield_value(),
            best_report,
            total_simulations: problem.simulations() - sims_at_start,
            generations,
            local_searches,
            trace,
            engine_stats: problem.engine_stats(),
            prescreen_stats: prescreener.map(|p| p.stats()).unwrap_or_default(),
            phase_breakdown: tracer.breakdown(),
        }
    }

    /// Nominal feasibility screen of a whole generation (steps 3 and 7 of
    /// the flow), dispatched to the engine as one batch.
    fn screen_batch<B: Benchmark + ?Sized>(
        &self,
        problem: &YieldProblem<B>,
        xs: Vec<Vec<f64>>,
    ) -> Vec<Candidate> {
        let _span = Span::enter(problem.tracer(), "screening");
        let reports = problem.feasibility_batch(&xs);
        xs.into_iter()
            .zip(reports)
            .map(|(x, report)| {
                if report.is_feasible() {
                    Candidate::feasible(x, report.decision)
                } else {
                    Candidate::infeasible(x, report.violation)
                }
            })
            .collect()
    }

    /// Steps 4-7: estimate the yields of one generation of candidates.
    fn estimate_generation<B: Benchmark + ?Sized>(
        &self,
        problem: &YieldProblem<B>,
        candidates: &mut [Candidate],
        prescreener: Option<&mut Prescreener>,
    ) -> AllocationRecord {
        let _span = Span::enter(problem.tracer(), "estimation");
        match self.config.strategy {
            YieldStrategy::TwoStageOo => {
                estimate_two_stage_prescreened(problem, candidates, &self.config, prescreener)
            }
            YieldStrategy::FixedBudget { sims_per_candidate } => {
                estimate_fixed_budget(problem, candidates, sims_per_candidate)
            }
        }
    }

    /// Step 10: Nelder–Mead refinement of the best member.
    ///
    /// Each probe point's estimate reads the first `n_max` samples of that
    /// design's stream, so re-probing a previously visited point — which
    /// Nelder–Mead does constantly while shrinking its simplex — is served
    /// entirely from the engine cache.
    fn local_search<B: Benchmark + ?Sized>(
        &self,
        problem: &YieldProblem<B>,
        start: &Candidate,
        bounds: &[(f64, f64)],
    ) -> Option<Candidate> {
        let _span = Span::enter(problem.tracer(), "nm_refine");
        let cfg = &self.config;
        let nm_cfg = NelderMeadConfig {
            max_iterations: cfg.nm_iterations,
            ..NelderMeadConfig::memetic_default()
        };
        let objective = |x: &[f64]| {
            let report = problem.feasibility(x);
            if !report.is_feasible() {
                return 1e6 + report.violation;
            }
            let est = problem.estimate_yield(x, cfg.n_max, report.decision);
            -est.value()
        };
        let result = nelder_mead(objective, &start.x, bounds, &nm_cfg);
        // Re-screen and re-estimate the refined point so the candidate carries
        // consistent data (both served from the cache).
        let report = problem.feasibility(&result.x);
        if !report.is_feasible() {
            return None;
        }
        let est = problem.estimate_yield(&result.x, cfg.n_max, report.decision);
        let mut refined = Candidate::feasible(result.x, report.decision);
        refined.estimate = est;
        refined.stage = crate::candidate::Stage::Two;
        Some(refined)
    }

    fn record<B: Benchmark + ?Sized>(
        &self,
        generation: usize,
        population: &[Candidate],
        alloc: &AllocationRecord,
        problem: &YieldProblem<B>,
        sims_at_start: u64,
        hits_at_start: u64,
    ) -> GenerationRecord {
        let best_idx = best_candidate_index(population).expect("non-empty");
        GenerationRecord {
            generation,
            best_yield: population[best_idx].yield_value(),
            num_feasible: population.iter().filter(|c| c.feasible).count(),
            simulations_so_far: problem.simulations() - sims_at_start,
            cache_hits_so_far: problem.engine_stats().cache_hits - hits_at_start,
            simulations_this_generation: alloc.total as u64,
            candidates: population
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    (
                        c.x.clone(),
                        c.yield_value(),
                        alloc.samples.get(i).copied().unwrap_or(0),
                    )
                })
                .collect(),
        }
    }
}

/// Builds an `moheco-optim` population view of the candidates so the DE
/// operators (and their best-member selection) can be reused unchanged.
fn candidate_population(candidates: &[Candidate]) -> Population {
    candidates
        .iter()
        .map(|c| {
            let eval = if c.feasible {
                Evaluation::feasible(-c.yield_value())
            } else {
                Evaluation::new(f64::INFINITY, c.violation.max(1e-12))
            };
            Individual::new(c.x.clone(), eval)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_analog::{FoldedCascode, Testbench};
    use moheco_sampling::SamplingPlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_config() -> MohecoConfig {
        MohecoConfig {
            population_size: 8,
            n0: 4,
            sim_ave: 10,
            delta: 6,
            n_max: 40,
            max_generations: 6,
            stop_stagnation: 5,
            nm_iterations: 3,
            ..MohecoConfig::fast()
        }
    }

    #[test]
    fn moheco_run_produces_a_feasible_design_with_decent_yield() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let optimizer = YieldOptimizer::new(tiny_config());
        let mut rng = StdRng::seed_from_u64(1);
        let result = optimizer.run(&problem, &mut rng);
        assert!(result.total_simulations > 0);
        assert_eq!(result.total_simulations, problem.simulations());
        assert!(result.generations >= 1 && result.generations <= 6);
        assert!(!result.trace.is_empty());
        assert!(result.reported_yield >= 0.0 && result.reported_yield <= 1.0);
        assert_eq!(result.best_x.len(), problem.dimension());
    }

    #[test]
    fn fixed_budget_variant_spends_more_simulations_than_two_stage() {
        let mut sims_fixed = 0;
        let mut sims_oo = 0;
        for seed in 0..2u64 {
            let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
            let fixed = YieldOptimizer::new(tiny_config().as_fixed_budget(60))
                .run(&problem, &mut StdRng::seed_from_u64(seed));
            sims_fixed += fixed.total_simulations;

            let problem2 = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
            let oo = YieldOptimizer::new(tiny_config().as_oo_without_memetic())
                .run(&problem2, &mut StdRng::seed_from_u64(seed));
            sims_oo += oo.total_simulations;
        }
        assert!(
            sims_oo < sims_fixed,
            "OO variant should be cheaper: {sims_oo} vs {sims_fixed}"
        );
    }

    #[test]
    fn trace_contains_training_data() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let optimizer = YieldOptimizer::new(tiny_config());
        // Seed chosen so the tiny 8-member / 6-generation budget actually
        // finds feasible candidates (some seeds legitimately do not).
        let mut rng = StdRng::seed_from_u64(0);
        let result = optimizer.run(&problem, &mut rng);
        let pairs = result.trace.training_pairs(result.generations - 1);
        assert!(!pairs.is_empty());
        for (x, y) in &pairs {
            assert_eq!(x.len(), problem.dimension());
            assert!((0.0..=1.0).contains(y));
        }
    }

    #[test]
    fn warm_started_run_keeps_the_seed_design_in_play() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let optimizer = YieldOptimizer::new(tiny_config());
        let reference = problem.testbench().reference_design();
        // Seed deliberately outside the bounds on one axis: it must be
        // clamped, not rejected.
        let mut seed = reference.clone();
        seed[0] = -1.0;
        let mut rng = StdRng::seed_from_u64(3);
        let result = optimizer.run_from(&problem, &[reference.clone(), seed], &mut rng);
        // With the known-good reference in the initial population the run is
        // feasible from generation 0.
        assert!(
            result.reported_yield > 0.0,
            "yield {}",
            result.reported_yield
        );
        assert!(result.trace.records[0].num_feasible >= 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn warm_start_with_wrong_dimension_panics() {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let optimizer = YieldOptimizer::new(tiny_config());
        let mut rng = StdRng::seed_from_u64(3);
        let _ = optimizer.run_from(&problem, &[vec![1.0; 3]], &mut rng);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = |seed: u64| {
            let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
            let optimizer = YieldOptimizer::new(tiny_config());
            let mut rng = StdRng::seed_from_u64(seed);
            let r = optimizer.run(&problem, &mut rng);
            (r.best_x.clone(), r.total_simulations)
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let c = run(10);
        assert!(a.0 != c.0 || a.1 != c.1);
    }

    #[test]
    #[should_panic]
    fn invalid_configuration_is_rejected() {
        let mut cfg = tiny_config();
        cfg.population_size = 2;
        let _ = YieldOptimizer::new(cfg);
    }
}
