//! Configuration of the MOHECO algorithm and its baselines.

use crate::prescreen::PrescreenConfig;
use moheco_sampling::SamplingPlan;

/// Which yield-estimation strategy a run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum YieldStrategy {
    /// Every feasible candidate receives the same fixed number of Monte-Carlo
    /// samples (the "AS + LHS with N simulations" baselines of the paper).
    FixedBudget {
        /// Samples per feasible candidate.
        sims_per_candidate: usize,
    },
    /// The two-stage MOHECO scheme: ordinal-optimization budget allocation in
    /// stage 1, maximum-sample estimation for candidates promoted to stage 2.
    TwoStageOo,
}

/// Full configuration of a yield-optimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MohecoConfig {
    /// Population size (paper: 50).
    pub population_size: usize,
    /// DE differential weight `F` (paper: 0.8).
    pub de_f: f64,
    /// DE crossover rate `CR` (paper: 0.8).
    pub de_cr: f64,
    /// Initial samples per feasible candidate in stage 1 (`n0`, paper: 15).
    pub n0: usize,
    /// Average stage-1 budget per feasible candidate (`sim_ave`, paper: 35).
    pub sim_ave: usize,
    /// Increment of the sequential OCBA loop (`Δ`).
    pub delta: usize,
    /// Samples for stage-2 / final yield estimates (`n_max`, paper: 500).
    pub n_max: usize,
    /// Estimated-yield threshold above which a candidate enters stage 2
    /// (paper: 0.97).
    pub stage2_threshold: f64,
    /// Stagnant generations before the Nelder–Mead local search fires
    /// (paper: 5).
    pub memetic_trigger: usize,
    /// Whether the memetic (Nelder–Mead) operator is enabled at all.
    pub memetic_enabled: bool,
    /// Number of Nelder–Mead iterations per local search (paper: ≈10).
    pub nm_iterations: usize,
    /// Yield-estimation strategy.
    pub strategy: YieldStrategy,
    /// Sampling plan used inside every Monte-Carlo estimate (paper: LHS).
    pub sampling_plan: SamplingPlan,
    /// Stop when the best stage-2 yield estimate reaches this value
    /// (paper: 1.0, i.e. a reported 100 % yield).
    pub target_yield: f64,
    /// Stop when the best yield has not improved for this many generations
    /// (paper: 20).
    pub stop_stagnation: usize,
    /// Hard cap on the number of generations.
    pub max_generations: usize,
    /// Surrogate prescreening of each generation's candidates (off by
    /// default; see [`crate::prescreen`]). Only the two-stage OO strategy
    /// consults it — the fixed-budget baselines and the Nelder–Mead stage-2
    /// refinement never prescreen.
    pub prescreen: PrescreenConfig,
}

impl Default for MohecoConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl MohecoConfig {
    /// The paper's parameter settings (population 50, `n0 = 15`,
    /// `sim_ave = 35`, `n_max = 500`, CR = F = 0.8, LHS sampling).
    pub fn paper() -> Self {
        Self {
            population_size: 50,
            de_f: 0.8,
            de_cr: 0.8,
            n0: 15,
            sim_ave: 35,
            delta: 20,
            n_max: 500,
            stage2_threshold: 0.97,
            memetic_trigger: 5,
            memetic_enabled: true,
            nm_iterations: 10,
            strategy: YieldStrategy::TwoStageOo,
            sampling_plan: SamplingPlan::LatinHypercube,
            target_yield: 1.0,
            stop_stagnation: 20,
            max_generations: 100,
            prescreen: PrescreenConfig::default(),
        }
    }

    /// A scaled-down configuration that finishes quickly; used by the default
    /// experiment binaries, integration tests and examples. `--paper` in the
    /// experiment binaries switches back to [`MohecoConfig::paper`].
    pub fn fast() -> Self {
        Self {
            population_size: 16,
            n0: 8,
            sim_ave: 20,
            delta: 12,
            n_max: 150,
            stop_stagnation: 8,
            max_generations: 25,
            ..Self::paper()
        }
    }

    /// Converts this configuration into the AS+LHS fixed-budget baseline with
    /// `sims` simulations per feasible candidate and no memetic operator.
    pub fn as_fixed_budget(mut self, sims: usize) -> Self {
        self.strategy = YieldStrategy::FixedBudget {
            sims_per_candidate: sims,
        };
        self.memetic_enabled = false;
        self
    }

    /// Converts this configuration into the OO+AS+LHS variant (two-stage
    /// estimation but no memetic operator).
    pub fn as_oo_without_memetic(mut self) -> Self {
        self.strategy = YieldStrategy::TwoStageOo;
        self.memetic_enabled = false;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of its sensible range.
    pub fn validate(&self) {
        assert!(self.population_size >= 4, "population must be >= 4");
        assert!(self.de_f > 0.0 && self.de_f <= 2.0, "F out of range");
        assert!((0.0..=1.0).contains(&self.de_cr), "CR out of range");
        assert!(self.n0 >= 2, "n0 must be >= 2");
        assert!(self.sim_ave >= self.n0, "sim_ave must be >= n0");
        assert!(self.n_max >= self.sim_ave, "n_max must be >= sim_ave");
        assert!(
            (0.0..=1.0).contains(&self.stage2_threshold),
            "stage-2 threshold out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.target_yield),
            "target yield out of range"
        );
        assert!(self.max_generations >= 1, "need at least one generation");
        if let YieldStrategy::FixedBudget { sims_per_candidate } = self.strategy {
            assert!(sims_per_candidate >= 1, "fixed budget must be >= 1");
        }
        self.prescreen.validate();
    }

    /// This configuration with the given prescreening stage.
    pub fn with_prescreen(mut self, prescreen: PrescreenConfig) -> Self {
        self.prescreen = prescreen;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_the_paper() {
        let c = MohecoConfig::paper();
        assert_eq!(c.population_size, 50);
        assert_eq!(c.n0, 15);
        assert_eq!(c.sim_ave, 35);
        assert_eq!(c.n_max, 500);
        assert!((c.de_cr - 0.8).abs() < 1e-12);
        assert!((c.de_f - 0.8).abs() < 1e-12);
        assert_eq!(c.memetic_trigger, 5);
        assert_eq!(c.stop_stagnation, 20);
        assert!(c.memetic_enabled);
        assert_eq!(c.strategy, YieldStrategy::TwoStageOo);
        c.validate();
    }

    #[test]
    fn fast_config_is_valid_and_smaller() {
        let c = MohecoConfig::fast();
        c.validate();
        assert!(c.population_size < MohecoConfig::paper().population_size);
        assert!(c.n_max < MohecoConfig::paper().n_max);
    }

    #[test]
    fn baseline_conversions() {
        let fixed = MohecoConfig::fast().as_fixed_budget(300);
        assert_eq!(
            fixed.strategy,
            YieldStrategy::FixedBudget {
                sims_per_candidate: 300
            }
        );
        assert!(!fixed.memetic_enabled);
        fixed.validate();

        let oo = MohecoConfig::fast().as_oo_without_memetic();
        assert_eq!(oo.strategy, YieldStrategy::TwoStageOo);
        assert!(!oo.memetic_enabled);
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let mut c = MohecoConfig::paper();
        c.n_max = 1;
        c.validate();
    }
}
