//! The yield-optimization problem: glue between a circuit testbench, the
//! statistical process model and the evaluation engine.
//!
//! A [`YieldProblem`] owns the testbench, a [`ProcessSampler`] matched to it,
//! an [`AcceptanceSampler`] screen and an [`EvalEngine`]. Every circuit
//! evaluation — nominal feasibility checks and Monte-Carlo yield samples
//! alike — is dispatched through the engine, so that (a) the simulation
//! counts reported in Tables 2 and 4 are complete, (b) batches run in
//! parallel when the engine is a [`moheco_runtime::ParallelEngine`], and
//! (c) repeated evaluations of a design are served from the engine cache.
//!
//! Monte-Carlo samples are *indexed*: each design owns one deterministic
//! sample stream (see [`moheco_runtime`]), and consumers request ranges
//! `start .. start + count` of it. Accumulating consumers (stage-1 OCBA,
//! stage-2 top-up, the final re-estimate) pass the number of samples they
//! already hold as `start`, which makes their merged estimates consistent
//! and lets the cache serve re-probes for free.

use moheco_analog::Testbench;
use moheco_process::ProcessSampler;
use moheco_runtime::{EngineConfig, EvalEngine, McRequest, SerialEngine, SimulationModel};
use moheco_sampling::{
    AcceptanceSampler, AsDecision, SamplingPlan, SimulationCounter, YieldEstimate,
};
use rand::Rng;
use std::sync::Arc;

/// Result of the nominal feasibility screen of one candidate sizing.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityReport {
    /// Normalised nominal specification margins (positive = pass).
    pub margins: Vec<f64>,
    /// Aggregate constraint violation (0 = feasible).
    pub violation: f64,
    /// Acceptance-sampling decision derived from the margins.
    pub decision: AsDecision,
}

impl FeasibilityReport {
    /// Returns `true` when the nominal design meets every specification.
    pub fn is_feasible(&self) -> bool {
        self.violation <= 0.0
    }
}

/// Adapter exposing a testbench + process sampler pair as the
/// [`SimulationModel`] the engine dispatches over.
struct CircuitModel<T> {
    testbench: Arc<T>,
    sampler: ProcessSampler,
}

impl<T: Testbench> SimulationModel for CircuitModel<T> {
    fn unit_dimension(&self) -> usize {
        self.sampler.dimension()
    }

    fn simulate_point(&self, x: &[f64], u: &[f64]) -> f64 {
        let xi = self.sampler.from_unit_point(u);
        let perf = self.testbench.evaluate(x, &xi);
        if self.testbench.specs().all_met(&perf) {
            1.0
        } else {
            0.0
        }
    }

    fn nominal(&self, x: &[f64]) -> Vec<f64> {
        self.testbench.nominal_margins(x)
    }
}

/// The yield-optimization problem over a circuit testbench.
pub struct YieldProblem<T> {
    testbench: Arc<T>,
    model: CircuitModel<T>,
    acceptance: AcceptanceSampler,
    engine: Arc<dyn EvalEngine>,
}

impl<T: Testbench> YieldProblem<T> {
    /// Creates the yield problem for `testbench` with the given sampling
    /// plan, dispatching through a fresh [`SerialEngine`].
    pub fn new(testbench: T, plan: SamplingPlan) -> Self {
        let engine = Arc::new(SerialEngine::new(EngineConfig {
            plan,
            ..EngineConfig::default()
        }));
        Self::with_engine(testbench, engine)
    }

    /// Creates the yield problem dispatching through an explicit engine
    /// (serial or parallel; the engine's configuration supplies the sampling
    /// plan and master seed).
    pub fn with_engine(testbench: T, engine: Arc<dyn EvalEngine>) -> Self {
        let testbench = Arc::new(testbench);
        let sampler = ProcessSampler::new(testbench.technology().clone(), testbench.num_devices());
        let model = CircuitModel {
            testbench: Arc::clone(&testbench),
            sampler,
        };
        Self {
            testbench,
            model,
            acceptance: AcceptanceSampler::default(),
            engine,
        }
    }

    /// The underlying testbench.
    pub fn testbench(&self) -> &T {
        &self.testbench
    }

    /// The evaluation engine dispatching this problem's simulations.
    pub fn engine(&self) -> &Arc<dyn EvalEngine> {
        &self.engine
    }

    /// Snapshot of the engine instrumentation (simulations run, cache hits,
    /// batch sizes, busy time).
    pub fn engine_stats(&self) -> moheco_runtime::EngineStatsSnapshot {
        self.engine.stats()
    }

    /// The shared simulation counter (clone it to keep a handle).
    pub fn counter(&self) -> SimulationCounter {
        self.engine.counter()
    }

    /// Total number of circuit simulations spent so far.
    pub fn simulations(&self) -> u64 {
        self.engine.simulations()
    }

    /// Resets the simulation counter *and the engine cache* (used between
    /// experiment repetitions, so a repetition cannot be served from a
    /// previous run's cache).
    pub fn reset_counter(&self) {
        self.engine.reset();
    }

    /// Design-space bounds of the testbench.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        self.testbench.bounds()
    }

    /// Number of design variables.
    pub fn dimension(&self) -> usize {
        self.testbench.dimension()
    }

    /// The process sampler matched to the testbench.
    pub fn process_sampler(&self) -> &ProcessSampler {
        &self.model.sampler
    }

    fn report_from_margins(&self, margins: Vec<f64>) -> FeasibilityReport {
        let violation = margins.iter().filter(|&&m| m < 0.0).map(|&m| -m).sum();
        let decision = self.acceptance.screen(&margins);
        FeasibilityReport {
            margins,
            violation,
            decision,
        }
    }

    /// Nominal feasibility screen (costs one circuit simulation; repeats of
    /// the same design are served from the engine cache for free).
    pub fn feasibility(&self, x: &[f64]) -> FeasibilityReport {
        self.feasibility_batch(std::slice::from_ref(&x.to_vec()))
            .pop()
            .expect("one design yields one report")
    }

    /// Nominal feasibility screen of a whole batch of designs, dispatched to
    /// the engine as one batch (parallel with a parallel engine).
    pub fn feasibility_batch(&self, xs: &[Vec<f64>]) -> Vec<FeasibilityReport> {
        self.engine
            .nominal_batch(&self.model, xs)
            .into_iter()
            .map(|margins| self.report_from_margins(margins))
            .collect()
    }

    /// Monte-Carlo pass/fail outcomes `start .. start + count` of the sample
    /// stream of sizing `x` (1.0 = all specs met). Fresh indices cost one
    /// circuit simulation each; previously simulated indices are free.
    pub fn outcomes(&self, x: &[f64], start: usize, count: usize) -> Vec<f64> {
        self.engine.mc_single(&self.model, x, start, count)
    }

    /// Batch variant of [`Self::outcomes`]: all requests are dispatched to
    /// the engine at once (one work-stealing batch with a parallel engine).
    pub fn outcomes_batch(&self, requests: &[McRequest]) -> Vec<Vec<f64>> {
        self.engine.mc_outcomes(&self.model, requests)
    }

    /// Estimates the yield of sizing `x` from the first `n` samples of its
    /// stream, honouring the acceptance-sampling screen: candidates rejected
    /// by the screen report zero yield without spending samples, deeply
    /// accepted candidates spend a reduced confirmation budget.
    pub fn estimate_yield(&self, x: &[f64], n: usize, decision: AsDecision) -> YieldEstimate {
        let budget = self.acceptance.budget_for(decision, n);
        if budget == 0 {
            return YieldEstimate::default();
        }
        let outcomes = self.outcomes(x, 0, budget);
        let passes = outcomes.iter().filter(|&&o| o > 0.5).count();
        YieldEstimate::new(passes, outcomes.len())
    }

    /// High-accuracy reference yield of sizing `x` (used to fill the
    /// "deviation from a 50 000-sample MC" columns of Tables 1 and 3).
    ///
    /// The samples spent here are *not* charged to the engine's counter and
    /// bypass its cache: they belong to the experimental methodology (an
    /// independent measurement with its own RNG), not to the method under
    /// test.
    pub fn reference_yield<R: Rng + ?Sized>(&self, x: &[f64], n: usize, rng: &mut R) -> f64 {
        let dim = self.model.sampler.dimension();
        let plan = self.engine.config().plan;
        let mut passes = 0usize;
        // Generate in chunks to bound the memory of the LHS permutation.
        let chunk = 2000;
        let mut remaining = n;
        while remaining > 0 {
            let m = remaining.min(chunk);
            let points = plan.generate(rng, m, dim);
            for u in &points {
                let xi = self.model.sampler.from_unit_point(u);
                let perf = self.testbench.evaluate(x, &xi);
                if self.testbench.specs().all_met(&perf) {
                    passes += 1;
                }
            }
            remaining -= m;
        }
        passes as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_analog::FoldedCascode;
    use moheco_runtime::ParallelEngine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem() -> YieldProblem<FoldedCascode> {
        YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube)
    }

    #[test]
    fn feasibility_screen_counts_one_simulation() {
        let p = problem();
        let x = p.testbench().reference_design();
        assert_eq!(p.simulations(), 0);
        let rep = p.feasibility(&x);
        assert!(rep.is_feasible(), "report {rep:?}");
        assert_eq!(p.simulations(), 1);
        assert_ne!(rep.decision, AsDecision::RejectWithoutSampling);
        // Re-screening the same design is free (nominal cache).
        let rep2 = p.feasibility(&x);
        assert_eq!(rep, rep2);
        assert_eq!(p.simulations(), 1);
    }

    #[test]
    fn infeasible_design_is_rejected_without_sampling() {
        let p = problem();
        let mut x = p.testbench().reference_design();
        x[8] = 480.0; // far too much current: power spec violated
        let rep = p.feasibility(&x);
        assert!(!rep.is_feasible());
        assert_eq!(rep.decision, AsDecision::RejectWithoutSampling);
        let est = p.estimate_yield(&x, 100, rep.decision);
        assert_eq!(est.samples, 0);
        assert_eq!(est.value(), 0.0);
        // Only the feasibility simulation was spent.
        assert_eq!(p.simulations(), 1);
    }

    #[test]
    fn yield_estimate_counts_samples() {
        let p = problem();
        let x = p.testbench().reference_design();
        let rep = p.feasibility(&x);
        let est = p.estimate_yield(&x, 60, rep.decision);
        assert!(est.samples > 0 && est.samples <= 60);
        assert!(est.value() > 0.3, "yield {}", est.value());
        assert_eq!(p.simulations(), 1 + est.samples as u64);
        // Re-estimating with the same budget is free (sample cache).
        let est2 = p.estimate_yield(&x, 60, rep.decision);
        assert_eq!(est, est2);
        assert_eq!(p.simulations(), 1 + est.samples as u64);
    }

    #[test]
    fn outcome_ranges_merge_consistently() {
        let p = problem();
        let x = p.testbench().reference_design();
        let head = p.outcomes(&x, 0, 30);
        let tail = p.outcomes(&x, 30, 30);
        let joined: Vec<f64> = head.iter().chain(tail.iter()).copied().collect();
        assert_eq!(p.outcomes(&x, 0, 60), joined);
        // 60 distinct sample indices -> exactly 60 simulations.
        assert_eq!(p.simulations(), 60);
    }

    #[test]
    fn reference_yield_does_not_touch_the_counter() {
        let p = problem();
        let x = p.testbench().reference_design();
        let mut rng = StdRng::seed_from_u64(3);
        let y = p.reference_yield(&x, 200, &mut rng);
        assert!(y > 0.3 && y <= 1.0);
        assert_eq!(p.simulations(), 0);
    }

    #[test]
    fn counter_reset() {
        let p = problem();
        let x = p.testbench().reference_design();
        let _ = p.feasibility(&x);
        assert!(p.simulations() > 0);
        p.reset_counter();
        assert_eq!(p.simulations(), 0);
    }

    #[test]
    fn outcomes_returns_requested_count() {
        let p = problem();
        let x = p.testbench().reference_design();
        let out = p.outcomes(&x, 0, 25);
        assert_eq!(out.len(), 25);
        assert!(out.iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(p.outcomes(&x, 25, 0).is_empty());
    }

    #[test]
    fn serial_and_parallel_problems_agree() {
        let serial = problem();
        let parallel = YieldProblem::with_engine(
            FoldedCascode::new(),
            Arc::new(ParallelEngine::new(EngineConfig::default().with_workers(3))),
        );
        let x = serial.testbench().reference_design();
        assert_eq!(serial.feasibility(&x), parallel.feasibility(&x));
        assert_eq!(serial.outcomes(&x, 0, 120), parallel.outcomes(&x, 0, 120));
        assert_eq!(serial.simulations(), parallel.simulations());
    }
}
