//! The yield-optimization problem: glue between a benchmark, its statistical
//! model and the evaluation engine.
//!
//! A [`YieldProblem`] owns a [`Benchmark`] (a circuit testbench wrapped in a
//! [`CircuitBench`], or any synthetic analytic benchmark), an
//! [`AcceptanceSampler`] screen and an [`EvalEngine`]. Every evaluation —
//! nominal feasibility checks and Monte-Carlo yield samples alike — is
//! dispatched through the engine, so that (a) the simulation counts reported
//! in Tables 2 and 4 are complete, (b) batches run in parallel when the
//! engine is a [`moheco_runtime::ParallelEngine`], and (c) repeated
//! evaluations of a design are served from the engine cache.
//!
//! The problem is generic over `B: Benchmark + ?Sized`: the circuit paths
//! keep their static dispatch (`YieldProblem<CircuitBench<FoldedCascode>>`),
//! while the scenario registry of `moheco-scenarios` builds heterogeneous
//! `YieldProblem<dyn Benchmark>` values from `Arc<dyn Benchmark>`.
//!
//! Monte-Carlo samples are *indexed*: each design owns one deterministic
//! sample stream (see [`moheco_runtime`]), and consumers request ranges
//! `start .. start + count` of it. Accumulating consumers (stage-1 OCBA,
//! stage-2 top-up, the final re-estimate) pass the number of samples they
//! already hold as `start`, which makes their merged estimates consistent
//! and lets the cache serve re-probes for free.

use crate::benchmark::{Benchmark, CircuitBench};
use moheco_analog::Testbench;
use moheco_process::ProcessSampler;
use moheco_runtime::{EngineConfig, EvalEngine, McRequest, SerialEngine};
use moheco_sampling::{
    AcceptanceSampler, AsDecision, EstimatedYield, EstimatorKind, SamplingPlan, SimulationCounter,
    YieldEstimate,
};
use rand::Rng;
use std::sync::Arc;

/// Result of the nominal feasibility screen of one candidate sizing.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityReport {
    /// Normalised nominal specification margins (positive = pass).
    pub margins: Vec<f64>,
    /// Aggregate constraint violation (0 = feasible).
    pub violation: f64,
    /// Acceptance-sampling decision derived from the margins.
    pub decision: AsDecision,
}

impl FeasibilityReport {
    /// Returns `true` when the nominal design meets every specification.
    pub fn is_feasible(&self) -> bool {
        self.violation <= 0.0
    }
}

/// The yield-optimization problem over a benchmark.
pub struct YieldProblem<B: Benchmark + ?Sized> {
    bench: Arc<B>,
    acceptance: AcceptanceSampler,
    engine: Arc<dyn EvalEngine>,
    tracer: moheco_obs::Tracer,
}

impl<T: Testbench> YieldProblem<CircuitBench<T>> {
    /// Creates the yield problem for a circuit `testbench` with the given
    /// sampling plan, dispatching through a fresh [`SerialEngine`].
    pub fn new(testbench: T, plan: SamplingPlan) -> Self {
        Self::with_estimator(testbench, plan, EstimatorKind::default())
    }

    /// [`Self::new`] with an explicit variance-reduction estimator: the
    /// fresh engine's sample streams are shaped by `estimator` and
    /// [`Self::estimate_with_ci`] condenses them with its variance formula.
    /// The default kind ([`EstimatorKind::MonteCarlo`]) is bit-identical to
    /// [`Self::new`].
    pub fn with_estimator(testbench: T, plan: SamplingPlan, estimator: EstimatorKind) -> Self {
        let engine = Arc::new(SerialEngine::new(EngineConfig {
            plan,
            estimator,
            ..EngineConfig::default()
        }));
        Self::with_engine(testbench, engine)
    }

    /// Creates the yield problem for a circuit testbench dispatching through
    /// an explicit engine (serial or parallel; the engine's configuration
    /// supplies the sampling plan and master seed).
    pub fn with_engine(testbench: T, engine: Arc<dyn EvalEngine>) -> Self {
        Self::from_bench(Arc::new(CircuitBench::new(testbench)), engine)
    }

    /// The underlying testbench.
    pub fn testbench(&self) -> &T {
        self.bench.testbench()
    }

    /// The process sampler matched to the testbench.
    pub fn process_sampler(&self) -> &ProcessSampler {
        self.bench.sampler()
    }
}

impl<B: Benchmark + ?Sized> YieldProblem<B> {
    /// Creates the yield problem over an arbitrary (possibly type-erased)
    /// benchmark, dispatching through an explicit engine.
    pub fn from_bench(bench: Arc<B>, engine: Arc<dyn EvalEngine>) -> Self {
        Self {
            bench,
            acceptance: AcceptanceSampler::default(),
            engine,
            tracer: moheco_obs::Tracer::disabled(),
        }
    }

    /// Attaches an observability tracer, wiring this problem's engine as the
    /// tracer's budget-attribution probe: simulations, cache hits and
    /// evictions are attributed to whichever phase span is innermost when
    /// they happen. With the default disabled tracer every span operation is
    /// a no-op, so traced and untraced runs are bit-identical.
    pub fn with_tracer(mut self, tracer: moheco_obs::Tracer) -> Self {
        moheco_runtime::attach_engine_probe(&tracer, &self.engine);
        self.tracer = tracer;
        self
    }

    /// The attached observability tracer ([`moheco_obs::Tracer::disabled`]
    /// unless [`Self::with_tracer`] was called).
    pub fn tracer(&self) -> &moheco_obs::Tracer {
        &self.tracer
    }

    /// The benchmark under optimization.
    pub fn bench(&self) -> &B {
        &self.bench
    }

    /// The evaluation engine dispatching this problem's simulations.
    pub fn engine(&self) -> &Arc<dyn EvalEngine> {
        &self.engine
    }

    /// Snapshot of the engine instrumentation (simulations run, cache hits,
    /// batch sizes, busy time).
    pub fn engine_stats(&self) -> moheco_runtime::EngineStatsSnapshot {
        self.engine.stats()
    }

    /// The shared simulation counter (clone it to keep a handle).
    pub fn counter(&self) -> SimulationCounter {
        self.engine.counter()
    }

    /// Total number of simulations spent so far.
    pub fn simulations(&self) -> u64 {
        self.engine.simulations()
    }

    /// Resets the simulation counter *and the engine cache* (used between
    /// experiment repetitions, so a repetition cannot be served from a
    /// previous run's cache).
    pub fn reset_counter(&self) {
        self.engine.reset();
    }

    /// Design-space bounds of the benchmark.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        self.bench.bounds()
    }

    /// Number of design variables.
    pub fn dimension(&self) -> usize {
        self.bench.dimension()
    }

    /// The exact yield of design `x` when the benchmark admits a closed form
    /// (synthetic analytic benchmarks; `None` for circuits).
    pub fn true_yield(&self, x: &[f64]) -> Option<f64> {
        self.bench.true_yield(x)
    }

    fn report_from_margins(&self, margins: Vec<f64>) -> FeasibilityReport {
        let violation = margins.iter().filter(|&&m| m < 0.0).map(|&m| -m).sum();
        let decision = self.acceptance.screen(&margins);
        FeasibilityReport {
            margins,
            violation,
            decision,
        }
    }

    /// Nominal feasibility screen (costs one simulation; repeats of the same
    /// design are served from the engine cache for free).
    pub fn feasibility(&self, x: &[f64]) -> FeasibilityReport {
        self.feasibility_batch(std::slice::from_ref(&x.to_vec()))
            .pop()
            .expect("one design yields one report")
    }

    /// Nominal feasibility screen of a whole batch of designs, dispatched to
    /// the engine as one batch (parallel with a parallel engine).
    pub fn feasibility_batch(&self, xs: &[Vec<f64>]) -> Vec<FeasibilityReport> {
        self.engine
            .nominal_batch(self.bench.as_model(), xs)
            .into_iter()
            .map(|margins| self.report_from_margins(margins))
            .collect()
    }

    /// Monte-Carlo pass/fail outcomes `start .. start + count` of the sample
    /// stream of design `x` (1.0 = all specs met). Fresh indices cost one
    /// simulation each; previously simulated indices are free.
    pub fn outcomes(&self, x: &[f64], start: usize, count: usize) -> Vec<f64> {
        self.engine
            .mc_single(self.bench.as_model(), x, start, count)
    }

    /// Batch variant of [`Self::outcomes`]: all requests are dispatched to
    /// the engine at once (one work-stealing batch with a parallel engine).
    pub fn outcomes_batch(&self, requests: &[McRequest]) -> Vec<Vec<f64>> {
        self.engine.mc_outcomes(self.bench.as_model(), requests)
    }

    /// The variance-reduction estimator shaping this problem's sample
    /// streams (configured on the engine; [`EstimatorKind::MonteCarlo`] by
    /// default).
    pub fn estimator(&self) -> EstimatorKind {
        self.engine.config().estimator
    }

    /// Estimates the yield of design `x` from the first `n` samples of its
    /// stream, honouring the acceptance-sampling screen: candidates rejected
    /// by the screen report zero yield without spending samples, deeply
    /// accepted candidates spend a reduced confirmation budget.
    ///
    /// Outcome values are the engine's per-sample yield contributions, so
    /// the returned estimate is unbiased under every configured estimator
    /// (including importance sampling, whose raw pass fraction would be
    /// biased). For an estimate with an uncertainty interval, see
    /// [`Self::estimate_with_ci`].
    pub fn estimate_yield(&self, x: &[f64], n: usize, decision: AsDecision) -> YieldEstimate {
        let budget = self.acceptance.budget_for(decision, n);
        if budget == 0 {
            return YieldEstimate::default();
        }
        let outcomes = self.outcomes(x, 0, budget);
        YieldEstimate::from_sum(outcomes.iter().sum(), outcomes.len())
    }

    /// Estimates the yield of design `x` with the configured estimator's own
    /// variance formula, returning the point estimate *and* its standard
    /// error (see [`EstimatedYield::half_width`] for the CI half-width). The
    /// acceptance-sampling screen applies exactly as in
    /// [`Self::estimate_yield`].
    pub fn estimate_with_ci(&self, x: &[f64], n: usize, decision: AsDecision) -> EstimatedYield {
        self.report_first(x, self.acceptance.budget_for(decision, n))
    }

    /// Condenses outcome values `0 .. n` of design `x`'s stream with the
    /// configured estimator (no acceptance-sampling budget adjustment).
    /// Samples already simulated are served from the engine cache, so
    /// re-reporting an estimated design costs no simulations.
    pub fn report_first(&self, x: &[f64], n: usize) -> EstimatedYield {
        if n == 0 {
            return EstimatedYield::empty(self.estimator());
        }
        let outcomes = self.outcomes(x, 0, n);
        self.engine.estimate(&outcomes)
    }

    /// High-accuracy reference yield of design `x` (used to fill the
    /// "deviation from a 50 000-sample MC" columns of Tables 1 and 3).
    ///
    /// The samples spent here are *not* charged to the engine's counter and
    /// bypass its cache: they belong to the experimental methodology (an
    /// independent measurement with its own RNG), not to the method under
    /// test.
    pub fn reference_yield<R: Rng + ?Sized>(&self, x: &[f64], n: usize, rng: &mut R) -> f64 {
        let dim = self.bench.unit_dimension();
        let plan = self.engine.config().plan;
        let mut passes = 0usize;
        // Generate in chunks to bound the memory of the LHS permutation.
        let chunk = 2000;
        let mut remaining = n;
        while remaining > 0 {
            let m = remaining.min(chunk);
            let points = plan.generate(rng, m, dim);
            for u in &points {
                if self.bench.simulate_point(x, u) > 0.5 {
                    passes += 1;
                }
            }
            remaining -= m;
        }
        passes as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_analog::FoldedCascode;
    use moheco_runtime::ParallelEngine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem() -> YieldProblem<CircuitBench<FoldedCascode>> {
        YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube)
    }

    #[test]
    fn feasibility_screen_counts_one_simulation() {
        let p = problem();
        let x = p.testbench().reference_design();
        assert_eq!(p.simulations(), 0);
        let rep = p.feasibility(&x);
        assert!(rep.is_feasible(), "report {rep:?}");
        assert_eq!(p.simulations(), 1);
        assert_ne!(rep.decision, AsDecision::RejectWithoutSampling);
        // Re-screening the same design is free (nominal cache).
        let rep2 = p.feasibility(&x);
        assert_eq!(rep, rep2);
        assert_eq!(p.simulations(), 1);
    }

    #[test]
    fn infeasible_design_is_rejected_without_sampling() {
        let p = problem();
        let mut x = p.testbench().reference_design();
        x[8] = 480.0; // far too much current: power spec violated
        let rep = p.feasibility(&x);
        assert!(!rep.is_feasible());
        assert_eq!(rep.decision, AsDecision::RejectWithoutSampling);
        let est = p.estimate_yield(&x, 100, rep.decision);
        assert_eq!(est.samples, 0);
        assert_eq!(est.value(), 0.0);
        // Only the feasibility simulation was spent.
        assert_eq!(p.simulations(), 1);
    }

    #[test]
    fn yield_estimate_counts_samples() {
        let p = problem();
        let x = p.testbench().reference_design();
        let rep = p.feasibility(&x);
        let est = p.estimate_yield(&x, 60, rep.decision);
        assert!(est.samples > 0 && est.samples <= 60);
        assert!(est.value() > 0.3, "yield {}", est.value());
        assert_eq!(p.simulations(), 1 + est.samples as u64);
        // Re-estimating with the same budget is free (sample cache).
        let est2 = p.estimate_yield(&x, 60, rep.decision);
        assert_eq!(est, est2);
        assert_eq!(p.simulations(), 1 + est.samples as u64);
    }

    #[test]
    fn outcome_ranges_merge_consistently() {
        let p = problem();
        let x = p.testbench().reference_design();
        let head = p.outcomes(&x, 0, 30);
        let tail = p.outcomes(&x, 30, 30);
        let joined: Vec<f64> = head.iter().chain(tail.iter()).copied().collect();
        assert_eq!(p.outcomes(&x, 0, 60), joined);
        // 60 distinct sample indices -> exactly 60 simulations.
        assert_eq!(p.simulations(), 60);
    }

    #[test]
    fn reference_yield_does_not_touch_the_counter() {
        let p = problem();
        let x = p.testbench().reference_design();
        let mut rng = StdRng::seed_from_u64(3);
        let y = p.reference_yield(&x, 200, &mut rng);
        assert!(y > 0.3 && y <= 1.0);
        assert_eq!(p.simulations(), 0);
    }

    #[test]
    fn counter_reset() {
        let p = problem();
        let x = p.testbench().reference_design();
        let _ = p.feasibility(&x);
        assert!(p.simulations() > 0);
        p.reset_counter();
        assert_eq!(p.simulations(), 0);
    }

    #[test]
    fn outcomes_returns_requested_count() {
        let p = problem();
        let x = p.testbench().reference_design();
        let out = p.outcomes(&x, 0, 25);
        assert_eq!(out.len(), 25);
        assert!(out.iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(p.outcomes(&x, 25, 0).is_empty());
    }

    #[test]
    fn serial_and_parallel_problems_agree() {
        let serial = problem();
        let parallel = YieldProblem::with_engine(
            FoldedCascode::new(),
            Arc::new(ParallelEngine::new(EngineConfig::default().with_workers(3))),
        );
        let x = serial.testbench().reference_design();
        assert_eq!(serial.feasibility(&x), parallel.feasibility(&x));
        assert_eq!(serial.outcomes(&x, 0, 120), parallel.outcomes(&x, 0, 120));
        assert_eq!(serial.simulations(), parallel.simulations());
    }

    #[test]
    fn default_estimator_is_plain_monte_carlo() {
        let p = problem();
        assert_eq!(p.estimator(), moheco_sampling::EstimatorKind::MonteCarlo);
        let x = p.testbench().reference_design();
        let rep = p.feasibility(&x);
        let est = p.estimate_yield(&x, 60, rep.decision);
        let ci = p.estimate_with_ci(&x, 60, rep.decision);
        // Same samples, same value; the CI report adds only the uncertainty.
        assert_eq!(ci.samples, est.samples);
        assert!((ci.value - est.value()).abs() < 1e-12);
        assert!(ci.std_error > 0.0 || est.value() == 1.0 || est.value() == 0.0);
        // The report reads cached samples: no extra simulations.
        let sims = p.simulations();
        let _ = p.report_first(&x, est.samples);
        assert_eq!(p.simulations(), sims);
        // A zero-sample report is empty.
        assert_eq!(p.report_first(&x, 0).samples, 0);
    }

    #[test]
    fn estimator_choice_threads_through_the_problem() {
        use moheco_sampling::EstimatorKind;
        let p = YieldProblem::with_estimator(
            FoldedCascode::new(),
            SamplingPlan::LatinHypercube,
            EstimatorKind::Antithetic,
        );
        assert_eq!(p.estimator(), EstimatorKind::Antithetic);
        let x = p.testbench().reference_design();
        let rep = p.feasibility(&x);
        let ci = p.estimate_with_ci(&x, 100, rep.decision);
        assert_eq!(ci.kind, EstimatorKind::Antithetic);
        assert!(ci.samples > 0);
        assert!((0.0..=1.0).contains(&ci.value));
    }

    #[test]
    fn type_erased_problem_behaves_like_the_static_one() {
        let erased: YieldProblem<dyn Benchmark> = YieldProblem::from_bench(
            Arc::new(CircuitBench::new(FoldedCascode::new())),
            Arc::new(SerialEngine::new(EngineConfig::default())),
        );
        let static_p = YieldProblem::with_engine(
            FoldedCascode::new(),
            Arc::new(SerialEngine::new(EngineConfig::default())),
        );
        let x = erased.bench().reference_design();
        assert_eq!(erased.dimension(), static_p.dimension());
        assert_eq!(erased.feasibility(&x), static_p.feasibility(&x));
        assert_eq!(erased.outcomes(&x, 0, 40), static_p.outcomes(&x, 0, 40));
        assert!(erased.true_yield(&x).is_none());
    }
}
