//! The yield-optimization problem: glue between a circuit testbench, the
//! statistical process model and the Monte-Carlo machinery.
//!
//! A [`YieldProblem`] owns the testbench, a [`ProcessSampler`] matched to it,
//! an [`AcceptanceSampler`] screen and a shared [`SimulationCounter`]. Every
//! circuit evaluation — nominal feasibility checks and Monte-Carlo yield
//! samples alike — goes through this type so that the simulation counts
//! reported in Tables 2 and 4 are complete.

use moheco_analog::Testbench;
use moheco_process::ProcessSampler;
use moheco_sampling::{AcceptanceSampler, AsDecision, SamplingPlan, SimulationCounter, YieldEstimate};
use rand::Rng;

/// Result of the nominal feasibility screen of one candidate sizing.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityReport {
    /// Normalised nominal specification margins (positive = pass).
    pub margins: Vec<f64>,
    /// Aggregate constraint violation (0 = feasible).
    pub violation: f64,
    /// Acceptance-sampling decision derived from the margins.
    pub decision: AsDecision,
}

impl FeasibilityReport {
    /// Returns `true` when the nominal design meets every specification.
    pub fn is_feasible(&self) -> bool {
        self.violation <= 0.0
    }
}

/// The yield-optimization problem over a circuit testbench.
pub struct YieldProblem<T> {
    testbench: T,
    sampler: ProcessSampler,
    acceptance: AcceptanceSampler,
    counter: SimulationCounter,
    plan: SamplingPlan,
}

impl<T: Testbench> YieldProblem<T> {
    /// Creates the yield problem for `testbench` with the given sampling plan.
    pub fn new(testbench: T, plan: SamplingPlan) -> Self {
        let sampler = ProcessSampler::new(testbench.technology().clone(), testbench.num_devices());
        Self {
            testbench,
            sampler,
            acceptance: AcceptanceSampler::default(),
            counter: SimulationCounter::new(),
            plan,
        }
    }

    /// The underlying testbench.
    pub fn testbench(&self) -> &T {
        &self.testbench
    }

    /// The shared simulation counter (clone it to keep a handle).
    pub fn counter(&self) -> SimulationCounter {
        self.counter.clone()
    }

    /// Total number of circuit simulations spent so far.
    pub fn simulations(&self) -> u64 {
        self.counter.total()
    }

    /// Resets the simulation counter (used between experiment repetitions).
    pub fn reset_counter(&self) {
        self.counter.reset();
    }

    /// Design-space bounds of the testbench.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        self.testbench.bounds()
    }

    /// Number of design variables.
    pub fn dimension(&self) -> usize {
        self.testbench.dimension()
    }

    /// The process sampler matched to the testbench.
    pub fn process_sampler(&self) -> &ProcessSampler {
        &self.sampler
    }

    /// Nominal feasibility screen (costs exactly one circuit simulation).
    pub fn feasibility(&self, x: &[f64]) -> FeasibilityReport {
        self.counter.add(1);
        let perf = self.testbench.evaluate_nominal(x);
        let margins = self.testbench.specs().margins(&perf);
        let violation = margins.iter().filter(|&&m| m < 0.0).map(|&m| -m).sum();
        let decision = self.acceptance.screen(&margins);
        FeasibilityReport {
            margins,
            violation,
            decision,
        }
    }

    /// Draws `n` fresh Monte-Carlo pass/fail outcomes (1.0 = all specs met)
    /// for sizing `x`. Each outcome costs one circuit simulation.
    pub fn simulate_outcomes<R: Rng + ?Sized>(&self, x: &[f64], n: usize, rng: &mut R) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        self.counter.add(n as u64);
        let dim = self.sampler.dimension();
        let points = self.plan.generate(rng, n, dim);
        points
            .iter()
            .map(|u| {
                let xi = self.sampler.from_unit_point(u);
                let perf = self.testbench.evaluate(x, &xi);
                if self.testbench.specs().all_met(&perf) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Estimates the yield of sizing `x` with `n` Monte-Carlo samples,
    /// honouring the acceptance-sampling screen: candidates rejected by the
    /// screen report zero yield without spending samples, deeply accepted
    /// candidates spend a reduced confirmation budget.
    pub fn estimate_yield<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        n: usize,
        decision: AsDecision,
        rng: &mut R,
    ) -> YieldEstimate {
        let budget = self.acceptance.budget_for(decision, n);
        if budget == 0 {
            return YieldEstimate::default();
        }
        let outcomes = self.simulate_outcomes(x, budget, rng);
        let passes = outcomes.iter().filter(|&&o| o > 0.5).count();
        YieldEstimate::new(passes, outcomes.len())
    }

    /// High-accuracy reference yield of sizing `x` (used to fill the
    /// "deviation from a 50 000-sample MC" columns of Tables 1 and 3).
    ///
    /// The samples spent here are *not* charged to the optimizer's counter:
    /// they belong to the experimental methodology, not to the method under
    /// test.
    pub fn reference_yield<R: Rng + ?Sized>(&self, x: &[f64], n: usize, rng: &mut R) -> f64 {
        let dim = self.sampler.dimension();
        let mut passes = 0usize;
        // Generate in chunks to bound the memory of the LHS permutation.
        let chunk = 2000;
        let mut remaining = n;
        while remaining > 0 {
            let m = remaining.min(chunk);
            let points = self.plan.generate(rng, m, dim);
            for u in &points {
                let xi = self.sampler.from_unit_point(u);
                let perf = self.testbench.evaluate(x, &xi);
                if self.testbench.specs().all_met(&perf) {
                    passes += 1;
                }
            }
            remaining -= m;
        }
        passes as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moheco_analog::FoldedCascode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem() -> YieldProblem<FoldedCascode> {
        YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube)
    }

    #[test]
    fn feasibility_screen_counts_one_simulation() {
        let p = problem();
        let x = p.testbench().reference_design();
        assert_eq!(p.simulations(), 0);
        let rep = p.feasibility(&x);
        assert!(rep.is_feasible(), "report {rep:?}");
        assert_eq!(p.simulations(), 1);
        assert_ne!(rep.decision, AsDecision::RejectWithoutSampling);
    }

    #[test]
    fn infeasible_design_is_rejected_without_sampling() {
        let p = problem();
        let mut x = p.testbench().reference_design();
        x[8] = 480.0; // far too much current: power spec violated
        let rep = p.feasibility(&x);
        assert!(!rep.is_feasible());
        assert_eq!(rep.decision, AsDecision::RejectWithoutSampling);
        let mut rng = StdRng::seed_from_u64(1);
        let est = p.estimate_yield(&x, 100, rep.decision, &mut rng);
        assert_eq!(est.samples, 0);
        assert_eq!(est.value(), 0.0);
        // Only the feasibility simulation was spent.
        assert_eq!(p.simulations(), 1);
    }

    #[test]
    fn yield_estimate_counts_samples() {
        let p = problem();
        let x = p.testbench().reference_design();
        let rep = p.feasibility(&x);
        let mut rng = StdRng::seed_from_u64(2);
        let est = p.estimate_yield(&x, 60, rep.decision, &mut rng);
        assert!(est.samples > 0 && est.samples <= 60);
        assert!(est.value() > 0.3, "yield {}", est.value());
        assert_eq!(p.simulations(), 1 + est.samples as u64);
    }

    #[test]
    fn reference_yield_does_not_touch_the_counter() {
        let p = problem();
        let x = p.testbench().reference_design();
        let mut rng = StdRng::seed_from_u64(3);
        let y = p.reference_yield(&x, 200, &mut rng);
        assert!(y > 0.3 && y <= 1.0);
        assert_eq!(p.simulations(), 0);
    }

    #[test]
    fn counter_reset() {
        let p = problem();
        let x = p.testbench().reference_design();
        let _ = p.feasibility(&x);
        assert!(p.simulations() > 0);
        p.reset_counter();
        assert_eq!(p.simulations(), 0);
    }

    #[test]
    fn simulate_outcomes_returns_requested_count() {
        let p = problem();
        let x = p.testbench().reference_design();
        let mut rng = StdRng::seed_from_u64(4);
        let out = p.simulate_outcomes(&x, 25, &mut rng);
        assert_eq!(out.len(), 25);
        assert!(out.iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(p.simulate_outcomes(&x, 0, &mut rng).is_empty());
    }
}
