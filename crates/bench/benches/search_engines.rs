//! Benchmarks the search engines (DE, GA, memetic DE+NM) on the nominal
//! sizing of example 1 — the comparison behind the paper's choice of DE and
//! the §3.3 convergence discussion.

use criterion::{criterion_group, criterion_main, Criterion};
use moheco_analog::FoldedCascode;
use moheco_bench::NominalSizingProblem;
use moheco_optim::de::{DeConfig, DifferentialEvolution};
use moheco_optim::ga::{GaConfig, GeneticAlgorithm};
use moheco_optim::memetic::{MemeticConfig, MemeticOptimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const POP: usize = 16;
const GENS: usize = 10;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_engines");
    group.sample_size(10);

    group.bench_function("de_nominal_sizing", |b| {
        let de = DifferentialEvolution::new(DeConfig {
            population_size: POP,
            max_generations: GENS,
            stagnation_limit: None,
            ..DeConfig::default()
        });
        b.iter(|| {
            let mut problem = NominalSizingProblem::new(FoldedCascode::new());
            let mut rng = StdRng::seed_from_u64(11);
            black_box(de.run(&mut problem, &mut rng))
        })
    });

    group.bench_function("memetic_nominal_sizing", |b| {
        let memetic = MemeticOptimizer::new(MemeticConfig {
            de: DeConfig {
                population_size: POP,
                max_generations: GENS,
                stagnation_limit: None,
                ..DeConfig::default()
            },
            ..MemeticConfig::default()
        });
        b.iter(|| {
            let mut problem = NominalSizingProblem::new(FoldedCascode::new());
            let mut rng = StdRng::seed_from_u64(11);
            black_box(memetic.run(&mut problem, &mut rng))
        })
    });

    group.bench_function("ga_nominal_sizing", |b| {
        let ga = GeneticAlgorithm::new(GaConfig {
            population_size: POP,
            max_generations: GENS,
            stagnation_limit: None,
            ..GaConfig::default()
        });
        b.iter(|| {
            let mut problem = NominalSizingProblem::new(FoldedCascode::new());
            let mut rng = StdRng::seed_from_u64(11);
            black_box(ga.run(&mut problem, &mut rng))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
