//! Benchmarks the OCBA allocation rule on population sizes used by MOHECO
//! (supports Fig. 3: the allocation itself must be negligible next to the
//! circuit simulations it saves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moheco_ocba::allocation::allocate;
use std::hint::black_box;

fn synthetic_population(size: usize) -> (Vec<f64>, Vec<f64>) {
    let means: Vec<f64> = (0..size)
        .map(|i| 0.2 + 0.75 * (i as f64 / size as f64))
        .collect();
    let variances: Vec<f64> = means.iter().map(|m| m * (1.0 - m)).collect();
    (means, variances)
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ocba_allocation");
    group.sample_size(30);
    for &size in &[10usize, 50, 200] {
        let (means, vars) = synthetic_population(size);
        let budget = 35 * size;
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| allocate(black_box(&means), black_box(&vars), black_box(budget)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);
