//! Benchmarks the two yield-estimation strategies on one population of
//! example 1: the OO/OCBA two-stage scheme of MOHECO versus the fixed
//! per-candidate budget of the AS+LHS baseline. The wall-clock ratio mirrors
//! the simulation-count ratio reported in Tables 2 and 4.

use criterion::{criterion_group, criterion_main, Criterion};
use moheco::{estimate_fixed_budget, estimate_two_stage, Candidate, MohecoConfig, YieldProblem};
use moheco_analog::{FoldedCascode, Testbench};
use moheco_sampling::SamplingPlan;
use std::hint::black_box;

fn build_population(
    problem: &YieldProblem<moheco::CircuitBench<FoldedCascode>>,
    n: usize,
) -> Vec<Candidate> {
    let reference = problem.testbench().reference_design();
    (0..n)
        .map(|i| {
            let mut x = reference.clone();
            x[8] = 130.0 + 4.0 * i as f64; // spread of tail currents = spread of yields
            let rep = problem.feasibility(&x);
            if rep.is_feasible() {
                Candidate::feasible(x, rep.decision)
            } else {
                Candidate::infeasible(x, rep.violation)
            }
        })
        .collect()
}

fn bench_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("yield_estimation");
    group.sample_size(10);

    let config = MohecoConfig {
        n0: 8,
        sim_ave: 20,
        delta: 10,
        n_max: 60,
        ..MohecoConfig::fast()
    };
    let fixed_sims = 60;
    let pop = 8;

    group.bench_function("two_stage_oo_population", |b| {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let template = build_population(&problem, pop);
        b.iter(|| {
            // Reset so every sample is re-simulated: this measures the
            // estimation flow, not the engine cache.
            problem.reset_counter();
            let mut candidates = template.clone();
            black_box(estimate_two_stage(&problem, &mut candidates, &config))
        })
    });

    group.bench_function("fixed_budget_population", |b| {
        let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
        let template = build_population(&problem, pop);
        b.iter(|| {
            problem.reset_counter();
            let mut candidates = template.clone();
            black_box(estimate_fixed_budget(&problem, &mut candidates, fixed_sims))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
