//! Throughput benchmark of the `moheco-runtime` evaluation engine:
//! serial vs parallel batch evaluation, and cache-miss vs cache-hit paths,
//! on the folded-cascode testbench of example 1.
//!
//! Runs as a plain `harness = false` benchmark (the environment has no real
//! criterion) and emits a machine-readable `BENCH_runtime.json` at the
//! workspace root alongside the human-readable report.
//!
//! Pass `--samples <n>` / `--designs <n>` / `--reps <n>` to change the load.

use moheco::runtime::{EngineConfig, McRequest, ParallelEngine, SerialEngine};
use moheco::YieldProblem;
use moheco_analog::{FoldedCascode, Testbench};
use std::sync::Arc;
use std::time::Instant;

/// One timed pass: evaluate `designs × samples` Monte-Carlo outcomes as one
/// batch. Returns wall nanoseconds.
fn timed_batch(
    problem: &YieldProblem<moheco::CircuitBench<FoldedCascode>>,
    designs: &[Vec<f64>],
    samples: usize,
) -> u64 {
    let requests: Vec<McRequest> = designs
        .iter()
        .map(|x| McRequest::new(x.clone(), 0, samples))
        .collect();
    let start = Instant::now();
    let outcomes = problem.outcomes_batch(&requests);
    let elapsed = start.elapsed().as_nanos() as u64;
    assert_eq!(outcomes.len(), designs.len());
    elapsed
}

fn build_designs(n: usize) -> Vec<Vec<f64>> {
    let reference = FoldedCascode::new().reference_design();
    (0..n)
        .map(|i| {
            let mut x = reference.clone();
            x[8] = 120.0 + 3.0 * i as f64; // spread of tail currents
            x
        })
        .collect()
}

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let designs_n = arg("--designs", 8);
    let samples = arg("--samples", 150);
    let reps = arg("--reps", 5);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let designs = build_designs(designs_n);
    let total = designs_n * samples;

    // Cold-cache passes use a fresh engine per repetition so every sample is
    // a cache miss; the immediate second pass on the same engine is the pure
    // cache-hit path.
    let mut serial_cold = Vec::new();
    let mut parallel_cold = Vec::new();
    let mut serial_warm = Vec::new();
    let mut parallel_warm = Vec::new();
    for _ in 0..reps {
        let problem = YieldProblem::with_engine(
            FoldedCascode::new(),
            Arc::new(SerialEngine::new(EngineConfig::default())),
        );
        serial_cold.push(timed_batch(&problem, &designs, samples));
        serial_warm.push(timed_batch(&problem, &designs, samples));

        let problem = YieldProblem::with_engine(
            FoldedCascode::new(),
            Arc::new(ParallelEngine::new(EngineConfig::default())),
        );
        parallel_cold.push(timed_batch(&problem, &designs, samples));
        parallel_warm.push(timed_batch(&problem, &designs, samples));
    }

    // A final instrumented pass for the stats block.
    let instrumented = YieldProblem::with_engine(
        FoldedCascode::new(),
        Arc::new(ParallelEngine::new(EngineConfig::default())),
    );
    let _ = timed_batch(&instrumented, &designs, samples);
    let _ = timed_batch(&instrumented, &designs, samples);
    let stats = instrumented.engine_stats();

    let s_cold = median(serial_cold);
    let p_cold = median(parallel_cold);
    let s_warm = median(serial_warm);
    let p_warm = median(parallel_warm);
    let speedup = s_cold as f64 / p_cold.max(1) as f64;
    let hit_speedup = s_cold as f64 / s_warm.max(1) as f64;

    println!(
        "engine_throughput: {designs_n} designs x {samples} samples = {total} simulations/batch, {reps} reps, {cores} core(s)"
    );
    println!(
        "  serial   cold {:>10.3} ms   warm {:>10.3} ms",
        s_cold as f64 / 1e6,
        s_warm as f64 / 1e6
    );
    println!(
        "  parallel cold {:>10.3} ms   warm {:>10.3} ms",
        p_cold as f64 / 1e6,
        p_warm as f64 / 1e6
    );
    println!("  parallel/serial speedup (cold): {speedup:.2}x  (machine has {cores} core(s))");
    println!("  cache hit/miss speedup (serial): {hit_speedup:.2}x");
    println!("  instrumented pass: {stats}");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"engine_throughput\",\n",
            "  \"circuit\": \"folded_cascode_035\",\n",
            "  \"cores\": {},\n",
            "  \"designs\": {},\n",
            "  \"samples_per_design\": {},\n",
            "  \"simulations_per_batch\": {},\n",
            "  \"reps\": {},\n",
            "  \"serial_cold_ns\": {},\n",
            "  \"parallel_cold_ns\": {},\n",
            "  \"serial_warm_ns\": {},\n",
            "  \"parallel_warm_ns\": {},\n",
            "  \"parallel_speedup\": {:.4},\n",
            "  \"cache_hit_speedup\": {:.4},\n",
            "  \"engine_stats\": {}\n",
            "}}\n"
        ),
        cores,
        designs_n,
        samples,
        total,
        reps,
        s_cold,
        p_cold,
        s_warm,
        p_warm,
        speedup,
        hit_speedup,
        stats.to_json(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
