//! Throughput benchmark of the `moheco-runtime` evaluation engine:
//! serial vs parallel batch evaluation, cache-miss vs cache-hit paths, and
//! the batched (`simulate_block`) vs scalar (`simulate_point` loop) fast
//! path, on the folded-cascode testbench of example 1.
//!
//! Runs as a plain `harness = false` benchmark (the environment has no real
//! criterion) and emits a machine-readable `BENCH_runtime.json` at the
//! workspace root alongside the human-readable report. CI gates on the
//! `batch_speedup` field.
//!
//! Pass `--samples <n>` / `--designs <n>` / `--reps <n>` to change the load.

use moheco::runtime::{
    EngineConfig, EvalEngine, McRequest, ParallelEngine, SerialEngine, SimulationModel,
};
use moheco::{CircuitBench, YieldProblem};
use moheco_analog::{FoldedCascode, Testbench};
use std::sync::Arc;
use std::time::Instant;

/// Hides the model's `simulate_block` override so the engine falls back to
/// the trait's default scalar loop — the pre-batching reference path.
struct ScalarizeModel<'a>(&'a dyn SimulationModel);

impl SimulationModel for ScalarizeModel<'_> {
    fn unit_dimension(&self) -> usize {
        self.0.unit_dimension()
    }
    fn simulate_point(&self, x: &[f64], u: &[f64]) -> f64 {
        self.0.simulate_point(x, u)
    }
    fn nominal(&self, x: &[f64]) -> Vec<f64> {
        self.0.nominal(x)
    }
    fn importance_shift(&self, x: &[f64]) -> Option<Vec<f64>> {
        self.0.importance_shift(x)
    }
}

/// One timed pass: evaluate `designs × samples` Monte-Carlo outcomes as one
/// batch. Returns wall nanoseconds.
fn timed_batch(
    problem: &YieldProblem<moheco::CircuitBench<FoldedCascode>>,
    designs: &[Vec<f64>],
    samples: usize,
) -> u64 {
    let requests: Vec<McRequest> = designs
        .iter()
        .map(|x| McRequest::new(x.clone(), 0, samples))
        .collect();
    let start = Instant::now();
    let outcomes = problem.outcomes_batch(&requests);
    let elapsed = start.elapsed().as_nanos() as u64;
    assert_eq!(outcomes.len(), designs.len());
    elapsed
}

/// Cold pass through a fresh single-worker serial engine, dispatching either
/// the batched model or its scalarized wrapper. Isolates the `simulate_block`
/// fast path from parallelism and cache effects.
fn timed_cold_dispatch(designs: &[Vec<f64>], samples: usize, scalarize: bool) -> u64 {
    let bench = CircuitBench::new(FoldedCascode::new());
    let engine = SerialEngine::new(EngineConfig::default());
    let requests: Vec<McRequest> = designs
        .iter()
        .map(|x| McRequest::new(x.clone(), 0, samples))
        .collect();
    let start = Instant::now();
    let outcomes = if scalarize {
        let wrapped = ScalarizeModel(&bench);
        engine.mc_outcomes(&wrapped, &requests)
    } else {
        engine.mc_outcomes(&bench, &requests)
    };
    let elapsed = start.elapsed().as_nanos() as u64;
    assert_eq!(outcomes.len(), designs.len());
    elapsed
}

/// Times the AC-sweep kernel alone — scalar `ac::sweep` vs the batched
/// `FactorizedCircuit::sweep` — on the folded-cascode half circuit at the
/// same size the testbench stamps it (four nodes plus the stimulus branch,
/// 50 frequency points). This isolates the SIMD LU fast path from the
/// bias-point solve and engine plumbing that both dispatch paths share.
fn timed_kernel_sweep(reps: usize) -> (u64, u64) {
    use spicelite::ac::{log_space, sweep};
    use spicelite::{FactorizedCircuit, LinearCircuit};
    let mut ckt = LinearCircuit::new();
    let vin = ckt.node();
    let fold = ckt.node();
    let out = ckt.node();
    let casn = ckt.node();
    ckt.add_vsource(vin, 0, 1.0);
    // Input device folded onto the PMOS cascode, NMOS mirror below.
    ckt.add_mos_small_signal(
        fold, vin, 0, 0, 1.1e-3, 9e-6, 0.0, 9e-14, 1.1e-14, 2e-14, 2e-14,
    );
    ckt.add_conductance(fold, 0, 1.2e-5);
    ckt.add_capacitance(fold, 0, 3.4e-14);
    ckt.add_mos_small_signal(
        out, 0, fold, 0, 8e-4, 7e-6, 1.9e-4, 7e-14, 1e-14, 1.8e-14, 1.8e-14,
    );
    ckt.add_mos_small_signal(
        out, 0, casn, 0, 9e-4, 8e-6, 2.1e-4, 8e-14, 1e-14, 1.9e-14, 1.9e-14,
    );
    ckt.add_conductance(casn, 0, 1.4e-5);
    ckt.add_capacitance(casn, 0, 3.1e-14);
    ckt.add_capacitance(out, 0, 2e-12);
    let freqs = log_space(1e3, 3e10, 50);
    let n = 400usize;

    let mut scalar = Vec::new();
    let mut batched = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        let mut acc = 0.0;
        for _ in 0..n {
            acc += sweep(&ckt, out, &freqs).unwrap().dc_gain_db();
        }
        scalar.push(start.elapsed().as_nanos() as u64 / n as u64);
        assert!(acc.is_finite());

        let mut fac = FactorizedCircuit::new(&ckt);
        let start = Instant::now();
        let mut acc_b = 0.0;
        for _ in 0..n {
            acc_b += fac.sweep(&ckt, out, &freqs).unwrap().dc_gain_db();
        }
        batched.push(start.elapsed().as_nanos() as u64 / n as u64);
        assert_eq!(acc.to_bits(), acc_b.to_bits(), "kernel paths must agree");
    }
    (median(scalar), median(batched))
}

fn build_designs(n: usize) -> Vec<Vec<f64>> {
    let reference = FoldedCascode::new().reference_design();
    (0..n)
        .map(|i| {
            let mut x = reference.clone();
            x[8] = 120.0 + 3.0 * i as f64; // spread of tail currents
            x
        })
        .collect()
}

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let designs_n = arg("--designs", 8);
    let samples = arg("--samples", 150);
    let reps = arg("--reps", 5);
    assert!(
        reps >= 2,
        "engine_throughput needs at least 2 repetitions for a stable median \
         (got --reps {reps})"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let designs = build_designs(designs_n);
    let total = designs_n * samples;

    // Cold-cache passes use a fresh engine per repetition so every sample is
    // a cache miss; the immediate second pass on the same engine is the pure
    // cache-hit path.
    let mut serial_cold = Vec::new();
    let mut parallel_cold = Vec::new();
    let mut serial_warm = Vec::new();
    let mut parallel_warm = Vec::new();
    let mut scalar_cold = Vec::new();
    let mut batched_cold = Vec::new();
    for _ in 0..reps {
        let problem = YieldProblem::with_engine(
            FoldedCascode::new(),
            Arc::new(SerialEngine::new(EngineConfig::default())),
        );
        serial_cold.push(timed_batch(&problem, &designs, samples));
        serial_warm.push(timed_batch(&problem, &designs, samples));

        let problem = YieldProblem::with_engine(
            FoldedCascode::new(),
            Arc::new(ParallelEngine::new(EngineConfig::default())),
        );
        parallel_cold.push(timed_batch(&problem, &designs, samples));
        parallel_warm.push(timed_batch(&problem, &designs, samples));

        scalar_cold.push(timed_cold_dispatch(&designs, samples, true));
        batched_cold.push(timed_cold_dispatch(&designs, samples, false));
    }
    let (sweep_scalar, sweep_batched) = timed_kernel_sweep(reps);

    // A final instrumented pass for the stats block.
    let instrumented = YieldProblem::with_engine(
        FoldedCascode::new(),
        Arc::new(ParallelEngine::new(EngineConfig::default())),
    );
    let _ = timed_batch(&instrumented, &designs, samples);
    let _ = timed_batch(&instrumented, &designs, samples);
    let stats = instrumented.engine_stats();

    let s_cold = median(serial_cold);
    let p_cold = median(parallel_cold);
    let s_warm = median(serial_warm);
    let p_warm = median(parallel_warm);
    let sc_cold = median(scalar_cold);
    let b_cold = median(batched_cold);
    let speedup = s_cold as f64 / p_cold.max(1) as f64;
    let hit_speedup = s_cold as f64 / s_warm.max(1) as f64;
    let batch_speedup = sc_cold as f64 / b_cold.max(1) as f64;
    let kernel_sweep_speedup = sweep_scalar as f64 / sweep_batched.max(1) as f64;
    let scalar_per_sample = sc_cold as f64 / total.max(1) as f64;
    let batched_per_sample = b_cold as f64 / total.max(1) as f64;

    println!(
        "engine_throughput: {designs_n} designs x {samples} samples = {total} simulations/batch, {reps} reps, {cores} core(s)"
    );
    println!(
        "  serial   cold {:>10.3} ms   warm {:>10.3} ms",
        s_cold as f64 / 1e6,
        s_warm as f64 / 1e6
    );
    println!(
        "  parallel cold {:>10.3} ms   warm {:>10.3} ms",
        p_cold as f64 / 1e6,
        p_warm as f64 / 1e6
    );
    println!(
        "  1-core dispatch: scalar cold {:>10.3} ms ({:.0} ns/sample)   batched cold {:>10.3} ms ({:.0} ns/sample)",
        sc_cold as f64 / 1e6,
        scalar_per_sample,
        b_cold as f64 / 1e6,
        batched_per_sample
    );
    println!("  batched/scalar speedup (cold, 1 core): {batch_speedup:.2}x");
    println!(
        "  AC-sweep kernel alone: scalar {sweep_scalar} ns/sweep   batched {sweep_batched} ns/sweep   ({kernel_sweep_speedup:.2}x)"
    );
    println!("  parallel/serial speedup (cold): {speedup:.2}x  (machine has {cores} core(s))");
    println!("  cache hit/miss speedup (serial): {hit_speedup:.2}x");
    println!("  instrumented pass: {stats}");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"engine_throughput\",\n",
            "  \"circuit\": \"folded_cascode_035\",\n",
            "  \"cores\": {},\n",
            "  \"designs\": {},\n",
            "  \"samples_per_design\": {},\n",
            "  \"simulations_per_batch\": {},\n",
            "  \"reps\": {},\n",
            "  \"serial_cold_ns\": {},\n",
            "  \"parallel_cold_ns\": {},\n",
            "  \"serial_warm_ns\": {},\n",
            "  \"parallel_warm_ns\": {},\n",
            "  \"scalar_cold_ns\": {},\n",
            "  \"batched_cold_ns\": {},\n",
            "  \"scalar_per_sample_ns\": {:.1},\n",
            "  \"batched_per_sample_ns\": {:.1},\n",
            "  \"batch_speedup\": {:.4},\n",
            "  \"scalar_sweep_ns\": {},\n",
            "  \"batched_sweep_ns\": {},\n",
            "  \"kernel_sweep_speedup\": {:.4},\n",
            "  \"parallel_speedup\": {:.4},\n",
            "  \"cache_hit_speedup\": {:.4},\n",
            "  \"engine_stats\": {}\n",
            "}}\n"
        ),
        cores,
        designs_n,
        samples,
        total,
        reps,
        s_cold,
        p_cold,
        s_warm,
        p_warm,
        sc_cold,
        b_cold,
        scalar_per_sample,
        batched_per_sample,
        batch_speedup,
        sweep_scalar,
        sweep_batched,
        kernel_sweep_speedup,
        speedup,
        hit_speedup,
        stats.to_json(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
