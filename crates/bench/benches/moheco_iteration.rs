//! Benchmarks a complete (scaled-down) yield-optimization run of MOHECO
//! against the fixed-budget baseline — the end-to-end cost behind the 7×
//! speed-up claim of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use moheco::{MohecoConfig, YieldOptimizer, YieldProblem};
use moheco_analog::FoldedCascode;
use moheco_sampling::SamplingPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn tiny_config() -> MohecoConfig {
    MohecoConfig {
        population_size: 8,
        n0: 4,
        sim_ave: 10,
        delta: 6,
        n_max: 40,
        max_generations: 4,
        stop_stagnation: 4,
        nm_iterations: 3,
        ..MohecoConfig::fast()
    }
}

fn bench_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("moheco_iteration");
    group.sample_size(10);

    group.bench_function("moheco_run", |b| {
        let optimizer = YieldOptimizer::new(tiny_config());
        b.iter(|| {
            let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
            let mut rng = StdRng::seed_from_u64(2);
            black_box(optimizer.run(&problem, &mut rng))
        })
    });

    group.bench_function("fixed_budget_run", |b| {
        let optimizer = YieldOptimizer::new(tiny_config().as_fixed_budget(40));
        b.iter(|| {
            let problem = YieldProblem::new(FoldedCascode::new(), SamplingPlan::LatinHypercube);
            let mut rng = StdRng::seed_from_u64(2);
            black_box(optimizer.run(&problem, &mut rng))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_runs);
criterion_main!(benches);
