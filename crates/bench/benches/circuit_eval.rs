//! Benchmarks the circuit evaluators (the substitute for HSPICE): one full
//! performance evaluation of each benchmark amplifier at a random process
//! sample. Every number in Tables 1-4 is a multiple of this cost.

use criterion::{criterion_group, criterion_main, Criterion};
use moheco_analog::{FoldedCascode, TelescopicTwoStage, Testbench};
use moheco_process::ProcessSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_eval");
    group.sample_size(40);

    let fc = FoldedCascode::new();
    let fc_x = fc.reference_design();
    let fc_sampler = ProcessSampler::new(fc.technology().clone(), fc.num_devices());
    let mut rng = StdRng::seed_from_u64(3);
    let fc_samples: Vec<_> = (0..64).map(|_| fc_sampler.sample(&mut rng)).collect();
    let mut i = 0usize;
    group.bench_function("folded_cascode_035", |b| {
        b.iter(|| {
            i = (i + 1) % fc_samples.len();
            black_box(fc.evaluate(black_box(&fc_x), &fc_samples[i]))
        })
    });

    let ts = TelescopicTwoStage::new();
    let ts_x = ts.reference_design();
    let ts_sampler = ProcessSampler::new(ts.technology().clone(), ts.num_devices());
    let ts_samples: Vec<_> = (0..64).map(|_| ts_sampler.sample(&mut rng)).collect();
    let mut j = 0usize;
    group.bench_function("telescopic_two_stage_90nm", |b| {
        b.iter(|| {
            j = (j + 1) % ts_samples.len();
            black_box(ts.evaluate(black_box(&ts_x), &ts_samples[j]))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_circuits);
criterion_main!(benches);
