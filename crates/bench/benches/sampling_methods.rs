//! Benchmarks the sampling-plan generators (primitive Monte Carlo vs Latin
//! Hypercube) at the statistical dimensions of the two benchmark circuits
//! (80 and 123 variables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moheco_sampling::{latin_hypercube, primitive_monte_carlo};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_methods");
    group.sample_size(30);
    for &dim in &[80usize, 123] {
        group.bench_with_input(BenchmarkId::new("pmc", dim), &dim, |b, &dim| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| primitive_monte_carlo(&mut rng, black_box(500), black_box(dim)))
        });
        group.bench_with_input(BenchmarkId::new("lhs", dim), &dim, |b, &dim| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| latin_hypercube(&mut rng, black_box(500), black_box(dim)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
