//! The unified experiment harness behind the `moheco-run` binary.
//!
//! [`RunSpec`] executes one (scenario, algorithm, budget, seed, engine)
//! combination through the PR-1 evaluation engine and condenses it into one
//! [`ScenarioResult`]:
//!
//! ```text
//! RunSpec::new(scenario, algo)
//!     .budget(..).seed(..).estimator(..).prescreen(..)
//!     .tracer(..).engine(..)        // all optional
//!     .execute()
//! ```
//!
//! The historical `run_scenario*` free functions remain as one-line
//! deprecated shims over the builder for one release. Four algorithms are
//! exposed:
//!
//! * `memetic` — full MOHECO (two-stage OO estimation + DE/NM search);
//! * `two-stage` — OO + AS + LHS without the memetic operator;
//! * `de` / `ga` — plain Differential Evolution / Genetic Algorithm over a
//!   fixed-budget yield objective (the `AS + LHS` baseline family), routed
//!   through the same engine so cache hits and simulation counts stay
//!   comparable.

use crate::results::{trace_digest, ScenarioResult};
use crate::EngineKind;
use moheco::{
    Benchmark, MohecoConfig, PrescreenConfig, PrescreenKind, YieldOptimizer, YieldProblem,
    YieldStrategy,
};
use moheco_obs::{Span, Tracer};
use moheco_optim::de::{DeConfig, DifferentialEvolution};
use moheco_optim::filter::{AdmitAll, TrialFilter};
use moheco_optim::ga::{GaConfig, GeneticAlgorithm};
use moheco_optim::problem::{Evaluation, Problem};
use moheco_optim::result::OptimizationResult;
use moheco_runtime::EvalEngine;
use moheco_sampling::{EstimatorKind, Z_95};
use moheco_scenarios::Scenario;
use moheco_surrogate::{PrescreenModel, RsbPrescreen};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// The algorithms `moheco-run --algo` accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algo {
    /// Plain DE over a fixed-budget yield objective.
    De,
    /// Plain GA over a fixed-budget yield objective.
    Ga,
    /// Full MOHECO (two-stage OO + memetic DE/NM).
    #[default]
    Memetic,
    /// Two-stage OO estimation without the memetic operator.
    TwoStage,
}

impl Algo {
    /// Parses a `--algo` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "de" => Some(Self::De),
            "ga" => Some(Self::Ga),
            "memetic" => Some(Self::Memetic),
            "two-stage" => Some(Self::TwoStage),
            _ => None,
        }
    }

    /// The stable label used in results and file names.
    pub fn label(&self) -> &'static str {
        match self {
            Self::De => "de",
            Self::Ga => "ga",
            Self::Memetic => "memetic",
            Self::TwoStage => "two-stage",
        }
    }
}

/// The budget classes `moheco-run --budget` accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BudgetClass {
    /// Minimal settings for unit tests (seconds per scenario).
    Tiny,
    /// CI smoke settings: big enough for meaningful yields, small enough to
    /// run the whole registry on every push.
    #[default]
    Small,
    /// The paper's full-scale settings.
    Paper,
}

impl BudgetClass {
    /// Every class in escalation order, cheapest first.
    pub const LADDER: [BudgetClass; 3] = [Self::Tiny, Self::Small, Self::Paper];

    /// Position of this class on [`Self::LADDER`].
    pub fn rung(&self) -> usize {
        Self::LADDER
            .iter()
            .position(|c| c == self)
            .expect("every class is on the ladder")
    }

    /// The escalation ladder from `Tiny` up to (and including) this class.
    pub fn ladder_to(self) -> Vec<BudgetClass> {
        Self::LADDER[..=self.rung()].to_vec()
    }

    /// Parses a `--budget` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tiny" => Some(Self::Tiny),
            "small" => Some(Self::Small),
            "paper" => Some(Self::Paper),
            _ => None,
        }
    }

    /// The stable label used in results.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Tiny => "tiny",
            Self::Small => "small",
            Self::Paper => "paper",
        }
    }

    /// The optimizer configuration of this budget class.
    pub fn config(&self) -> MohecoConfig {
        match self {
            Self::Tiny => MohecoConfig {
                population_size: 8,
                n0: 4,
                sim_ave: 10,
                delta: 6,
                n_max: 40,
                max_generations: 4,
                stop_stagnation: 3,
                nm_iterations: 3,
                ..MohecoConfig::fast()
            },
            Self::Small => MohecoConfig {
                population_size: 10,
                n0: 5,
                sim_ave: 14,
                delta: 8,
                n_max: 80,
                max_generations: 8,
                stop_stagnation: 5,
                nm_iterations: 4,
                ..MohecoConfig::fast()
            },
            Self::Paper => MohecoConfig::paper(),
        }
    }

    /// Samples per feasible candidate for the fixed-budget `de` / `ga`
    /// objective (the mid-range `AS + LHS` baseline of this scale).
    pub fn fixed_sims(&self) -> usize {
        match self {
            Self::Tiny => 20,
            Self::Small => 40,
            Self::Paper => 500,
        }
    }
}

/// A fixed-budget yield-maximisation objective over a [`YieldProblem`],
/// exposed through the `moheco-optim` [`Problem`] trait so the plain DE/GA
/// engines can run on any registered scenario.
struct YieldSearchProblem<'a> {
    problem: &'a YieldProblem<dyn Benchmark>,
    samples: usize,
}

impl Problem for YieldSearchProblem<'_> {
    fn dimension(&self) -> usize {
        self.problem.dimension()
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.problem.bounds()
    }

    fn evaluate(&mut self, x: &[f64]) -> Evaluation {
        self.evaluate_batch(std::slice::from_ref(&x.to_vec()))
            .pop()
            .expect("one design yields one evaluation")
    }

    fn evaluate_batch(&mut self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        let reports = self.problem.feasibility_batch(xs);
        xs.iter()
            .zip(reports)
            .map(|(x, rep)| {
                if rep.is_feasible() {
                    let est = self.problem.estimate_yield(x, self.samples, rep.decision);
                    Evaluation::feasible(-est.value())
                } else {
                    Evaluation::new(f64::INFINITY, rep.violation.max(1e-12))
                }
            })
            .collect()
    }
}

/// A [`TrialFilter`] over a yield-search problem backed by an online
/// surrogate: trial candidates predicted far below the incumbent yield are
/// rejected before their fixed-budget Monte-Carlo estimate is paid.
///
/// This is the DE/GA counterpart of the two-stage prescreen in
/// `moheco::prescreen` and follows the same policy: observations come only
/// from *measured* evaluations, the screen stays inactive until the model
/// has trained, and every `explore_every`-th generation bypasses it.
struct SurrogateTrialFilter {
    model: Box<dyn PrescreenModel>,
    margin: f64,
    explore_every: usize,
    refit_every: usize,
    incumbent: f64,
    skips: u64,
}

impl SurrogateTrialFilter {
    fn new(config: &PrescreenConfig) -> Self {
        config.validate();
        Self {
            model: Box::new(
                RsbPrescreen::new(config.seed).with_min_observations(config.min_observations),
            ),
            margin: config.margin,
            explore_every: config.explore_every,
            refit_every: config.refit_every,
            incumbent: 0.0,
            skips: 0,
        }
    }
}

impl TrialFilter for SurrogateTrialFilter {
    fn admit(&mut self, generation: usize, trials: &[Vec<f64>]) -> Vec<bool> {
        // admit() is called exactly once per generation, so the refit
        // cadence mirrors Prescreener::absorb.
        if generation.is_multiple_of(self.refit_every) {
            self.model.refit();
        }
        if generation.is_multiple_of(self.explore_every) || !self.model.ready() {
            return vec![true; trials.len()];
        }
        let threshold = self.incumbent - self.margin;
        trials
            .iter()
            .map(|x| {
                let keep = match self.model.predict(x) {
                    Some(pred) => pred >= threshold,
                    None => true,
                };
                if !keep {
                    self.skips += 1;
                }
                keep
            })
            .collect()
    }

    fn observe(&mut self, x: &[f64], eval: &Evaluation) {
        if eval.is_feasible() {
            let y = (-eval.objective).clamp(0.0, 1.0);
            self.model.observe(x, y);
            if y > self.incumbent {
                self.incumbent = y;
            }
        }
    }
}

/// A fully-specified single experiment run, built incrementally and executed
/// with [`RunSpec::execute`] — the one entry point every binary, test and the
/// job server drive runs through.
///
/// Defaults mirror `moheco-run`'s: [`BudgetClass::Small`], seed 1, serial
/// engine, plain Monte-Carlo estimator, no prescreen, disabled tracer.
///
/// Two engine modes:
///
/// * **Owned** (default): `execute()` builds a fresh engine of
///   [`RunSpec::engine_kind`] seeded with the run seed and configured with
///   the requested estimator.
/// * **Pooled** ([`RunSpec::engine`]): the run executes on a caller-provided
///   long-lived engine (the campaign/server pools). The caller is
///   responsible for the engine's state between runs
///   ([`moheco_runtime::EvalEngine::reseed`] plus `reset()` or
///   `reset_counters()`); `execute()` only checks that the engine's active
///   seed matches the run seed, because a mismatch would silently produce
///   the wrong sample streams. In this mode the estimator is read from the
///   engine's configuration (the estimator shapes the cached sample blocks,
///   so it cannot differ from what the pool built).
pub struct RunSpec<'a> {
    scenario: &'a dyn Scenario,
    algo: Algo,
    budget: BudgetClass,
    seed: u64,
    engine_kind: EngineKind,
    estimator: EstimatorKind,
    prescreen: PrescreenKind,
    tracer: Tracer,
    engine: Option<Arc<dyn EvalEngine>>,
    engine_label: Option<String>,
}

impl<'a> RunSpec<'a> {
    /// Starts a run specification with the default budget, seed, engine,
    /// estimator and prescreen.
    pub fn new(scenario: &'a dyn Scenario, algo: Algo) -> Self {
        Self {
            scenario,
            algo,
            budget: BudgetClass::default(),
            seed: 1,
            engine_kind: EngineKind::default(),
            estimator: EstimatorKind::default(),
            prescreen: PrescreenKind::default(),
            tracer: Tracer::disabled(),
            engine: None,
            engine_label: None,
        }
    }

    /// Sets the budget class.
    pub fn budget(mut self, budget: BudgetClass) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the run seed (search RNG, engine streams and prescreen model).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the engine implementation built by `execute()` (ignored when
    /// a prebuilt engine is supplied via [`RunSpec::engine`]).
    pub fn engine_kind(mut self, kind: EngineKind) -> Self {
        self.engine_kind = kind;
        self
    }

    /// Sets the variance-reduction estimator (ignored when a prebuilt
    /// engine is supplied — the engine's configured estimator wins, because
    /// it already shaped the cached sample blocks).
    pub fn estimator(mut self, estimator: EstimatorKind) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the surrogate prescreen mode.
    pub fn prescreen(mut self, prescreen: PrescreenKind) -> Self {
        self.prescreen = prescreen;
        self
    }

    /// Runs under an observability [`Tracer`]: the whole run becomes a
    /// `"run"` root span, the engine's counters are probed at every span
    /// boundary (so each phase is charged exactly the simulations it
    /// spent), and a final `run_summary` event records the run identity
    /// plus the engine totals for downstream reconciliation
    /// (`moheco-profile --check`). With [`Tracer::disabled`] (the default)
    /// results are bit-identical and no collector traffic occurs.
    pub fn tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    /// Runs on a *prebuilt* long-lived engine (the campaign/server pools)
    /// instead of a fresh one. The result's `engine` label defaults to
    /// [`moheco_runtime::EvalEngine::name`]; override it with
    /// [`RunSpec::engine_label`].
    pub fn engine(mut self, engine: Arc<dyn EvalEngine>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Overrides the engine label recorded in the result row.
    pub fn engine_label(mut self, label: &str) -> Self {
        self.engine_label = Some(label.to_string());
        self
    }

    /// Executes the run and condenses it into the machine-readable result
    /// record (including the estimator's 95 % CI half-width for the final
    /// yield estimate).
    ///
    /// With a prescreen, the `memetic` / `two-stage` algorithms demote
    /// predicted-poor candidates out of the stage-1 OCBA round (see
    /// `moheco::prescreen`), while `de` / `ga` gate their trial vectors
    /// through a [`TrialFilter`] so rejected trials never buy their fixed
    /// Monte-Carlo budget. The surrogate is seeded from the run seed, so
    /// results stay deterministic in
    /// `(scenario, algo, budget, seed, estimator, prescreen)`.
    ///
    /// # Panics
    ///
    /// Panics if a prebuilt engine was supplied whose
    /// `active_seed()` does not match the run seed.
    pub fn execute(self) -> ScenarioResult {
        let Self {
            scenario,
            algo,
            budget,
            seed,
            engine_kind,
            estimator,
            prescreen,
            tracer,
            engine,
            engine_label,
        } = self;
        let tracer = &tracer;
        let (engine, estimator, engine_label) = match engine {
            Some(engine) => {
                assert_eq!(
                    engine.active_seed(),
                    seed,
                    "engine active seed does not match the run seed"
                );
                let estimator = engine.config().estimator;
                let label = engine_label.unwrap_or_else(|| engine.name().to_string());
                (engine, estimator, label)
            }
            None => {
                let engine = engine_kind.build_configured(seed, estimator);
                let label = engine_label.unwrap_or_else(|| engine_kind.label().to_string());
                (engine, estimator, label)
            }
        };
        // The probe must be wired before the root span opens so the counter
        // baseline predates every attribution boundary; scenario
        // construction runs no simulations, so the root span still covers
        // the whole spend.
        moheco_runtime::attach_engine_probe(tracer, &engine);
        let run_span = Span::enter(tracer, "run");
        let problem = scenario.build(engine).with_tracer(tracer.clone());
        let config = budget.config();
        let prescreen_config = PrescreenConfig {
            seed,
            ..PrescreenConfig::of_kind(prescreen)
        };
        let started = Instant::now();

        let (
            best_x,
            best_yield,
            ci_half_width,
            feasible,
            generations,
            local_searches,
            prescreen_skips,
            digest,
        ) = match algo {
            Algo::Memetic | Algo::TwoStage => {
                let config = if algo == Algo::Memetic {
                    MohecoConfig {
                        memetic_enabled: true,
                        strategy: YieldStrategy::TwoStageOo,
                        ..config
                    }
                } else {
                    config.as_oo_without_memetic()
                };
                let config = config.with_prescreen(prescreen_config);
                let optimizer = YieldOptimizer::new(config);
                let mut rng = StdRng::seed_from_u64(seed);
                let result = optimizer.run_from(&problem, &scenario.warm_start(), &mut rng);
                let digest = trace_digest(
                    result
                        .trace
                        .records
                        .iter()
                        .flat_map(|r| [r.best_yield, r.simulations_so_far as f64]),
                );
                let feasible = problem.feasibility(&result.best_x).is_feasible();
                (
                    result.best_x,
                    result.reported_yield,
                    result.best_report.half_width(Z_95),
                    feasible,
                    result.generations,
                    result.local_searches,
                    result.prescreen_stats.screened_out,
                    digest,
                )
            }
            Algo::De | Algo::Ga => {
                let mut search = YieldSearchProblem {
                    problem: &problem,
                    samples: budget.fixed_sims(),
                };
                let mut rng = StdRng::seed_from_u64(seed);
                let mut filter: Option<SurrogateTrialFilter> = match prescreen {
                    PrescreenKind::Off => None,
                    PrescreenKind::Rsb => Some(SurrogateTrialFilter::new(&prescreen_config)),
                };
                let result: OptimizationResult = if algo == Algo::De {
                    let de = DifferentialEvolution::new(DeConfig {
                        population_size: config.population_size,
                        f: config.de_f,
                        cr: config.de_cr,
                        max_generations: config.max_generations,
                        stagnation_limit: Some(config.stop_stagnation),
                        target_objective: None,
                        ..DeConfig::default()
                    });
                    match filter.as_mut() {
                        Some(f) => de.run_traced_filtered(&mut search, f, tracer, &mut rng),
                        None => {
                            de.run_traced_filtered(&mut search, &mut AdmitAll, tracer, &mut rng)
                        }
                    }
                } else {
                    let ga = GeneticAlgorithm::new(GaConfig {
                        population_size: config.population_size,
                        max_generations: config.max_generations,
                        stagnation_limit: Some(config.stop_stagnation),
                        target_objective: None,
                        ..GaConfig::default()
                    });
                    match filter.as_mut() {
                        Some(f) => ga.run_traced_filtered(&mut search, f, tracer, &mut rng),
                        None => {
                            ga.run_traced_filtered(&mut search, &mut AdmitAll, tracer, &mut rng)
                        }
                    }
                };
                let digest = trace_digest(result.history.iter().copied());
                let best_x = result.best.x.clone();
                // Final report at the accurate n_max budget, like the MOHECO
                // variants (served partly from the engine cache).
                let report_span = Span::enter(tracer, "final_report");
                let rep = problem.feasibility(&best_x);
                let (best_yield, ci, feasible) = if rep.is_feasible() {
                    let est = problem.estimate_with_ci(&best_x, config.n_max, rep.decision);
                    (est.value, est.half_width(Z_95), true)
                } else {
                    (0.0, 0.0, false)
                };
                drop(report_span);
                (
                    best_x,
                    best_yield,
                    ci,
                    feasible,
                    result.generations,
                    0,
                    filter.map(|f| f.skips).unwrap_or(0),
                    digest,
                )
            }
        };

        drop(run_span);
        let wall_time_ms = started.elapsed().as_secs_f64() * 1e3;
        let true_yield = problem.true_yield(&best_x);
        let bench = scenario.bench();
        let engine_stats = problem.engine_stats();
        if tracer.is_enabled() {
            tracer.emit(
                "run_summary",
                &[
                    ("scenario", scenario.name().to_string()),
                    ("algo", algo.label().to_string()),
                    ("budget", budget.label().to_string()),
                    ("seed", seed.to_string()),
                    ("best_yield", crate::results::fmt_f64(best_yield)),
                    ("simulations_run", engine_stats.simulations_run.to_string()),
                    ("cache_hits", engine_stats.cache_hits.to_string()),
                ],
            );
            tracer.flush();
        }
        ScenarioResult {
            scenario: scenario.name().to_string(),
            algo: algo.label().to_string(),
            budget: budget.label().to_string(),
            engine: engine_label,
            estimator: estimator.label().to_string(),
            prescreen: prescreen.label().to_string(),
            seed,
            dimension: bench.dimension() as u64,
            statistical_dimension: bench.unit_dimension() as u64,
            feasible,
            best_yield,
            ci_half_width,
            true_yield,
            true_yield_abs_error: true_yield.map(|t| (best_yield - t).abs()),
            simulations: problem.simulations(),
            generations: generations as u64,
            local_searches: local_searches as u64,
            prescreen_skips,
            trace_digest: digest,
            wall_time_ms,
            engine_stats,
            engine_timing: problem.engine().timing(),
            phase_breakdown: tracer.breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::parse_flat_json;
    use moheco_scenarios::find_scenario;

    #[test]
    fn algo_and_budget_labels_roundtrip() {
        for algo in [Algo::De, Algo::Ga, Algo::Memetic, Algo::TwoStage] {
            assert_eq!(Algo::parse(algo.label()), Some(algo));
        }
        assert_eq!(Algo::parse("bogus"), None);
        for budget in [BudgetClass::Tiny, BudgetClass::Small, BudgetClass::Paper] {
            assert_eq!(BudgetClass::parse(budget.label()), Some(budget));
            budget.config().validate();
        }
        assert_eq!(BudgetClass::parse("huge"), None);
    }

    #[test]
    fn tiny_memetic_run_produces_a_consistent_result() {
        let scenario = find_scenario("margin_wall").expect("registered");
        let r = RunSpec::new(scenario.as_ref(), Algo::Memetic)
            .budget(BudgetClass::Tiny)
            .seed(1)
            .execute();
        assert_eq!(r.scenario, "margin_wall");
        assert!(r.simulations > 0);
        assert!(r.generations >= 1);
        assert!((0.0..=1.0).contains(&r.best_yield));
        assert!(r.true_yield.is_some(), "synthetic scenario has a truth");
        let parsed = parse_flat_json(&r.to_json()).expect("schema is well-formed");
        assert_eq!(parsed.str("algo"), Some("memetic"));
        assert_eq!(parsed.num("seed"), Some(1.0));
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let scenario = find_scenario("quadratic_feasibility").expect("registered");
        let run = |seed| {
            RunSpec::new(scenario.as_ref(), Algo::TwoStage)
                .budget(BudgetClass::Tiny)
                .seed(seed)
                .execute()
        };
        let (a, b, c) = (run(5), run(5), run(6));
        assert_eq!(a.best_yield, b.best_yield);
        assert_eq!(a.trace_digest, b.trace_digest);
        assert_eq!(a.simulations, b.simulations);
        assert!(
            c.trace_digest != a.trace_digest || c.simulations != a.simulations,
            "different seeds should differ"
        );
    }

    #[test]
    fn de_and_ga_report_an_accurate_final_estimate() {
        let scenario = find_scenario("margin_wall").expect("registered");
        for algo in [Algo::De, Algo::Ga] {
            let r = RunSpec::new(scenario.as_ref(), algo)
                .budget(BudgetClass::Tiny)
                .seed(2)
                .execute();
            assert_eq!(r.algo, algo.label());
            assert!(r.simulations > 0, "{}", algo.label());
            assert_eq!(r.local_searches, 0);
            if r.feasible {
                let err = r.true_yield_abs_error.expect("synthetic truth");
                assert!(err < 0.35, "{}: error {err}", algo.label());
            }
        }
    }
}
