//! [`JobSpec`] — the one serializable description of a scenario × algorithm
//! × seed grid, shared verbatim by `moheco-campaign` (CLI), `moheco-run`
//! (CLI) and `moheco-serve` (HTTP `POST /jobs` bodies).
//!
//! A spec names its scenarios (resolution against the registry happens at
//! execution time), so the same object round-trips through the flat-JSON
//! wire format: [`JobSpec::to_json`] / [`JobSpec::parse`] are inverses. The
//! `.spec` sidecar fingerprint that pins a campaign JSONL file's counter
//! regime ([`JobSpec::fingerprint`]) is computed here and **only** here —
//! the CLI and the HTTP server can never drift apart on what "the same
//! campaign" means.

use crate::results::{parse_flat_json, SCHEMA_VERSION};
use crate::{Algo, BudgetClass, EngineKind};
use moheco::PrescreenKind;
use moheco_sampling::EstimatorKind;
use moheco_scenarios::{find_scenario, Scenario};
use std::collections::HashSet;
use std::sync::Arc;

/// How the per-scenario engine is prepared between campaign cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineReuse {
    /// Reseed + full reset before every cell: rows are bit-identical to
    /// standalone `moheco-run` invocations (the default, and the mode the
    /// determinism acceptance tests pin down).
    #[default]
    Reset,
    /// Reseed + counter reset only, keeping the cache warm across cells.
    /// Yields and search trajectories are unchanged (streams are seed-keyed
    /// pure functions), but executed-simulation counters shrink, so rows are
    /// *not* byte-comparable to standalone runs — and a *resumed*
    /// shared-cache campaign re-runs its remaining cells against a colder
    /// cache than an uninterrupted one would, so only the yield/trajectory
    /// fields of post-resume rows are reproducible, not the counters.
    /// Combine with [`JobSpec::max_cached_blocks`] to bound the long-lived
    /// memory.
    SharedCache,
}

impl EngineReuse {
    /// Parses a `--engine-reuse` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "reset" => Some(Self::Reset),
            "shared-cache" => Some(Self::SharedCache),
            _ => None,
        }
    }

    /// The stable label.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Reset => "reset",
            Self::SharedCache => "shared-cache",
        }
    }
}

/// Which [`crate::schedule::CampaignScheduler`] drives the campaign's cell
/// order and seed counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleKind {
    /// The full scenario × algo × seed rectangle in grid order (the default,
    /// bit-identical to the historical triple-nested loop).
    #[default]
    Fixed,
    /// OCBA over the campaign: seed replications flow to the noisy
    /// (scenario, algo) groups after a min-seeds floor, and a group stops
    /// early once its cross-seed CI half-width clears the gate threshold.
    Ocba,
    /// `Ocba` plus budget-class shrinking: every group starts at the bottom
    /// of the tiny→small→paper ladder and escalates toward the spec budget
    /// only while its cross-seed CI at the current class has not cleared the
    /// gate — groups whose cheap pilot already resolves the yield never buy
    /// the expensive class at all. Replications at the spec budget are then
    /// allocated cost-aware (observed simulations per cell).
    OcbaShrink,
}

impl ScheduleKind {
    /// Parses a `--schedule` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fixed" => Some(Self::Fixed),
            "ocba" => Some(Self::Ocba),
            "ocba-shrink" => Some(Self::OcbaShrink),
            _ => None,
        }
    }

    /// The stable label.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Fixed => "fixed",
            Self::Ocba => "ocba",
            Self::OcbaShrink => "ocba-shrink",
        }
    }
}

/// The full, serializable specification of one job: a scenario × algorithm
/// × seed grid plus everything that shapes its rows and counters.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Scenario names, in execution (outer-loop) order; resolved against
    /// the registry by [`JobSpec::resolve_scenarios`].
    pub scenarios: Vec<String>,
    /// Algorithms, in execution (middle-loop) order.
    pub algos: Vec<Algo>,
    /// Budget class shared by every cell.
    pub budget: BudgetClass,
    /// Seeds, in execution (inner-loop) order.
    pub seeds: Vec<u64>,
    /// Engine implementation (serial / parallel).
    pub engine: EngineKind,
    /// Variance-reduction estimator shared by every cell.
    pub estimator: EstimatorKind,
    /// Surrogate prescreen shared by every cell.
    pub prescreen: PrescreenKind,
    /// Engine preparation mode between cells.
    pub reuse: EngineReuse,
    /// Cache-block bound of the long-lived engines (0 = unbounded).
    pub max_cached_blocks: usize,
    /// Campaign scheduler deciding cell order and per-group seed counts.
    /// `Fixed` runs the whole rectangle; `Ocba` may *omit* cells, which
    /// changes what lands on disk — so non-default kinds join the
    /// fingerprint and the wire format (absent = fixed, keeping every
    /// pre-existing sidecar and job id valid).
    pub schedule: ScheduleKind,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            scenarios: Vec::new(),
            algos: vec![Algo::default()],
            budget: BudgetClass::default(),
            seeds: vec![1],
            engine: EngineKind::default(),
            estimator: EstimatorKind::default(),
            prescreen: PrescreenKind::default(),
            reuse: EngineReuse::default(),
            max_cached_blocks: 0,
            schedule: ScheduleKind::default(),
        }
    }
}

impl JobSpec {
    /// A spec over the named scenarios with every other field defaulted.
    pub fn new(scenarios: Vec<String>) -> Self {
        Self {
            scenarios,
            ..Self::default()
        }
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.scenarios.len() * self.algos.len() * self.seeds.len()
    }

    /// The budget classes this spec's cells may legitimately run at, in
    /// escalation order ending at [`JobSpec::budget`]. A single rung for
    /// every schedule except [`ScheduleKind::OcbaShrink`], whose scheduler
    /// walks groups up the tiny→…→budget ladder.
    pub fn budget_ladder(&self) -> Vec<BudgetClass> {
        match self.schedule {
            ScheduleKind::OcbaShrink => self.budget.ladder_to(),
            _ => vec![self.budget],
        }
    }

    /// The `(scenario, algo, seed)` identity of every requested cell.
    pub fn cell_set(&self) -> HashSet<(String, String, u64)> {
        self.scenarios
            .iter()
            .flat_map(|sc| {
                self.algos.iter().flat_map(move |a| {
                    self.seeds
                        .iter()
                        .map(move |&seed| (sc.clone(), a.label().to_string(), seed))
                })
            })
            .collect()
    }

    /// Checks the spec is executable: non-empty grid axes, no duplicate
    /// cells, and every scenario name registered.
    pub fn validate(&self) -> Result<(), String> {
        if self.scenarios.is_empty() {
            return Err("spec selects no scenarios".into());
        }
        if self.algos.is_empty() {
            return Err("spec selects no algorithms".into());
        }
        if self.seeds.is_empty() {
            return Err("spec selects no seeds".into());
        }
        if self.cell_set().len() != self.cells() {
            return Err("spec repeats a (scenario, algo, seed) cell".into());
        }
        for name in &self.scenarios {
            if find_scenario(name).is_none() {
                let names = moheco_scenarios::scenario_names().join(", ");
                return Err(format!("unknown scenario {name:?}; registered: {names}"));
            }
        }
        Ok(())
    }

    /// Resolves the scenario names against the registry, in spec order.
    pub fn resolve_scenarios(&self) -> Result<Vec<Arc<dyn Scenario>>, String> {
        self.scenarios
            .iter()
            .map(|name| {
                find_scenario(name).ok_or_else(|| {
                    let names = moheco_scenarios::scenario_names().join(", ");
                    format!("unknown scenario {name:?}; registered: {names}")
                })
            })
            .collect()
    }

    /// The fixed-identity fingerprint of this job, written to the sidecar
    /// `<jsonl>.spec` file. It covers everything rows share (and so cannot
    /// be cross-checked per row) **plus** the settings that shape the
    /// counters without appearing in the rows at all — the reuse mode and
    /// the cache bound — so a file can never be resumed under a different
    /// counter regime. This is the single place the fingerprint format
    /// lives; the CLI campaign runner and the job server both call it.
    pub fn fingerprint(&self) -> String {
        // The schedule joins the fingerprint only when non-default: every
        // sidecar written before schedulers existed stays valid for fixed
        // campaigns, while an adaptive file can never be resumed as fixed
        // (or vice versa) — the two modes disagree on which cells exist.
        let schedule = match self.schedule {
            ScheduleKind::Fixed => String::new(),
            other => format!(" schedule={}", other.label()),
        };
        format!(
            "schema_version={} budget={} engine={} estimator={} prescreen={} engine_reuse={} max_cached_blocks={}{schedule}\n",
            SCHEMA_VERSION,
            self.budget.label(),
            self.engine.label(),
            self.estimator.label(),
            self.prescreen.label(),
            self.reuse.label(),
            self.max_cached_blocks,
        )
    }

    /// A stable hexadecimal job identifier: the FNV-1a hash of the tenant
    /// and the canonical serialization. Two submissions of the same spec by
    /// the same tenant collapse onto one job (and one resumable JSONL
    /// file); any differing field — including grid order — yields a
    /// different id.
    pub fn job_id(&self, tenant: &str) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in tenant.bytes().chain([0u8]).chain(self.to_json().bytes()) {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{hash:016x}")
    }

    /// Serializes the spec as one flat JSON object (lists are comma-joined
    /// strings — the workspace's flat parser takes no nested values).
    pub fn to_json(&self) -> String {
        let seeds = self
            .seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let algos = self
            .algos
            .iter()
            .map(|a| a.label())
            .collect::<Vec<_>>()
            .join(",");
        // Like the fingerprint, the schedule key appears only when
        // non-default, so the canonical serialization (and thus every job
        // id) of pre-existing fixed specs is unchanged.
        let schedule = match self.schedule {
            ScheduleKind::Fixed => String::new(),
            other => format!(", \"schedule\": \"{}\"", other.label()),
        };
        format!(
            "{{\"schema_version\": {}, \"scenarios\": \"{}\", \"algos\": \"{algos}\", \"budget\": \"{}\", \"seeds\": \"{seeds}\", \"engine\": \"{}\", \"estimator\": \"{}\", \"prescreen\": \"{}\", \"engine_reuse\": \"{}\", \"max_cached_blocks\": {}{schedule}}}",
            SCHEMA_VERSION,
            self.scenarios.join(","),
            self.budget.label(),
            self.engine.label(),
            self.estimator.label(),
            self.prescreen.label(),
            self.reuse.label(),
            self.max_cached_blocks,
        )
    }

    /// Parses a spec from the flat JSON wire format ([`JobSpec::to_json`]'s
    /// inverse, also the `POST /jobs` request body). Only `scenarios` is
    /// required; every other field takes its [`JobSpec::default`]. `seeds`
    /// accepts either an explicit comma-joined list (`"seeds": "1,2,3"`) or
    /// a count (`"seeds": 3` means seeds 1..=3, like `--seeds 3`).
    ///
    /// Unknown keys are rejected by name: every optional field here has a
    /// default, so a typo'd key (`"schdule"`) would otherwise be a silent
    /// fallback to the default behavior rather than an error.
    pub fn parse(text: &str) -> Result<Self, String> {
        const KNOWN_KEYS: [&str; 11] = [
            "schema_version",
            "scenarios",
            "algos",
            "budget",
            "seeds",
            "engine",
            "estimator",
            "prescreen",
            "engine_reuse",
            "max_cached_blocks",
            "schedule",
        ];
        let record = parse_flat_json(text)?;
        for key in &record.keys {
            if !KNOWN_KEYS.contains(&key.as_str()) {
                return Err(format!(
                    "unknown spec key {key:?}; known keys: {}",
                    KNOWN_KEYS.join(", ")
                ));
            }
        }
        if let Some(v) = record.num("schema_version") {
            if v != SCHEMA_VERSION as f64 {
                return Err(format!(
                    "spec schema_version is {v} but this build writes {SCHEMA_VERSION}"
                ));
            }
        }
        let scenarios = match record.str("scenarios") {
            Some(s) => s.split(',').map(|p| p.trim().to_string()).collect(),
            None => return Err("spec is missing \"scenarios\"".into()),
        };
        let mut spec = Self {
            scenarios,
            ..Self::default()
        };
        if let Some(s) = record.str("algos") {
            spec.algos = s
                .split(',')
                .map(|p| {
                    Algo::parse(p.trim()).ok_or_else(|| format!("unknown algo {:?}", p.trim()))
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(s) = record.str("budget") {
            spec.budget = BudgetClass::parse(s).ok_or_else(|| format!("unknown budget {s:?}"))?;
        }
        if let Some(s) = record.str("seeds") {
            spec.seeds = s
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse::<u64>()
                        .map_err(|_| format!("bad seed {:?}", p.trim()))
                })
                .collect::<Result<_, _>>()?;
        } else if let Some(n) = record.num("seeds") {
            if n < 1.0 || n.fract() != 0.0 {
                return Err(format!("\"seeds\": {n} must be a positive integer count"));
            }
            spec.seeds = (1..=n as u64).collect();
        }
        if let Some(s) = record.str("engine") {
            spec.engine = match s {
                "serial" => EngineKind::Serial,
                "parallel" => EngineKind::Parallel,
                _ => return Err(format!("unknown engine {s:?}")),
            };
        }
        if let Some(s) = record.str("estimator") {
            spec.estimator =
                EstimatorKind::parse(s).ok_or_else(|| format!("unknown estimator {s:?}"))?;
        }
        if let Some(s) = record.str("prescreen") {
            spec.prescreen =
                PrescreenKind::parse(s).ok_or_else(|| format!("unknown prescreen {s:?}"))?;
        }
        if let Some(s) = record.str("engine_reuse") {
            spec.reuse =
                EngineReuse::parse(s).ok_or_else(|| format!("unknown engine_reuse {s:?}"))?;
        }
        if let Some(n) = record.num("max_cached_blocks") {
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!(
                    "\"max_cached_blocks\": {n} must be a non-negative integer"
                ));
            }
            spec.max_cached_blocks = n as usize;
        }
        if let Some(s) = record.str("schedule") {
            spec.schedule =
                ScheduleKind::parse(s).ok_or_else(|| format!("unknown schedule {s:?}"))?;
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSpec {
        JobSpec {
            scenarios: vec!["margin_wall".into(), "quadratic_feasibility".into()],
            algos: vec![Algo::TwoStage, Algo::De],
            budget: BudgetClass::Tiny,
            seeds: vec![1, 2, 3],
            engine: EngineKind::Serial,
            estimator: EstimatorKind::default(),
            prescreen: PrescreenKind::Off,
            reuse: EngineReuse::SharedCache,
            max_cached_blocks: 64,
            schedule: ScheduleKind::Fixed,
        }
    }

    #[test]
    fn reuse_labels_roundtrip() {
        for reuse in [EngineReuse::Reset, EngineReuse::SharedCache] {
            assert_eq!(EngineReuse::parse(reuse.label()), Some(reuse));
        }
        assert_eq!(EngineReuse::parse("bogus"), None);
    }

    #[test]
    fn json_roundtrips() {
        let spec = sample();
        let parsed = JobSpec::parse(&spec.to_json()).expect("roundtrip");
        assert_eq!(parsed, spec);
        assert_eq!(spec.cells(), 12);
        spec.validate().expect("valid");
    }

    #[test]
    fn parse_defaults_and_seed_counts() {
        let spec = JobSpec::parse("{\"scenarios\": \"margin_wall\", \"seeds\": 3}").unwrap();
        assert_eq!(spec.scenarios, vec!["margin_wall"]);
        assert_eq!(spec.seeds, vec![1, 2, 3]);
        assert_eq!(spec.algos, vec![Algo::default()]);
        assert_eq!(spec.reuse, EngineReuse::Reset);
        assert!(
            JobSpec::parse("{\"budget\": \"tiny\"}").is_err(),
            "scenarios required"
        );
        assert!(JobSpec::parse("{\"scenarios\": \"margin_wall\", \"algos\": \"warp\"}").is_err());
        assert!(JobSpec::parse("{\"scenarios\": \"margin_wall\", \"seeds\": 0}").is_err());
    }

    #[test]
    fn validation_catches_bad_grids() {
        let mut empty = sample();
        empty.scenarios.clear();
        assert!(empty.validate().is_err());
        let mut dup = sample();
        dup.seeds = vec![1, 1];
        assert!(dup.validate().unwrap_err().contains("repeats"));
        let mut unknown = sample();
        unknown.scenarios = vec!["not_a_scenario".into()];
        assert!(unknown.validate().unwrap_err().contains("unknown scenario"));
        assert!(unknown.resolve_scenarios().is_err());
        assert_eq!(sample().resolve_scenarios().unwrap().len(), 2);
    }

    #[test]
    fn job_ids_are_stable_and_identity_sensitive() {
        let spec = sample();
        assert_eq!(spec.job_id("alice"), spec.job_id("alice"));
        assert_ne!(spec.job_id("alice"), spec.job_id("bob"));
        let mut other = sample();
        other.seeds = vec![1, 2];
        assert_ne!(spec.job_id("alice"), other.job_id("alice"));
        assert_eq!(spec.job_id("alice").len(), 16);
    }

    #[test]
    fn schedule_labels_roundtrip() {
        for kind in [
            ScheduleKind::Fixed,
            ScheduleKind::Ocba,
            ScheduleKind::OcbaShrink,
        ] {
            assert_eq!(ScheduleKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(ScheduleKind::parse("bogus"), None);
    }

    #[test]
    fn budget_ladders_are_single_rung_except_under_shrink() {
        let mut spec = sample();
        spec.budget = BudgetClass::Small;
        assert_eq!(spec.budget_ladder(), vec![BudgetClass::Small]);
        spec.schedule = ScheduleKind::Ocba;
        assert_eq!(spec.budget_ladder(), vec![BudgetClass::Small]);
        spec.schedule = ScheduleKind::OcbaShrink;
        assert_eq!(
            spec.budget_ladder(),
            vec![BudgetClass::Tiny, BudgetClass::Small]
        );
        spec.budget = BudgetClass::Tiny;
        assert_eq!(spec.budget_ladder(), vec![BudgetClass::Tiny]);
        spec.budget = BudgetClass::Paper;
        assert_eq!(
            spec.budget_ladder(),
            vec![BudgetClass::Tiny, BudgetClass::Small, BudgetClass::Paper]
        );
        let parsed = JobSpec::parse(&spec.to_json()).expect("roundtrip");
        assert_eq!(parsed.schedule, ScheduleKind::OcbaShrink);
        assert!(spec.to_json().contains("\"schedule\": \"ocba-shrink\""));
        assert!(spec.fingerprint().contains(" schedule=ocba-shrink"));
    }

    #[test]
    fn schedule_is_absent_from_fixed_wire_format_but_roundtrips_ocba() {
        // Fixed specs serialize exactly as they did before schedulers
        // existed — same canonical JSON, same job id space, same sidecar
        // fingerprint — so nothing on disk or in flight is invalidated.
        let fixed = sample();
        assert!(!fixed.to_json().contains("schedule"));
        assert!(!fixed.fingerprint().contains("schedule"));

        let mut ocba = sample();
        ocba.schedule = ScheduleKind::Ocba;
        assert!(ocba.to_json().contains("\"schedule\": \"ocba\""));
        assert!(ocba.fingerprint().contains(" schedule=ocba"));
        assert_ne!(fixed.fingerprint(), ocba.fingerprint());
        assert_ne!(fixed.job_id("alice"), ocba.job_id("alice"));
        let parsed = JobSpec::parse(&ocba.to_json()).expect("roundtrip");
        assert_eq!(parsed, ocba);
        assert!(
            JobSpec::parse("{\"scenarios\": \"margin_wall\", \"schedule\": \"warp\"}").is_err()
        );
    }

    #[test]
    fn unknown_spec_keys_are_rejected_by_name() {
        let err = JobSpec::parse("{\"scenarios\": \"margin_wall\", \"schdule\": \"ocba\"}")
            .expect_err("typo must not silently fall back to the default");
        assert!(err.contains("schdule"), "{err}");
        assert!(err.contains("known keys"), "{err}");
    }

    #[test]
    fn fingerprint_pins_the_counter_regime() {
        let spec = sample();
        let fp = spec.fingerprint();
        assert!(fp.contains("engine_reuse=shared-cache"));
        assert!(fp.contains("max_cached_blocks=64"));
        assert!(fp.ends_with('\n'));
        let mut reset = sample();
        reset.reuse = EngineReuse::Reset;
        assert_ne!(fp, reset.fingerprint());
        // Seeds/scenarios are carried per row, not in the fingerprint.
        let mut wider = sample();
        wider.seeds.push(9);
        assert_eq!(fp, wider.fingerprint());
    }
}
